"""The paper's motivating application, end to end (Section 1).

Reproduces the DataBridges pipeline: host tables on the Fusion-Tables
service, retrieve candidates through its keyword index, annotate them,
extract the points of interest into the RDF repository, and browse the
result through facets -- the "faceted browser over a repository of RDF data
on points of interest of cities" the paper was built for.

Run with::

    python examples/poi_extraction.py
"""

from repro import AnnotatorConfig, EntityAnnotator, quickstart_world
from repro.core.annotation import SnippetCache
from repro.rdfstore import FacetedBrowser, PoiStore, extract_pois
from repro.synth.table_corpus import build_gft_corpus
from repro.tables.fusion import FusionTableService

POI_TYPES = ["restaurant", "museum", "theatre", "hotel"]


def main() -> None:
    print("Building world + training classifier ...")
    world, classifier = quickstart_world(small=True)

    # 1. Publish the corpus on the GFT service and find candidate tables
    #    through its keyword index, as the application does.
    service = FusionTableService()
    corpus = build_gft_corpus(world)
    for table in corpus.tables:
        service.publish(table)
    candidate_ids = sorted(
        set(service.search("restaurant")) | set(service.search("museum"))
        | set(service.search("hotel")) | set(service.search("theatre")),
        key=lambda tid: int(tid.split("-")[1]),
    )
    print(f"hosted {len(service)} tables; {len(candidate_ids)} candidates match POI keywords")

    # 2. Annotate the candidates (three-stage algorithm, Section 5).
    annotator = EntityAnnotator(
        classifier,
        world.search_engine,
        AnnotatorConfig(),
        geocoder=world.geocoder,
        cache=SnippetCache(),
    )
    store = PoiStore()
    for table_id in candidate_ids:
        table = service.get(table_id)
        annotation = annotator.annotate_table(table, POI_TYPES)
        records = extract_pois(table, annotation, type_keys=POI_TYPES)
        store.add_all(records)

    # 3. Faceted browsing over the extracted repository.
    browser = FacetedBrowser(store)
    print()
    print(browser.summary())
    cities = browser.facet_counts("city")
    if cities:
        top_city = max(sorted(cities), key=lambda c: cities[c])
        print(f"\ndrilling into city = {top_city!r}:")
        for record in browser.select(city=top_city)[:6]:
            details = record.phone or record.website or record.address or ""
            print(f"  [{record.poi_type:10s}] {record.name}  {details}")

    # 4. The repository is plain RDF: the mini-SPARQL engine works on it.
    from repro.kb.sparql import select
    rows = select(
        store.triples, 'SELECT ?x WHERE { ?x poi:type "museum" }'
    )
    print(f"\nSPARQL: {len(rows)} museum subjects in the repository")


if __name__ == "__main__":
    main()
