"""Hybrid annotation: the paper's Section 6.4 future work, implemented.

"We may use Limaye to annotate entities that belong to a pre-compiled
catalogue, and resort to the search engine only to annotate previously
unseen entities ... this should bring down the running time."

This example annotates a table that mixes catalogue-known and unknown
museums, comparing the pure web pipeline against the hybrid annotator:
same annotations, a fraction of the search queries (and therefore of the
latency, which Section 6.4 shows dominates the cost).

Run with::

    python examples/hybrid_annotation.py
"""

from repro import AnnotatorConfig, Column, ColumnType, EntityAnnotator, Table
from repro import quickstart_world
from repro.core.hybrid import HybridAnnotator


def main() -> None:
    print("Building world + training classifier ...")
    world, classifier = quickstart_world(small=True)

    known = [e for e in world.table_entities("museum") if e.in_kb][:4]
    unknown = [e for e in world.table_entities("museum") if not e.in_kb][:4]
    table = Table(
        name="mixed-museums",
        columns=[Column("Name", ColumnType.TEXT)],
        rows=[[e.table_name] for e in known + unknown],
    )
    print(
        f"\ntable with {len(known)} catalogue-known and "
        f"{len(unknown)} unknown museums"
    )

    engine = world.search_engine
    start_queries = engine.query_count
    start_elapsed = engine.clock.elapsed_seconds
    pure = EntityAnnotator(classifier, engine, AnnotatorConfig())
    pure_annotation = pure.annotate_table(table, ["museum"])
    pure_queries = engine.query_count - start_queries
    pure_seconds = engine.clock.elapsed_seconds - start_elapsed

    start_queries = engine.query_count
    start_elapsed = engine.clock.elapsed_seconds
    hybrid = HybridAnnotator(classifier, engine, world.catalogue, AnnotatorConfig())
    hybrid_annotation = hybrid.annotate_table(table, ["museum"])
    hybrid_queries = engine.query_count - start_queries
    hybrid_seconds = engine.clock.elapsed_seconds - start_elapsed

    print(f"\npure web pipeline:  {len(pure_annotation.cells)} annotations,"
          f" {pure_queries} queries, {pure_seconds:.1f} virtual s")
    print(f"hybrid pipeline:    {len(hybrid_annotation.cells)} annotations,"
          f" {hybrid_queries} queries, {hybrid_seconds:.1f} virtual s")
    print(f"catalogue hits: {hybrid.stats.catalogue_hits},"
          f" queries saved: {hybrid.stats.query_savings:.0%}")

    print("\nhybrid annotations:")
    for cell in hybrid_annotation.cells:
        origin = "catalogue" if cell.score == 1.0 else "web      "
        print(f"  [{origin}] {cell.cell_value!r} -> {cell.type_key}"
              f" (score {cell.score:.2f})")


if __name__ == "__main__":
    main()
