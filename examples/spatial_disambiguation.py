"""Spatial disambiguation walkthrough (Section 5.2.2, Figure 7).

Two demonstrations:

1. the toponym voting graph on the paper's own Figure 7 cells -- partial
   street addresses and bare city names resolving each other;
2. query augmentation: an ambiguous entity name (one with an alternate web
   sense) queried with and without its city, showing how the appended city
   flips the snippet majority.

Run with::

    python examples/spatial_disambiguation.py
"""

from repro import quickstart_world
from repro.core.annotation import CellAnnotator
from repro.core.config import AnnotatorConfig
from repro.core.disambiguation import ToponymDisambiguator
from repro.synth.types import TYPE_SPECS

FIGURE7_CELLS = {
    (12, 1): "1600 Pennsylvania Ave",
    (12, 2): "Washington",
    (13, 1): "Wofford Ln",
    (13, 2): "College Park",
    (20, 1): "Clarksville St",
    (20, 2): "Paris",
}


def figure7_demo(world) -> None:
    print("=== Figure 7: resolving ambiguous toponyms collectively ===")
    interpretations = {}
    for cell, text in FIGURE7_CELLS.items():
        locations = world.geocoder.geocode(text)
        interpretations[cell] = locations
        print(f"T{cell} = {text!r}: {len(locations)} interpretation(s)")
        for location in locations:
            print(f"    - {location.full_name}")
    outcome = ToponymDisambiguator().resolve(interpretations)
    print("\nchosen interpretations (after the voting graph):")
    for cell in sorted(outcome.chosen):
        print(f"  T{cell} -> {outcome.chosen[cell].full_name}")


def query_augmentation_demo(world, classifier) -> None:
    print("\n=== Query augmentation on an ambiguous entity name ===")
    ambiguous = [
        e
        for spec in TYPE_SPECS
        if spec.spatial
        for e in world.table_entities(spec.key)
        if e.alternate_sense is not None and e.city is not None
    ]
    if not ambiguous:
        print("(no ambiguous spatial entity in this world scale)")
        return
    annotator = CellAnnotator(classifier, world.search_engine, AnnotatorConfig())
    type_keys = [spec.key for spec in TYPE_SPECS]
    # Prefer an entity whose plain query is genuinely confused (the
    # alternate sense pollutes its top-10); fall back to the first one.
    entity = ambiguous[0]
    plain = annotator.annotate_value(entity.table_name, type_keys)
    for candidate in ambiguous:
        decision = annotator.annotate_value(candidate.table_name, type_keys)
        if decision.snippet_counts.get(candidate.type_key, 0) < 10:
            entity, plain = candidate, decision
            break
    sense = entity.alternate_sense
    print(
        f"{entity.name!r} is a {entity.type_key} in {entity.city.name},"
        f" but the name is also a {sense.topic.replace('_', ' ')} on the web"
    )
    augmented = annotator.annotate_value(
        entity.table_name, type_keys, spatial_context=entity.city.name
    )
    print(f"\nquery {plain.query!r}:")
    print(f"  snippet votes: {plain.snippet_counts}")
    print(f"  annotation: {plain.type_key} (score {plain.score:.2f})")
    print(f"query {augmented.query!r}:")
    print(f"  snippet votes: {augmented.snippet_counts}")
    print(f"  annotation: {augmented.type_key} (score {augmented.score:.2f})")


def main() -> None:
    print("Building world + training classifier ...")
    world, classifier = quickstart_world(small=True)
    figure7_demo(world)
    query_augmentation_demo(world, classifier)


if __name__ == "__main__":
    main()
