"""The headline claim: discovering entities no catalogue knows (Section 1).

Catalogue-based annotators (the Limaye baseline) can only annotate entities
present in their catalogue -- and the paper measured that open datasets
cover just 22 % of the entities in real tables.  This example builds a
table of *unknown* museums (absent from the knowledge base), shows the
Limaye baseline annotating nothing, and the web-search algorithm
discovering them anyway.

Run with::

    python examples/discover_unknown_entities.py
"""

from repro import AnnotatorConfig, Column, ColumnType, EntityAnnotator, Table
from repro import quickstart_world
from repro.baselines.limaye import LimayeAnnotator


def main() -> None:
    print("Building world + training classifier ...")
    world, classifier = quickstart_world(small=True)

    coverage = world.catalogue.coverage(world.all_table_entity_names())
    print(
        f"\ncatalogue coverage of table entities: {coverage:.0%}"
        " (the paper measured 22% across Yago/DBpedia/Freebase)"
    )

    unknown = [
        e for e in world.table_entities("museum") if not e.in_kb
    ][:8]
    table = Table(
        name="unknown-museums",
        columns=[
            Column("Name", ColumnType.TEXT),
            Column("City", ColumnType.LOCATION),
        ],
        rows=[[e.table_name, e.city.name if e.city else ""] for e in unknown],
    )
    print(f"\ntable of {table.n_rows} museums, none of them in the catalogue:")
    for row in table.rows:
        print(f"  {row[0]}  ({row[1]})")

    limaye = LimayeAnnotator(world.catalogue)
    limaye_result = limaye.annotate_table(table, ["museum"])
    print(f"\nLimaye-style baseline annotations: {len(limaye_result.cells)}")

    annotator = EntityAnnotator(classifier, world.search_engine, AnnotatorConfig())
    ours = annotator.annotate_table(table, ["museum"])
    print(f"our algorithm's annotations:       {len(ours.cells)}")
    for cell in ours.cells:
        print(f"  {cell.cell_value!r} -> {cell.type_key} (score {cell.score:.2f})")

    found = len(ours.annotated_rows("museum"))
    print(
        f"\ndiscovered {found}/{table.n_rows} previously unseen museums;"
        " the catalogue-based baseline, by construction, found 0."
    )


if __name__ == "__main__":
    main()
