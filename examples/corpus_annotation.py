"""Corpus-at-a-time annotation with persistable engine caches.

Many sites publish overlapping views of the same entity directory.  This
example annotates a 12-table corpus of shuffled restaurant listings three
ways:

1. **corpus-at-a-time** (``EntityAnnotator.annotate_tables``): every cell
   of every table pooled into one search/classify pass, so each distinct
   name is searched, classified and voted on once for the whole corpus;
2. **per-table** (the retained sequential baseline), to show the pooled
   run produces identical annotations while issuing a fraction of the
   engine queries;
3. **warm-started**: the first run's caches are persisted with
   ``save_caches`` and loaded by a fresh annotator -- standing in for a
   second process -- which then annotates a brand-new corpus over the same
   directory without paying the cold start.

Run with::

    python examples/corpus_annotation.py
"""

import random
import tempfile
import time

from repro import AnnotatorConfig, Column, ColumnType, EntityAnnotator, Table, quickstart_world


def build_corpus(world, n_tables=12, n_rows=30, start=0):
    """n_tables shuffled views of one restaurant directory."""
    rng = random.Random(42 + start)
    restaurants = world.table_entities("restaurant")
    directory = [
        f"{restaurants[i % len(restaurants)].table_name} #{start + i}"
        for i in range(n_rows)
    ]
    tables = []
    for index in range(n_tables):
        table = Table(
            name=f"site-{start}-{index}",
            columns=[Column("Name", ColumnType.TEXT)],
        )
        order = list(range(n_rows))
        rng.shuffle(order)
        for row in order:
            table.append_row([directory[row]])
        tables.append(table)
    return tables


def main() -> None:
    print("Building world + training classifier (a few seconds) ...")
    world, classifier = quickstart_world(small=True)
    engine = world.search_engine
    types = ["restaurant", "museum"]
    corpus = build_corpus(world)

    # 1. Corpus-at-a-time: one pooled pass over all 12 tables.
    annotator = EntityAnnotator(classifier, engine, AnnotatorConfig())
    start = time.perf_counter()
    run = annotator.annotate_tables(corpus, types)
    corpus_seconds = time.perf_counter() - start
    diag = run.diagnostics
    print(
        f"\ncorpus-at-a-time: {diag.n_tables} tables, {diag.n_cells} cells, "
        f"{len(run)} annotations in {corpus_seconds:.3f}s"
    )
    print(
        f"  engine queries issued: {diag.queries_issued} "
        f"(one per distinct name, corpus-wide)"
    )

    # 2. Per-table baseline: identical output, many more engine requests.
    baseline = EntityAnnotator(classifier, engine, AnnotatorConfig())
    sequential = baseline._annotate_tables_sequential(corpus, types)
    print(
        f"per-table loop:   identical annotations: {sequential == run}; "
        f"engine queries issued: {sequential.diagnostics.queries_issued}"
    )

    # 3. Persist the caches and warm-start a "second process".
    with tempfile.TemporaryDirectory() as cache_dir:
        annotator.save_caches(cache_dir)
        engine.reset_compute_caches()  # forget everything in-memory
        fresh_corpus = build_corpus(world, start=1000)  # new strings, same directory
        warm_annotator = EntityAnnotator(classifier, engine, AnnotatorConfig())
        loaded = warm_annotator.load_caches(cache_dir)
        start = time.perf_counter()
        warm_run = warm_annotator.annotate_tables(fresh_corpus, types)
        warm_seconds = time.perf_counter() - start
    print(
        f"warm start:       loaded {loaded}; fresh corpus annotated in "
        f"{warm_seconds:.3f}s ({len(warm_run)} annotations)"
    )

    print("\nfirst annotated rows of site-0-0:")
    for cell in run.tables["site-0-0"].cells[:5]:
        print(
            f"  row {cell.row:3d}  {cell.cell_value!r} -> {cell.type_key} "
            f"(score {cell.score:.2f})"
        )


if __name__ == "__main__":
    main()
