"""Quickstart: annotate a table nobody has catalogued.

Builds the (reduced-scale) synthetic world, trains the snippet classifier
with the paper's Section 5.2.1 procedure, then runs the three-stage
annotator on a small Google-Fusion-Tables-style table containing museums,
a phone column, a website column and a repeated label column.

Run with::

    python examples/quickstart.py
"""

from repro import (
    AnnotatorConfig,
    Column,
    ColumnType,
    EntityAnnotator,
    Table,
    quickstart_world,
)


def main() -> None:
    print("Building world + training classifier (a few seconds) ...")
    world, classifier = quickstart_world(small=True)

    # A table mixing real museums of the synthetic world with cells the
    # pre-processing and post-processing stages must handle.
    museums = world.table_entities("museum")[:5]
    table = Table(
        name="city-museums",
        columns=[
            Column("Name", ColumnType.TEXT),
            Column("Type", ColumnType.TEXT),       # repeated label (Figure 8)
            Column("Phone", ColumnType.TEXT),      # regex-filtered
            Column("Website", ColumnType.TEXT),    # regex-filtered
            Column("City", ColumnType.LOCATION),   # GFT-type-filtered
        ],
    )
    for i, entity in enumerate(museums):
        table.append_row([
            entity.table_name,
            "Museum",
            f"(555) 010-{1000 + i:04d}",
            f"https://example.org/{i}",
            entity.city.name if entity.city else "",
        ])

    annotator = EntityAnnotator(
        classifier, world.search_engine, AnnotatorConfig()
    )
    annotation = annotator.annotate_table(table, ["museum", "restaurant"])

    print(f"\nTable {table.name!r} ({table.n_rows} rows):")
    print("rows holding museum entities:", sorted(annotation.annotated_rows("museum")))
    for cell in annotation.cells:
        print(
            f"  cell ({cell.row}, {cell.column}) = {cell.cell_value!r}"
            f" -> {cell.type_key} (score {cell.score:.2f})"
        )

    summary = annotator.preprocessor.exclusion_summary(table)
    print("\npre-processing summary (cells per exclusion reason):")
    for reason, count in sorted(summary.items()):
        print(f"  {reason:20s} {count}")

    print(
        "\nNote: the repeated 'Museum' label column was classified as "
        "museum-like\nby the snippet classifier but eliminated by the "
        "Equation 2 column score."
    )


if __name__ == "__main__":
    main()
