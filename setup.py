"""Setuptools shim.

Kept so ``pip install -e . --no-use-pep517`` works on machines without the
``wheel`` package (PEP 660 editable builds need it; the legacy develop path
does not).  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
