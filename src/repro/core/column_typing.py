"""Column typing and column relations (steps a. and b. of table annotation).

The paper's introduction situates entity annotation (step c.) inside the
broader table-annotation task:

    a. determine the type(s) of each column;
    b. find any relationship between the columns;
    c. identify the entities that occur in the cells.

This module closes steps a. and b. on top of the entity annotations:

* **column typing** -- a column's entity type is the dominant type among
  its annotated cells (with a configurable support threshold); columns
  with no entity annotations fall back to a syntactic type (phone / url /
  email / number / date-like / location / text);
* **column relations** -- an entity-typed column and a spatial column in
  the same table stand in the paper's ``locatedIn`` relation (Figure 1's
  museum -> city example); entity columns and phone/url columns yield
  ``hasPhone`` / ``hasWebsite``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.preprocessing import (
    looks_like_coordinates,
    looks_like_email,
    looks_like_number,
    looks_like_phone,
    looks_like_url,
)
from repro.core.results import TableAnnotation
from repro.tables.model import ColumnType, Table

LOCATED_IN = "locatedIn"
HAS_PHONE = "hasPhone"
HAS_WEBSITE = "hasWebsite"


@dataclass(frozen=True)
class ColumnAnnotation:
    """Type assignment for one column."""

    column: int
    kind: str  # an entity type key, or a syntactic kind ("phone", ...)
    support: float  # fraction of non-empty cells backing the assignment


@dataclass(frozen=True)
class ColumnRelation:
    """A binary relation between two columns of the same table."""

    subject_column: int
    object_column: int
    predicate: str


def _syntactic_kind(values: list[str]) -> tuple[str, float]:
    """Dominant syntactic shape of a column's non-empty values."""
    detectors = (
        ("phone", looks_like_phone),
        ("url", looks_like_url),
        ("email", looks_like_email),
        ("coordinates", looks_like_coordinates),
        ("number", looks_like_number),
    )
    non_empty = [value for value in values if value.strip()]
    if not non_empty:
        return "empty", 0.0
    best_kind, best_support = "text", 0.0
    for kind, detector in detectors:
        support = sum(1 for value in non_empty if detector(value)) / len(non_empty)
        if support > best_support:
            best_kind, best_support = kind, support
    if best_support < 0.5:
        return "text", 1.0 - best_support
    return best_kind, best_support


def type_columns(
    table: Table,
    annotation: TableAnnotation,
    min_support: float = 0.3,
) -> list[ColumnAnnotation]:
    """Step a.: assign a type to every column of *table*.

    Columns whose annotated-entity share (per the dominant entity type)
    reaches *min_support* of their non-empty cells are typed with that
    entity type; GFT Location/Date columns keep their declared kind;
    everything else falls back to syntactic detection.
    """
    if not 0.0 < min_support <= 1.0:
        raise ValueError(f"min_support must be in (0, 1], got {min_support}")
    results = []
    for j in range(table.n_columns):
        values = table.column_values(j)
        non_empty = sum(1 for value in values if value.strip()) or 1
        votes: dict[str, int] = {}
        for cell in annotation.cells:
            if cell.column == j:
                votes[cell.type_key] = votes.get(cell.type_key, 0) + 1
        if votes:
            winner = min(
                (key for key, count in votes.items()
                 if count == max(votes.values())),
            )
            support = votes[winner] / non_empty
            if support >= min_support:
                results.append(
                    ColumnAnnotation(column=j, kind=winner, support=support)
                )
                continue
        declared = table.column_type(j)
        if declared is ColumnType.LOCATION:
            results.append(ColumnAnnotation(column=j, kind="location", support=1.0))
            continue
        if declared is ColumnType.DATE:
            results.append(ColumnAnnotation(column=j, kind="date", support=1.0))
            continue
        kind, support = _syntactic_kind(values)
        results.append(ColumnAnnotation(column=j, kind=kind, support=support))
    return results


def detect_relations(
    table: Table,
    column_annotations: list[ColumnAnnotation],
    entity_type_keys: set[str],
) -> list[ColumnRelation]:
    """Step b.: relations between entity columns and companion columns."""
    relations = []
    entity_columns = [
        c for c in column_annotations if c.kind in entity_type_keys
    ]
    by_kind: dict[str, list[ColumnAnnotation]] = {}
    for column_annotation in column_annotations:
        by_kind.setdefault(column_annotation.kind, []).append(column_annotation)
    predicate_of_kind = (
        ("location", LOCATED_IN),
        ("phone", HAS_PHONE),
        ("url", HAS_WEBSITE),
    )
    for entity_column in entity_columns:
        for kind, predicate in predicate_of_kind:
            for companion in by_kind.get(kind, []):
                relations.append(
                    ColumnRelation(
                        subject_column=entity_column.column,
                        object_column=companion.column,
                        predicate=predicate,
                    )
                )
    return relations
