"""The paper's core contribution: the entity discovery/annotation algorithm.

Pipeline (Section 5): pre-processing filters out cells that cannot name an
entity; annotation queries the search engine with each surviving cell
(optionally augmented with disambiguated spatial context) and applies the
snippet-majority rule of Equation 1; post-processing uses the
column-coherence score of Equation 2 to eliminate spurious annotations.

Public entry point: :class:`repro.core.annotator.EntityAnnotator`.
"""

from repro.core.annotator import EntityAnnotator
from repro.core.clustering import ClusteredCellAnnotator, cluster_snippets
from repro.core.column_typing import detect_relations, type_columns
from repro.core.config import AnnotatorConfig
from repro.core.hybrid import HybridAnnotator
from repro.core.results import AnnotationRun, CellAnnotation, TableAnnotation
from repro.core.training import TrainingCorpusBuilder

__all__ = [
    "AnnotationRun",
    "AnnotatorConfig",
    "CellAnnotation",
    "ClusteredCellAnnotator",
    "EntityAnnotator",
    "HybridAnnotator",
    "TableAnnotation",
    "TrainingCorpusBuilder",
    "cluster_snippets",
    "detect_relations",
    "type_columns",
]
