"""Classifier training-set construction (Section 5.2.1).

The paper's procedure, reproduced step by step:

1. for each type ``t`` pick the manually chosen root category ("Museums");
2. walk the category network under the root and keep subcategories whose
   name contains the type name (the pruning heuristic that drops
   "Curators");
3. the positive entity set ``P`` is drawn from the surviving categories;
4. for each entity, query the search engine with *name + type name* (the
   type name disambiguates the query) and keep up to
   ``snippets_per_entity`` snippets as positive examples;
5. split 75 % / 25 % into training and test sets.

Optionally (``include_other=True``) the builder also gathers *background*
snippets (random noise-topic queries) labelled
:data:`~repro.classify.snippet.OTHER_LABEL`, giving the classifier an
explicit none-of-the-above class.  The paper trains on Γ only and relies on
the majority rule plus (for the SVM) margin abstention to absorb noise, so
the reproduction's experiments default to ``include_other=False``; the
option exists for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.classify.dataset import TextDataset, train_test_split
from repro.classify.snippet import OTHER_LABEL
from repro.kb.knowledge_base import KnowledgeBase
from repro.synth.rng import rng_for
from repro.synth.types import TypeSpec
from repro.synth.vocab import GENERIC_WEB, NOISE_TOPICS
from repro.web.search import SearchEngine, SearchEngineUnavailable


@dataclass
class CorpusStats:
    """Per-type snippet counts, the |TR| / |TE| columns of Table 2."""

    train_counts: dict[str, int] = field(default_factory=dict)
    test_counts: dict[str, int] = field(default_factory=dict)


class TrainingCorpusBuilder:
    """Builds labelled snippet corpora from a knowledge base + search engine."""

    def __init__(
        self,
        kb: KnowledgeBase,
        engine: SearchEngine,
        snippets_per_entity: int = 10,
        max_entities_per_type: int | None = None,
        other_query_count: int = 180,
        seed: int = 13,
    ) -> None:
        if snippets_per_entity < 1:
            raise ValueError(
                f"snippets_per_entity must be >= 1, got {snippets_per_entity}"
            )
        self.kb = kb
        self.engine = engine
        self.snippets_per_entity = snippets_per_entity
        self.max_entities_per_type = max_entities_per_type
        self.other_query_count = other_query_count
        self.seed = seed

    # -- positive examples ------------------------------------------------------------

    def positive_snippets(self, spec: TypeSpec) -> list[str]:
        """Snippets for the positive entities of *spec* (steps 1-4)."""
        entities = self.kb.positive_entities(spec.root_category, spec.type_word)
        rng = rng_for(self.seed, "training", spec.key)
        if (
            self.max_entities_per_type is not None
            and len(entities) > self.max_entities_per_type
        ):
            entities = rng.sample(entities, self.max_entities_per_type)
            entities.sort(key=lambda e: e.uri)
        snippets: list[str] = []
        for entity in entities:
            query = f"{entity.name} {spec.type_word}"
            try:
                results = self.engine.search(query, k=self.snippets_per_entity)
            except SearchEngineUnavailable:
                continue
            snippets.extend(result.snippet for result in results)
        return snippets

    # -- background examples -----------------------------------------------------------

    def background_snippets(self) -> list[str]:
        """Noise snippets for the OTHER class (random off-topic queries)."""
        rng = rng_for(self.seed, "training", "background")
        topics = sorted(NOISE_TOPICS)
        snippets: list[str] = []
        for _ in range(self.other_query_count):
            topic = topics[rng.randrange(len(topics))]
            pool = NOISE_TOPICS[topic]
            words = [pool[rng.randrange(len(pool))] for _ in range(2)]
            words.append(GENERIC_WEB[rng.randrange(len(GENERIC_WEB))])
            query = " ".join(words)
            try:
                results = self.engine.search(query, k=self.snippets_per_entity)
            except SearchEngineUnavailable:
                continue
            snippets.extend(result.snippet for result in results)
        return snippets

    # -- assembled corpora ----------------------------------------------------------------

    def build_dataset(
        self, specs: list[TypeSpec], include_other: bool = False
    ) -> TextDataset:
        """The full labelled corpus for *specs* (+ OTHER when requested)."""
        dataset = TextDataset()
        for spec in specs:
            for snippet in self.positive_snippets(spec):
                dataset.add(snippet, spec.key)
        if include_other:
            for snippet in self.background_snippets():
                dataset.add(snippet, OTHER_LABEL)
        return dataset

    def build_split(
        self,
        specs: list[TypeSpec],
        include_other: bool = False,
        train_fraction: float = 0.75,
    ) -> tuple[TextDataset, TextDataset, CorpusStats]:
        """Train/test split (75/25, stratified) plus Table 2's size columns."""
        dataset = self.build_dataset(specs, include_other=include_other)
        train, test = train_test_split(
            dataset, train_fraction=train_fraction, seed=self.seed
        )
        stats = CorpusStats(
            train_counts=train.label_counts(), test_counts=test.label_counts()
        )
        return train, test, stats
