"""Configuration of the annotation pipeline."""

from __future__ import annotations

from dataclasses import dataclass

SCHEDULES = ("static", "stealing")
"""The recognised multi-worker schedulers (see :mod:`repro.core.parallel`):
``"stealing"`` pulls cost-bounded chunk tasks from a shared queue,
``"static"`` pins one contiguous shard per worker.  Single source of
truth for :class:`AnnotatorConfig`, the execution layer and the CLI."""

INDEX_BACKENDS = ("memory", "mmap")
"""The recognised index storage backends (see :mod:`repro.web.backends`):
``"memory"`` is the mutable in-process :class:`~repro.web.index.InvertedIndex`,
``"mmap"`` serves queries from a frozen on-disk artifact that all workers
and daemons on a host share zero-copy through the OS page cache.  Single
source of truth for the CLI (``--index-backend``, ``index build``) and the
benchmark harness."""

CACHE_BACKENDS = ("memory", "disk")
"""The recognised cache storage backends (see :mod:`repro.persistence`):
``"memory"`` keeps the historical pickled-dict cache files, loaded whole
into every process; ``"disk"`` persists the results cache and the label
memo in sharded on-disk stores (:class:`~repro.persistence.ShardedDiskCacheStore`)
that workers and daemons open *shared* -- buckets load lazily, new
entries append to a delta log, ``cache compact`` folds the log into the
buckets.  Single source of truth for :class:`AnnotatorConfig`, the CLI
(``--cache-backend``, ``cache build``/``cache compact``) and the
benchmark harness."""


@dataclass(frozen=True)
class AnnotatorConfig:
    """All knobs of :class:`~repro.core.annotator.EntityAnnotator`.

    Defaults follow the paper: top-10 snippets, strict-majority rule
    (``s_t > k/2``), post-processing on, spatial disambiguation off (the
    paper enables it only for point-of-interest types with spatial data).
    """

    top_k: int = 10
    majority_fraction: float = 0.5
    long_value_token_limit: int = 10
    use_gft_column_types: bool = True
    use_postprocessing: bool = True
    use_spatial_disambiguation: bool = False
    use_repetition_factor: bool = True
    disambiguation_max_iterations: int = 30
    disambiguation_epsilon: float = 1e-9
    seed: int = 13
    classify_workers: int = 1
    """Scoring threads for pooled snippet classification: the one-vs-rest
    GEMM is chunked across this many threads (labels are unchanged -- a
    pure function of the snippet text -- only the wall-clock drops on
    multi-core hosts).  1 keeps the single-threaded seed behaviour."""

    schedule: str = "stealing"
    """How ``annotate_tables(workers=N)`` places work on the pool:
    ``"stealing"`` (default) enqueues cost-bounded chunk tasks that idle
    workers pull as they finish -- a skewed corpus (one giant table next
    to hundreds of tiny ones) no longer serialises on one unlucky worker;
    ``"static"`` keeps PR 3's contiguous near-equal shards, one task per
    worker, as the parity and benchmark baseline.  Annotations are
    byte-identical either way (see :mod:`repro.core.parallel`)."""

    retries: int = 0
    """Extra search attempts after a dropped request, per query.  0
    (default) keeps the seed behaviour: one attempt, a drop loses the
    cell.  With retries > 0 the annotator re-issues failed queries with
    exponential backoff (charged to the virtual clock, deterministic
    jitter), marks cells that exhaust their attempts *degraded*, and
    ``annotate_tables`` runs one end-of-corpus repair pass over the
    degraded cells (see :mod:`repro.resilience`)."""

    retry_backoff_ms: float = 200.0
    """Base backoff before the first retry, in virtual milliseconds;
    doubles per subsequent retry.  Backoff advances the virtual clock via
    :meth:`~repro.clock.VirtualClock.wait`, so it shows up in virtual
    seconds but not in the remote-call count."""

    breaker_threshold: int = 0
    """Consecutive search failures that open the circuit breaker; 0
    (default) disables the breaker.  While open, requests fail fast
    without charging the clock; after ``breaker_cooldown_seconds`` of
    virtual time a half-open probe is admitted."""

    breaker_cooldown_seconds: float = 30.0
    """Virtual seconds an open breaker waits before probing."""

    task_retries: int = 2
    """How many times a parallel chunk task whose worker *died* is
    requeued onto a fresh worker before the task is quarantined and its
    tables marked degraded (see :mod:`repro.core.parallel`)."""

    chunk_cost_target: int = 0
    """Cost budget per work-stealing chunk task, in estimated cells
    (``rows x columns``, the cheap proxy for per-table work).  Consecutive
    small tables are packed into one task until the budget is reached; a
    table costing more than the budget travels alone (tables never
    split).  0 (default) sizes chunks automatically from the corpus:
    ``total_cost / (workers * 4)``, i.e. about four tasks per worker --
    fine-grained enough to rebalance around a giant table, coarse enough
    to keep per-task overhead negligible."""

    split_giant_tables: bool = False
    """Let the work-stealing scheduler split a giant table into row-range
    slice tasks (:class:`~repro.core.parallel.TableSlice`).  Off by
    default: a table is then the atomic stealing unit, which bounds the
    skewed-corpus speedup by the giant table's own cost.  When on, a
    table whose estimated cost (``rows x columns``) exceeds the slice
    budget (``max_slice_cost``, or the effective chunk cost target when
    that is 0) is cut into contiguous row ranges, each annotated
    independently by pool workers and reassembled -- and post-processed
    once, whole-table -- by the parent, byte-identical to ``workers=1``.
    Ignored under ``schedule="static"`` and whenever
    ``use_spatial_disambiguation`` is on (row contexts are table-global,
    so a slice could not reproduce them)."""

    max_slice_cost: int = 0
    """Cost budget per row-range slice task, in estimated cells (same
    unit as ``chunk_cost_target``).  A positive value also *enables*
    splitting (no need to set ``split_giant_tables`` separately); 0
    (default) means: when splitting is enabled, size slices to the
    effective chunk cost target, so slices steal exactly like ordinary
    chunks."""

    cache_backend: str = "memory"
    """Where ``save_caches``/``load_caches`` persist the engine's
    results cache and the label memo: ``"memory"`` (default) keeps the
    historical pickled-dict files, byte-identical to earlier releases;
    ``"disk"`` uses sharded on-disk stores that N workers and daemons
    open shared -- a warm start reads the manifest plus a small delta
    log instead of the whole payload, and a grown corpus appends new
    entries and compacts instead of rewriting the world.  Annotations
    are byte-identical either way (warmth changes compute, never
    protocol)."""

    cache_buckets: int = 64
    """Hash-bucket count of a newly created disk cache store (an
    existing store keeps the count it was created with).  More buckets
    mean finer-grained delta compaction -- fewer unchanged entries
    rewritten when a grown corpus appends -- at the cost of more small
    files."""

    def __post_init__(self) -> None:
        if self.top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {self.top_k}")
        if not 0.0 <= self.majority_fraction < 1.0:
            raise ValueError(
                f"majority_fraction must be in [0, 1), got {self.majority_fraction}"
            )
        if self.long_value_token_limit < 1:
            raise ValueError(
                "long_value_token_limit must be >= 1, got "
                f"{self.long_value_token_limit}"
            )
        if self.disambiguation_max_iterations < 1:
            raise ValueError(
                "disambiguation_max_iterations must be >= 1, got "
                f"{self.disambiguation_max_iterations}"
            )
        if self.classify_workers < 1:
            raise ValueError(
                f"classify_workers must be >= 1, got {self.classify_workers}"
            )
        if self.schedule not in SCHEDULES:
            raise ValueError(
                f"schedule must be one of {SCHEDULES}, got {self.schedule!r}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.retry_backoff_ms < 0:
            raise ValueError(
                f"retry_backoff_ms must be >= 0, got {self.retry_backoff_ms}"
            )
        if self.breaker_threshold < 0:
            raise ValueError(
                f"breaker_threshold must be >= 0, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown_seconds < 0:
            raise ValueError(
                "breaker_cooldown_seconds must be >= 0, got "
                f"{self.breaker_cooldown_seconds}"
            )
        if self.task_retries < 0:
            raise ValueError(
                f"task_retries must be >= 0, got {self.task_retries}"
            )
        if self.chunk_cost_target < 0:
            raise ValueError(
                "chunk_cost_target must be >= 0 (0 = automatic), got "
                f"{self.chunk_cost_target}"
            )
        if self.max_slice_cost < 0:
            raise ValueError(
                "max_slice_cost must be >= 0 (0 = chunk cost target), got "
                f"{self.max_slice_cost}"
            )
        if self.cache_backend not in CACHE_BACKENDS:
            raise ValueError(
                f"cache_backend must be one of {CACHE_BACKENDS}, got "
                f"{self.cache_backend!r}"
            )
        if self.cache_buckets < 1:
            raise ValueError(
                f"cache_buckets must be >= 1, got {self.cache_buckets}"
            )

    @property
    def majority_count(self) -> float:
        """The snippet count that must be strictly exceeded (``k/2``)."""
        return self.top_k * self.majority_fraction
