"""Configuration of the annotation pipeline."""

from __future__ import annotations

from dataclasses import dataclass

SCHEDULES = ("static", "stealing")
"""The recognised multi-worker schedulers (see :mod:`repro.core.parallel`):
``"stealing"`` pulls cost-bounded chunk tasks from a shared queue,
``"static"`` pins one contiguous shard per worker.  Single source of
truth for :class:`AnnotatorConfig`, the execution layer and the CLI."""


@dataclass(frozen=True)
class AnnotatorConfig:
    """All knobs of :class:`~repro.core.annotator.EntityAnnotator`.

    Defaults follow the paper: top-10 snippets, strict-majority rule
    (``s_t > k/2``), post-processing on, spatial disambiguation off (the
    paper enables it only for point-of-interest types with spatial data).
    """

    top_k: int = 10
    majority_fraction: float = 0.5
    long_value_token_limit: int = 10
    use_gft_column_types: bool = True
    use_postprocessing: bool = True
    use_spatial_disambiguation: bool = False
    use_repetition_factor: bool = True
    disambiguation_max_iterations: int = 30
    disambiguation_epsilon: float = 1e-9
    seed: int = 13
    classify_workers: int = 1
    """Scoring threads for pooled snippet classification: the one-vs-rest
    GEMM is chunked across this many threads (labels are unchanged -- a
    pure function of the snippet text -- only the wall-clock drops on
    multi-core hosts).  1 keeps the single-threaded seed behaviour."""

    schedule: str = "stealing"
    """How ``annotate_tables(workers=N)`` places work on the pool:
    ``"stealing"`` (default) enqueues cost-bounded chunk tasks that idle
    workers pull as they finish -- a skewed corpus (one giant table next
    to hundreds of tiny ones) no longer serialises on one unlucky worker;
    ``"static"`` keeps PR 3's contiguous near-equal shards, one task per
    worker, as the parity and benchmark baseline.  Annotations are
    byte-identical either way (see :mod:`repro.core.parallel`)."""

    chunk_cost_target: int = 0
    """Cost budget per work-stealing chunk task, in estimated cells
    (``rows x columns``, the cheap proxy for per-table work).  Consecutive
    small tables are packed into one task until the budget is reached; a
    table costing more than the budget travels alone (tables never
    split).  0 (default) sizes chunks automatically from the corpus:
    ``total_cost / (workers * 4)``, i.e. about four tasks per worker --
    fine-grained enough to rebalance around a giant table, coarse enough
    to keep per-task overhead negligible."""

    def __post_init__(self) -> None:
        if self.top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {self.top_k}")
        if not 0.0 <= self.majority_fraction < 1.0:
            raise ValueError(
                f"majority_fraction must be in [0, 1), got {self.majority_fraction}"
            )
        if self.long_value_token_limit < 1:
            raise ValueError(
                "long_value_token_limit must be >= 1, got "
                f"{self.long_value_token_limit}"
            )
        if self.disambiguation_max_iterations < 1:
            raise ValueError(
                "disambiguation_max_iterations must be >= 1, got "
                f"{self.disambiguation_max_iterations}"
            )
        if self.classify_workers < 1:
            raise ValueError(
                f"classify_workers must be >= 1, got {self.classify_workers}"
            )
        if self.schedule not in SCHEDULES:
            raise ValueError(
                f"schedule must be one of {SCHEDULES}, got {self.schedule!r}"
            )
        if self.chunk_cost_target < 0:
            raise ValueError(
                "chunk_cost_target must be >= 0 (0 = automatic), got "
                f"{self.chunk_cost_target}"
            )

    @property
    def majority_count(self) -> float:
        """The snippet count that must be strictly exceeded (``k/2``)."""
        return self.top_k * self.majority_fraction
