"""Configuration of the annotation pipeline."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AnnotatorConfig:
    """All knobs of :class:`~repro.core.annotator.EntityAnnotator`.

    Defaults follow the paper: top-10 snippets, strict-majority rule
    (``s_t > k/2``), post-processing on, spatial disambiguation off (the
    paper enables it only for point-of-interest types with spatial data).
    """

    top_k: int = 10
    majority_fraction: float = 0.5
    long_value_token_limit: int = 10
    use_gft_column_types: bool = True
    use_postprocessing: bool = True
    use_spatial_disambiguation: bool = False
    use_repetition_factor: bool = True
    disambiguation_max_iterations: int = 30
    disambiguation_epsilon: float = 1e-9
    seed: int = 13
    classify_workers: int = 1
    """Scoring threads for pooled snippet classification: the one-vs-rest
    GEMM is chunked across this many threads (labels are unchanged -- a
    pure function of the snippet text -- only the wall-clock drops on
    multi-core hosts).  1 keeps the single-threaded seed behaviour."""

    def __post_init__(self) -> None:
        if self.top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {self.top_k}")
        if not 0.0 <= self.majority_fraction < 1.0:
            raise ValueError(
                f"majority_fraction must be in [0, 1), got {self.majority_fraction}"
            )
        if self.long_value_token_limit < 1:
            raise ValueError(
                "long_value_token_limit must be >= 1, got "
                f"{self.long_value_token_limit}"
            )
        if self.disambiguation_max_iterations < 1:
            raise ValueError(
                "disambiguation_max_iterations must be >= 1, got "
                f"{self.disambiguation_max_iterations}"
            )
        if self.classify_workers < 1:
            raise ValueError(
                f"classify_workers must be >= 1, got {self.classify_workers}"
            )

    @property
    def majority_count(self) -> float:
        """The snippet count that must be strictly exceeded (``k/2``)."""
        return self.top_k * self.majority_fraction
