"""Post-processing: elimination of spurious annotations (Section 5.3, Eq. 2).

A table annotated for type ``t`` may contain misannotated cells -- repeated
type labels ("Museum" in every row of Figure 8), review phrases, field
names.  The column-coherence principle says the genuine type-``t`` column is
the one whose *distinct-value-weighted* score mass is largest::

    S_j = sum_i ln( S_ij / o_ij + 1 )                       (Equation 2)

where ``o_ij`` counts how often the cell's value repeats within its column.
The ``1/o`` factor damps high scores earned by the same repeated string.
For each type, only annotations in the arg-max column survive.
"""

from __future__ import annotations

import math

from repro.core.results import CellAnnotation, TableAnnotation
from repro.tables.model import Table


def column_scores(
    table: Table,
    annotations: list[CellAnnotation],
    use_repetition_factor: bool = True,
) -> dict[int, float]:
    """Equation 2 score per column, over annotations of a single type.

    With ``use_repetition_factor=False`` the ``1/o_ij`` damping is dropped
    (the A1 ablation benchmark measures how much that factor matters).
    """
    occurrence_cache: dict[int, dict[str, int]] = {}
    scores: dict[int, float] = {}
    for annotation in annotations:
        j = annotation.column
        if j not in occurrence_cache:
            occurrence_cache[j] = table.value_occurrences(j)
        value = table.cell(annotation.row, j)
        occurrences = occurrence_cache[j].get(value, 1)
        factor = 1.0 / occurrences if use_repetition_factor else 1.0
        scores[j] = scores.get(j, 0.0) + math.log(factor * annotation.score + 1.0)
    return scores


def winning_column(scores: dict[int, float]) -> int | None:
    """Arg-max column of Equation 2 (ties favour the leftmost column)."""
    if not scores:
        return None
    best = max(scores.values())
    return min(j for j, score in scores.items() if score == best)


def eliminate_spurious(
    table: Table,
    annotation: TableAnnotation,
    use_repetition_factor: bool = True,
) -> TableAnnotation:
    """Keep, per type, only the annotations in that type's winning column.

    Returns a new :class:`TableAnnotation`; the input is not modified.
    Degraded-cell records are carried through untouched -- elimination
    judges *answered* cells only.
    """
    result = TableAnnotation(
        table_name=annotation.table_name,
        degraded=list(annotation.degraded),
    )
    type_keys = sorted({cell.type_key for cell in annotation.cells})
    for type_key in type_keys:
        of_type = annotation.of_type(type_key)
        scores = column_scores(
            table, of_type, use_repetition_factor=use_repetition_factor
        )
        winner = winning_column(scores)
        for cell in of_type:
            if cell.column == winner:
                result.add(cell)
    return result
