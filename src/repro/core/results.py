"""Annotation result models.

The algorithm's output (Section 4 / Figure 3): the rows that contain
information on entities of the requested types, and the cells in which the
entity names occur.  A :class:`CellAnnotation` records one annotated cell
with its Equation 1 score; :class:`TableAnnotation` aggregates a table and
answers the row-level question; :class:`AnnotationRun` aggregates a corpus.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Iterator, Sequence


def _ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` with the shared zero-denominator guard.

    Every derived rate in this module (cache hit rates, coalescing ratio,
    batch sizes) goes through this one helper so "0.0 before the first
    event" is a single policy, not a per-property reimplementation.
    """
    return numerator / denominator if denominator else 0.0


@dataclass(frozen=True)
class WorkerLoad:
    """What one worker process actually did during a parallel corpus run.

    Produced by :mod:`repro.core.parallel` for every worker of a
    ``workers=N`` run, under both the static and the work-stealing
    scheduler: how many queue tasks the worker pulled, how many tables
    and candidate cells those tasks covered, and how long the worker was
    busy annotating (wall-clock inside the worker, excluding cache
    saves).  The corpus-wide view lives on
    :attr:`RunDiagnostics.worker_loads`.

    The memory columns make the cost of standing a worker up auditable
    (and, with the mmap index backend, the saving measurable rather than
    claimed): *peak_rss_kb* is the highest resident set size the worker
    sampled (``/proc/self/statm``, in KiB, read at entry, after attach
    and after each task — not ``ru_maxrss``, which spawn children can
    inherit from the parent on some kernels); *attach_seconds* /
    *attach_rss_kb* are the time and resident-memory growth spent
    materialising the annotator (fork inheritance or spawn unpickling)
    and warm-starting its caches before the first task.  All three are
    0 for workers that completed no task or on hosts without ``/proc``
    and ``resource``.
    """

    worker_id: int
    n_tasks: int
    n_tables: int
    n_cells: int
    busy_seconds: float
    peak_rss_kb: int = 0
    attach_seconds: float = 0.0
    attach_rss_kb: int = 0
    cache_load_bytes: int = field(default=0, compare=False)
    """Bytes the worker read warm-starting its caches during attach --
    the whole pickled payload under the legacy files, manifest plus delta
    log under a shared disk store.  Excluded from equality (an IO fact,
    not an annotation fact)."""


@dataclass(frozen=True)
class CellAnnotation:
    """One annotated cell: position, assigned type and score ``S_ij``."""

    table_name: str
    row: int
    column: int
    type_key: str
    score: float
    cell_value: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise ValueError(f"score must be in [0, 1], got {self.score}")


@dataclass(frozen=True)
class DegradedCell:
    """A candidate cell whose resolution was abandoned, not answered.

    Recorded when every search attempt for the cell's query failed (after
    retries and the end-of-corpus repair pass, when enabled) or when the
    cell's chunk task was quarantined after repeated worker crashes.
    Degraded cells are the resilience layer's honesty contract: a run that
    lost cells says *which* cells and *why* instead of silently shrinking.
    """

    table_name: str
    row: int
    column: int
    cell_value: str = ""
    query: str = ""
    reason: str = "search-failure"


@dataclass
class TableAnnotation:
    """All annotations of one table.

    ``degraded`` lists the candidate cells this table *lost* to failures
    (empty on healthy runs, so equality with pre-resilience annotations is
    unaffected).
    """

    table_name: str
    cells: list[CellAnnotation] = field(default_factory=list)
    degraded: list[DegradedCell] = field(default_factory=list)

    def add(self, annotation: CellAnnotation) -> None:
        if annotation.table_name != self.table_name:
            raise ValueError(
                f"annotation for table {annotation.table_name!r} added to "
                f"TableAnnotation of {self.table_name!r}"
            )
        self.cells.append(annotation)

    def of_type(self, type_key: str) -> list[CellAnnotation]:
        """Annotations with the given type."""
        return [cell for cell in self.cells if cell.type_key == type_key]

    def annotated_rows(self, type_key: str) -> set[int]:
        """The paper's primary output: rows holding type-*type_key* entities."""
        return {cell.row for cell in self.of_type(type_key)}

    def annotation_at(self, row: int, column: int) -> CellAnnotation | None:
        """The annotation at a cell, or ``None``."""
        for cell in self.cells:
            if cell.row == row and cell.column == column:
                return cell
        return None

    def __len__(self) -> int:
        return len(self.cells)


@dataclass(frozen=True)
class RunDiagnostics:
    """Aggregate health counters of one corpus annotation run.

    Snapshot deltas over the *whole* run -- every table, not just the last
    one -- taken by :meth:`repro.core.annotator.EntityAnnotator.annotate_tables`
    (and its sequential parity baseline) around the annotation work:

    ``search_failures``
        cells skipped because their (shared) engine request failed;
    ``cache_hits`` / ``cache_misses``
        :class:`~repro.core.annotation.SnippetCache` traffic attributable
        to this run (zero when no cache was passed);
    ``queries_issued``
        requests that actually reached the engine;
    ``clock_charges`` / ``virtual_seconds``
        simulated remote calls and latency charged, including geocoding
        when spatial disambiguation is on;
    ``search_retries`` / ``breaker_opens``
        re-issued requests and circuit-breaker open transitions during the
        run (zero unless retries / the breaker are enabled);
    ``degraded_cells`` / ``repaired_cells``
        candidate cells abandoned after every attempt failed, and cells
        recovered by the end-of-corpus repair pass;
    ``tasks_requeued`` / ``tasks_quarantined``
        parallel chunk tasks re-run after a worker crash, and tasks given
        up on (their tables degraded) after exhausting requeues;
    ``effective_chunk_cost``
        the chunk cost target the work-stealing scheduler actually packed
        tasks with -- the configured ``chunk_cost_target``, or the
        automatic ``total_cost / (workers * 4)`` when that was 0 (0 on
        in-process and static-schedule runs, where no chunking happened);
    ``tables_split``
        corpus tables the scheduler cut into row-range slice tasks (0
        unless splitting is enabled -- see
        ``AnnotatorConfig.split_giant_tables``);
    ``worker_loads``
        per-worker load accounting of a ``workers=N`` run (one
        :class:`WorkerLoad` per worker process, empty on in-process runs);
    ``results_cache_hits`` / ``results_cache_misses`` and
    ``label_memo_hits`` / ``label_memo_misses``
        per-cache traffic of the two persistable caches -- batched-path
        ranking lookups and snippet classifications served warm (from the
        in-memory tier or a shared store) versus computed;
    ``cache_loads`` / ``cache_saves`` and ``cache_load_bytes`` /
    ``cache_save_bytes``
        cache persistence IO attributable to this run: successful warm
        loads / persisted saves across both caches, and the payload bytes
        they moved;
    ``cache_lock_wait_seconds``
        wall-clock seconds spent waiting on contended cache/artifact
        advisory locks (see :func:`repro.persistence.lock_wait_seconds`).

    The cache IO counters describe *how* the run was served, never what
    it answered, and legitimately differ between warm and cold runs of
    one corpus -- they are excluded from equality so diagnostics parity
    assertions keep comparing annotation facts only.
    """

    n_tables: int
    n_cells: int
    search_failures: int
    cache_hits: int
    cache_misses: int
    queries_issued: int
    clock_charges: int
    virtual_seconds: float
    search_retries: int = 0
    breaker_opens: int = 0
    degraded_cells: int = 0
    repaired_cells: int = 0
    tasks_requeued: int = 0
    tasks_quarantined: int = 0
    effective_chunk_cost: int = 0
    tables_split: int = 0
    worker_loads: tuple[WorkerLoad, ...] = ()
    results_cache_hits: int = field(default=0, compare=False)
    results_cache_misses: int = field(default=0, compare=False)
    label_memo_hits: int = field(default=0, compare=False)
    label_memo_misses: int = field(default=0, compare=False)
    cache_loads: int = field(default=0, compare=False)
    cache_saves: int = field(default=0, compare=False)
    cache_load_bytes: int = field(default=0, compare=False)
    cache_save_bytes: int = field(default=0, compare=False)
    cache_lock_wait_seconds: float = field(default=0.0, compare=False)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of this run's cache lookups served from the cache."""
        return _ratio(self.cache_hits, self.cache_hits + self.cache_misses)

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot: every counter plus derived ratios.

        Built by introspecting the dataclass fields (and pinned by a
        completeness test that does the same), so a counter added to the
        dataclass can never silently miss the exported dict.
        """
        payload = {
            spec.name: getattr(self, spec.name) for spec in fields(self)
        }
        payload["worker_loads"] = [
            asdict(load) for load in self.worker_loads
        ]
        payload["cache_hit_rate"] = self.cache_hit_rate
        payload["imbalance_ratio"] = self.imbalance_ratio
        return payload

    @property
    def imbalance_ratio(self) -> float:
        """Busiest worker's share of the work relative to a perfect split.

        ``max(busy_seconds) / mean(busy_seconds)`` over
        :attr:`worker_loads`: 1.0 is a perfectly balanced pool, 2.0 at two
        workers means one worker served the whole corpus while the other
        idled.  Falls back to per-worker cell counts when no worker
        reported busy time, and to 0.0 when fewer than one worker ran
        (nothing to balance).
        """
        if not self.worker_loads:
            return 0.0
        busy = [load.busy_seconds for load in self.worker_loads]
        if not any(busy):
            busy = [float(load.n_cells) for load in self.worker_loads]
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean else 0.0

    @classmethod
    def combined(cls, parts: "Sequence[RunDiagnostics]") -> "RunDiagnostics":
        """Aggregate of several runs' diagnostics (all counters summed).

        The multi-worker execution layer folds each worker's shard
        diagnostics into one corpus-wide view with this; ``virtual_seconds``
        sums too, so it reports the *total* simulated remote latency paid
        across workers, not the overlapped wall-clock.  ``worker_loads``
        concatenate in part order (parts of an in-process run contribute
        nothing).  ``effective_chunk_cost`` and ``tables_split`` are
        run-level scheduler facts, not per-part counters, so the combined
        view leaves them 0 and the scheduler stamps them afterwards.
        """
        return cls(
            worker_loads=tuple(
                load for part in parts for load in part.worker_loads
            ),
            n_tables=sum(part.n_tables for part in parts),
            n_cells=sum(part.n_cells for part in parts),
            search_failures=sum(part.search_failures for part in parts),
            cache_hits=sum(part.cache_hits for part in parts),
            cache_misses=sum(part.cache_misses for part in parts),
            queries_issued=sum(part.queries_issued for part in parts),
            clock_charges=sum(part.clock_charges for part in parts),
            virtual_seconds=sum(part.virtual_seconds for part in parts),
            search_retries=sum(part.search_retries for part in parts),
            breaker_opens=sum(part.breaker_opens for part in parts),
            degraded_cells=sum(part.degraded_cells for part in parts),
            repaired_cells=sum(part.repaired_cells for part in parts),
            tasks_requeued=sum(part.tasks_requeued for part in parts),
            tasks_quarantined=sum(part.tasks_quarantined for part in parts),
            results_cache_hits=sum(part.results_cache_hits for part in parts),
            results_cache_misses=sum(
                part.results_cache_misses for part in parts
            ),
            label_memo_hits=sum(part.label_memo_hits for part in parts),
            label_memo_misses=sum(part.label_memo_misses for part in parts),
            cache_loads=sum(part.cache_loads for part in parts),
            cache_saves=sum(part.cache_saves for part in parts),
            cache_load_bytes=sum(part.cache_load_bytes for part in parts),
            cache_save_bytes=sum(part.cache_save_bytes for part in parts),
            cache_lock_wait_seconds=sum(
                part.cache_lock_wait_seconds for part in parts
            ),
        )


@dataclass
class BatchAnnotationResult:
    """Per-request demux view of one pooled corpus pass.

    Produced by :meth:`repro.core.annotator.EntityAnnotator.annotate_batch`
    for a pre-pooled request batch (the resident service's micro-batcher):
    ``annotations[i]`` is the :class:`TableAnnotation` of the *i*-th input
    table, positionally -- same-named tables are **never** merged, unlike
    :class:`AnnotationRun`, because two independent requests may
    legitimately ship tables with the same name and each must get its own
    answer back.  ``diagnostics`` aggregate over the whole pooled pass.
    """

    annotations: list[TableAnnotation]
    diagnostics: RunDiagnostics


@dataclass
class ServiceStats:
    """Lifetime counters of one resident annotation service.

    Maintained by :class:`repro.service.daemon.AnnotationService` across
    every micro-batch it processes; a ``stats`` request returns a snapshot.

    ``requests``
        annotation requests answered (``annotate_table`` and
        ``annotate_cells``; ``ping``/``stats`` are not counted);
    ``batches``
        pooled corpus passes executed -- each coalesces every compatible
        request that arrived within one batching window;
    ``tables`` / ``cells``
        work those passes covered (a cells request counts as one table);
    ``queries_issued`` / ``cache_hits`` / ``cache_misses``
        the folded :class:`RunDiagnostics` counters of every pass, so the
        resident engine's warmth is visible across requests;
    ``search_failures``
        cells whose engine request failed, summed over all passes;
    ``search_retries`` / ``breaker_opens`` / ``degraded_cells`` /
    ``repaired_cells``
        the folded resilience counters of every pass (see
        :class:`RunDiagnostics`);
    ``poisoned_requests``
        requests isolated by batch bisection and failed individually after
        their pooled pass raised (the rest of the batch was served);
    ``flushes``
        cache flushes performed (periodic and shutdown);
    ``results_cache_hits`` / ``results_cache_misses`` /
    ``label_memo_hits`` / ``label_memo_misses`` / ``cache_loads`` /
    ``cache_saves`` / ``cache_load_bytes`` / ``cache_save_bytes`` /
    ``cache_lock_wait_seconds``
        the folded cache-IO counters of every pass (see
        :class:`RunDiagnostics`), so the cost of keeping the resident
        process warm -- and the shared-store payloads it moves -- is
        visible from a ``stats`` request.
    """

    requests: int = 0
    batches: int = 0
    tables: int = 0
    cells: int = 0
    queries_issued: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    search_failures: int = 0
    search_retries: int = 0
    breaker_opens: int = 0
    degraded_cells: int = 0
    repaired_cells: int = 0
    poisoned_requests: int = 0
    flushes: int = 0
    results_cache_hits: int = 0
    results_cache_misses: int = 0
    label_memo_hits: int = 0
    label_memo_misses: int = 0
    cache_loads: int = 0
    cache_saves: int = 0
    cache_load_bytes: int = 0
    cache_save_bytes: int = 0
    cache_lock_wait_seconds: float = 0.0

    @property
    def mean_batch_size(self) -> float:
        """Mean tables per pooled pass (0.0 before the first batch)."""
        return _ratio(self.tables, self.batches)

    @property
    def coalescing_ratio(self) -> float:
        """Requests answered per corpus pass paid: > 1 means micro-batching
        coalesced concurrent requests into shared pooled passes."""
        return _ratio(self.requests, self.batches)

    @property
    def warm_hit_rate(self) -> float:
        """Fraction of snippet-cache lookups served warm across requests."""
        return _ratio(self.cache_hits, self.cache_hits + self.cache_misses)

    def record_batch(self, n_requests: int, diagnostics: RunDiagnostics) -> None:
        """Fold one pooled pass into the lifetime counters."""
        self.requests += n_requests
        self.batches += 1
        self.tables += diagnostics.n_tables
        self.cells += diagnostics.n_cells
        self.queries_issued += diagnostics.queries_issued
        self.cache_hits += diagnostics.cache_hits
        self.cache_misses += diagnostics.cache_misses
        self.search_failures += diagnostics.search_failures
        self.search_retries += diagnostics.search_retries
        self.breaker_opens += diagnostics.breaker_opens
        self.degraded_cells += diagnostics.degraded_cells
        self.repaired_cells += diagnostics.repaired_cells
        self.results_cache_hits += diagnostics.results_cache_hits
        self.results_cache_misses += diagnostics.results_cache_misses
        self.label_memo_hits += diagnostics.label_memo_hits
        self.label_memo_misses += diagnostics.label_memo_misses
        self.cache_loads += diagnostics.cache_loads
        self.cache_saves += diagnostics.cache_saves
        self.cache_load_bytes += diagnostics.cache_load_bytes
        self.cache_save_bytes += diagnostics.cache_save_bytes
        self.cache_lock_wait_seconds += diagnostics.cache_lock_wait_seconds

    def to_payload(self) -> dict:
        """JSON-serialisable snapshot (counters plus derived ratios).

        Built by introspecting the dataclass fields, so a lifetime counter
        added to the dataclass is automatically part of the ``stats``
        payload (a completeness test pins this).
        """
        payload = {
            spec.name: getattr(self, spec.name) for spec in fields(self)
        }
        payload["mean_batch_size"] = self.mean_batch_size
        payload["coalescing_ratio"] = self.coalescing_ratio
        payload["warm_hit_rate"] = self.warm_hit_rate
        return payload


@dataclass
class AnnotationRun:
    """Annotations over a whole corpus, keyed by table name.

    ``diagnostics`` (present on runs produced by
    ``EntityAnnotator.annotate_tables``) aggregates failure and cache
    counters across the whole corpus; it is excluded from equality so two
    runs compare on their annotations alone.
    """

    tables: dict[str, TableAnnotation] = field(default_factory=dict)
    diagnostics: RunDiagnostics | None = field(default=None, compare=False)

    def table(self, table_name: str) -> TableAnnotation:
        """The (possibly empty) annotation set of one table."""
        if table_name not in self.tables:
            self.tables[table_name] = TableAnnotation(table_name=table_name)
        return self.tables[table_name]

    def add(self, annotation: CellAnnotation) -> None:
        self.table(annotation.table_name).add(annotation)

    def merge_table(self, annotation: TableAnnotation) -> None:
        """Fold one table's annotations into the run, merging duplicates.

        A corpus may legitimately contain several *distinct* tables that
        share a name (two sites exporting ``"directory"``); their cells
        belong to the same :class:`TableAnnotation`, exactly as the
        per-cell :meth:`add` path has always treated them.  Every corpus
        assembly point -- sequential, corpus-at-a-time and the parallel
        reassembly in :mod:`repro.core.parallel` -- goes through this
        method, so duplicate names merge identically everywhere instead
        of the last same-named table silently replacing its predecessors.
        """
        existing = self.tables.get(annotation.table_name)
        if existing is None:
            self.tables[annotation.table_name] = annotation
        else:
            existing.cells.extend(annotation.cells)
            existing.degraded.extend(annotation.degraded)

    def degraded_cells(self) -> list[DegradedCell]:
        """Every degraded (abandoned) cell in the run, grouped by table."""
        return [
            cell
            for name in sorted(self.tables)
            for cell in self.tables[name].degraded
        ]

    def all_cells(self) -> Iterator[CellAnnotation]:
        """Every cell annotation in the run, grouped by table."""
        for name in sorted(self.tables):
            yield from self.tables[name].cells

    def of_type(self, type_key: str) -> list[CellAnnotation]:
        return [cell for cell in self.all_cells() if cell.type_key == type_key]

    def __len__(self) -> int:
        return sum(len(table) for table in self.tables.values())
