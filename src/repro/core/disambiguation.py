"""Toponym disambiguation (Section 5.2.2, Figure 7).

A cell with spatial content may geocode to several interpretations.  The
paper resolves them collectively: build a graph with one node per
(cell, interpretation); add a directed edge between two nodes when their
cells share a row or a column (but are not the same cell) and the two
locations are geographically related (same direct container, or one is the
direct container of the other).  Node scores start at ``1 / |L_ij|`` and are
iterated as ``S(n) = sum of S(v) over in-neighbours v`` until a fixed point;
each cell keeps its highest-scoring interpretation.

Raw summation diverges on cyclic graphs, so -- as in PageRank, which the
paper cites as its inspiration -- we renormalise scores *within each cell's
candidate set* after every sweep; the per-cell distribution then converges
and the argmax is well-defined.  Cells whose candidates receive no votes at
all keep their uniform initial distribution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.config import AnnotatorConfig
from repro.geo.geocoder import Geocoder
from repro.geo.model import GeoLocation, LocationKind, are_related
from repro.tables.model import ColumnType, Table

CellKey = tuple[int, int]


@dataclass(frozen=True)
class ToponymNode:
    """One (cell, interpretation) node of the voting graph."""

    row: int
    column: int
    location: GeoLocation


@dataclass
class DisambiguationOutcome:
    """Chosen interpretation and final score per cell."""

    chosen: dict[CellKey, GeoLocation] = field(default_factory=dict)
    scores: dict[CellKey, dict[str, float]] = field(default_factory=dict)
    iterations: int = 0


class ToponymDisambiguator:
    """The Figure 7 voting-graph algorithm over candidate interpretations."""

    def __init__(self, config: AnnotatorConfig | None = None) -> None:
        self.config = config or AnnotatorConfig()

    def resolve(
        self, interpretations: dict[CellKey, list[GeoLocation]]
    ) -> DisambiguationOutcome:
        """Pick one interpretation per cell (ties broken by a seeded RNG)."""
        outcome = DisambiguationOutcome()
        cells = {key: locs for key, locs in interpretations.items() if locs}
        if not cells:
            return outcome
        nodes: list[ToponymNode] = []
        for (row, column), locations in sorted(cells.items()):
            for location in locations:
                nodes.append(ToponymNode(row=row, column=column, location=location))
        in_neighbours = self._build_edges(nodes)
        scores = {
            i: 1.0 / len(cells[(node.row, node.column)])
            for i, node in enumerate(nodes)
        }
        by_cell: dict[CellKey, list[int]] = {}
        for i, node in enumerate(nodes):
            by_cell.setdefault((node.row, node.column), []).append(i)

        iterations = 0
        for iterations in range(1, self.config.disambiguation_max_iterations + 1):
            raw = {
                i: sum(scores[v] for v in in_neighbours.get(i, ()))
                for i in range(len(nodes))
            }
            new_scores = dict(scores)
            for cell_key, indices in by_cell.items():
                total = sum(raw[i] for i in indices)
                if total > 0:
                    for i in indices:
                        new_scores[i] = raw[i] / total
            delta = max(abs(new_scores[i] - scores[i]) for i in range(len(nodes)))
            scores = new_scores
            if delta < self.config.disambiguation_epsilon:
                break
        outcome.iterations = iterations

        rng = random.Random(self.config.seed)
        for cell_key, indices in sorted(by_cell.items()):
            best_score = max(scores[i] for i in indices)
            best = [i for i in indices if scores[i] == best_score]
            chosen_index = best[0] if len(best) == 1 else rng.choice(best)
            outcome.chosen[cell_key] = nodes[chosen_index].location
            outcome.scores[cell_key] = {
                nodes[i].location.full_name: scores[i] for i in indices
            }
        return outcome

    @staticmethod
    def _build_edges(nodes: list[ToponymNode]) -> dict[int, list[int]]:
        """In-neighbour lists under the paper's two edge conditions."""
        in_neighbours: dict[int, list[int]] = {}
        for i, first in enumerate(nodes):
            for j, second in enumerate(nodes):
                if i == j:
                    continue
                same_cell = (first.row, first.column) == (second.row, second.column)
                if same_cell:
                    continue
                shares_line = first.row == second.row or first.column == second.column
                if not shares_line:
                    continue
                if are_related(first.location, second.location):
                    # first votes for second: edge first -> second.
                    in_neighbours.setdefault(j, []).append(i)
        return in_neighbours


class SpatialContextExtractor:
    """Extracts a per-row city context from a table's spatial columns.

    Spatial columns are those typed ``Location`` (GFT tables); when column
    types are unavailable (Wiki-style tables) a header heuristic
    (address / city / location / place) stands in for the techniques of
    Borges et al. that the paper defers to.
    """

    _SPATIAL_HEADERS = frozenset(("address", "city", "location", "place", "town"))

    def __init__(
        self, geocoder: Geocoder, config: AnnotatorConfig | None = None
    ) -> None:
        self.geocoder = geocoder
        self.config = config or AnnotatorConfig()
        self._disambiguator = ToponymDisambiguator(self.config)

    # -- column discovery ---------------------------------------------------------

    def spatial_columns(self, table: Table) -> list[int]:
        """Indices of the columns that carry spatial content."""
        columns = []
        for j, column in enumerate(table.columns):
            if self.config.use_gft_column_types:
                if column.column_type is ColumnType.LOCATION:
                    columns.append(j)
            elif column.name.strip().lower() in self._SPATIAL_HEADERS:
                columns.append(j)
        return columns

    # -- context extraction -----------------------------------------------------------

    def row_contexts(self, table: Table) -> dict[int, str]:
        """Map row index -> city name usable as query context.

        Every spatial cell is geocoded once; ambiguous interpretations are
        resolved collectively with the voting graph; the chosen location's
        city name becomes the row's context.  Rows without resolvable
        spatial content are absent from the result.
        """
        columns = self.spatial_columns(table)
        if not columns:
            return {}
        interpretations: dict[CellKey, list[GeoLocation]] = {}
        geocode_cache: dict[str, list[GeoLocation]] = {}
        for i in range(table.n_rows):
            for j in columns:
                value = table.cell(i, j).strip()
                if not value:
                    continue
                if value not in geocode_cache:
                    geocode_cache[value] = self.geocoder.geocode(value)
                locations = geocode_cache[value]
                if locations:
                    interpretations[(i, j)] = locations
        outcome = self._disambiguator.resolve(interpretations)
        contexts: dict[int, str] = {}
        for (row, _column), location in sorted(outcome.chosen.items()):
            if row in contexts:
                continue
            city = self._city_name(location)
            if city is not None:
                contexts[row] = city
        return contexts

    @staticmethod
    def _city_name(location: GeoLocation) -> str | None:
        if location.kind is LocationKind.CITY:
            return location.name
        for container in location.containers:
            if container.kind is LocationKind.CITY:
                return container.name
        return None
