"""Hybrid annotation: catalogue first, web search only for the unknown.

Section 6.4's stated future work: "we may use Limaye to annotate entities
that belong to a pre-compiled catalogue, and resort to the search engine
only to annotate previously unseen entities.  Since in general we expect a
table to have a combination of known and unknown entities, this should
bring down the running time of the annotation."

``HybridAnnotator`` implements exactly that: for every candidate cell it
first consults the catalogue (free); only cells the catalogue does not
know are sent to the search engine.  The result keeps the discovery power
of the web algorithm while cutting the number of paid queries roughly by
the catalogue's coverage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.classify.snippet import SnippetTypeClassifier
from repro.core.annotation import CellAnnotator, SnippetCache
from repro.core.config import AnnotatorConfig
from repro.core.postprocessing import eliminate_spurious
from repro.core.preprocessing import Preprocessor
from repro.core.results import AnnotationRun, CellAnnotation, TableAnnotation
from repro.kb.catalogue import Catalogue
from repro.tables.model import Table
from repro.web.search import SearchEngine


@dataclass
class HybridStats:
    """How much work the catalogue saved."""

    catalogue_hits: int = 0
    web_queries: int = 0

    @property
    def total_cells(self) -> int:
        return self.catalogue_hits + self.web_queries

    @property
    def query_savings(self) -> float:
        """Fraction of candidate cells resolved without a search query."""
        if self.total_cells == 0:
            return 0.0
        return self.catalogue_hits / self.total_cells


class HybridAnnotator:
    """Catalogue lookups for known entities, web search for the rest."""

    def __init__(
        self,
        classifier: SnippetTypeClassifier,
        engine: SearchEngine,
        catalogue: Catalogue,
        config: AnnotatorConfig | None = None,
        cache: SnippetCache | None = None,
    ) -> None:
        self.config = config or AnnotatorConfig()
        self.catalogue = catalogue
        self.preprocessor = Preprocessor(self.config)
        self.cell_annotator = CellAnnotator(
            classifier, engine, self.config, cache=cache
        )
        self.stats = HybridStats()

    def annotate_table(self, table: Table, type_keys) -> TableAnnotation:
        """Annotate one table; catalogue hits never touch the engine.

        A catalogue hit must be unambiguous *within the requested types*
        (exactly one candidate type) to be used directly; ambiguous names
        fall through to the web, whose snippets can tell the senses apart.
        """
        type_keys = list(type_keys)
        if not type_keys:
            raise ValueError("type_keys must be non-empty")
        wanted = set(type_keys)
        annotation = TableAnnotation(table_name=table.name)
        for candidate in self.preprocessor.candidate_cells(table):
            known_types = self.catalogue.types_of(candidate.value) & wanted
            if len(known_types) == 1:
                self.stats.catalogue_hits += 1
                annotation.add(
                    CellAnnotation(
                        table_name=table.name,
                        row=candidate.row,
                        column=candidate.column,
                        type_key=next(iter(known_types)),
                        score=1.0,
                        cell_value=candidate.value,
                    )
                )
                continue
            self.stats.web_queries += 1
            decision = self.cell_annotator.annotate_value(
                candidate.value, type_keys
            )
            if decision.annotated:
                annotation.add(
                    CellAnnotation(
                        table_name=table.name,
                        row=candidate.row,
                        column=candidate.column,
                        type_key=decision.type_key,  # type: ignore[arg-type]
                        score=decision.score,
                        cell_value=candidate.value,
                    )
                )
        if self.config.use_postprocessing:
            annotation = eliminate_spurious(
                table,
                annotation,
                use_repetition_factor=self.config.use_repetition_factor,
            )
        return annotation

    def annotate_tables(self, tables, type_keys) -> AnnotationRun:
        """Annotate a corpus."""
        run = AnnotationRun()
        for table in tables:
            run.tables[table.name] = self.annotate_table(table, type_keys)
        return run
