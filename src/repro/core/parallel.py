"""Process-pool execution layer for corpus annotation.

``EntityAnnotator.annotate_tables(..., workers=N)`` shards a corpus across
``N`` worker processes.  Each worker holds a full copy of the annotator
(classifier, engine, config), optionally warm-starts from a shared cache
directory, annotates its shard corpus-at-a-time, merge-saves its caches
back (so no worker's save discards another's entries -- see
:mod:`repro.persistence`), and ships its shard's
:class:`~repro.core.results.AnnotationRun` home.  The parent reassembles
the per-table annotations in original corpus order and folds the shard
diagnostics into one corpus-wide view.

Worker state is established once per process via the pool initializer.
Under the ``fork`` start method the parent's annotator is inherited by
reference (copy-on-write, no serialisation at all); under ``spawn`` or
``forkserver`` a pickled payload is shipped instead.  Either way every
worker computes with an identical copy of the classifier/engine state, so
annotations are a pure function of the shard -- which is why the parallel
path is byte-identical to the sequential one (the parity caveat is the
same as for corpus-at-a-time batching: under random *failure injection*
the workers' independent rng streams legitimately diverge from the
sequential retry stream).

The layer is deliberately dumb about placement: shards are ``N``
contiguous, near-equal slices of the corpus.  Query deduplication happens
*within* a shard (each worker runs the normal corpus-at-a-time path); a
query string spanning two shards is issued once per shard, which the
merged diagnostics report honestly via ``queries_issued``.
"""

from __future__ import annotations

import multiprocessing
import pickle
import sys
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Sequence

from repro.core.results import AnnotationRun, RunDiagnostics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotator imports us)
    from repro.core.annotator import EntityAnnotator
    from repro.tables.model import Table

# Worker-process state, set by _init_worker.  One annotator per process,
# reused across every shard task that lands on it.
_WORKER_ANNOTATOR = None

# Fork-path handoff: the parent parks its annotator here right before
# creating the pool; forked children inherit the reference and the parent
# clears it immediately after.  Avoids pickling multi-megabyte engine
# state when the OS can copy-on-write it for free.
_FORK_PAYLOAD = None


def _start_method() -> str:
    """``fork`` on Linux (cheapest: copy-on-write, no pickling), else the
    platform default.  macOS lists ``fork`` as available but made ``spawn``
    the default for a reason -- forking after Apple's system libraries or
    a BLAS have spun up threads can abort or deadlock the child -- so
    everywhere but Linux the default start method is honoured."""
    if sys.platform.startswith("linux") and (
        "fork" in multiprocessing.get_all_start_methods()
    ):
        return "fork"
    return multiprocessing.get_start_method()


def _init_worker(pickled_annotator: bytes | None, cache_dir) -> None:
    """Pool initializer: materialise this process's annotator, warm it up."""
    global _WORKER_ANNOTATOR
    if pickled_annotator is None:
        _WORKER_ANNOTATOR = _FORK_PAYLOAD  # inherited via fork
    else:
        _WORKER_ANNOTATOR = pickle.loads(pickled_annotator)
    if _WORKER_ANNOTATOR is None:  # pragma: no cover - defensive
        raise RuntimeError("worker started without an annotator payload")
    if cache_dir is not None:
        # Warm start from the shared cache directory.  A cold report is
        # fine (first worker ever, stale fingerprint, lock timeout): the
        # caches are an optimisation, never a correctness dependency.
        _WORKER_ANNOTATOR.load_caches(cache_dir)


def _annotate_shard(
    tables: "Sequence[Table]", type_keys: list[str], cache_dir
) -> AnnotationRun:
    """One worker task: corpus-at-a-time over the shard, then merge-save."""
    run = _WORKER_ANNOTATOR.annotate_tables(tables, type_keys)
    if cache_dir is not None:
        # Merge-on-save under the advisory lock: this worker's fresh
        # entries are unioned with whatever other workers saved first.
        _WORKER_ANNOTATOR.save_caches(cache_dir)
    return run


def shard_tables(tables: "Sequence[Table]", workers: int) -> list[list["Table"]]:
    """Split *tables* into ``min(workers, len(tables))`` contiguous shards.

    Shard sizes differ by at most one table; order within and across
    shards follows the input, so reassembling shard runs in shard order
    reproduces the sequential table order exactly.
    """
    n_shards = min(workers, len(tables))
    bounds = [round(i * len(tables) / n_shards) for i in range(n_shards + 1)]
    return [list(tables[bounds[i] : bounds[i + 1]]) for i in range(n_shards)]


def annotate_tables_parallel(
    annotator: "EntityAnnotator",
    tables: "Sequence[Table]",
    type_keys: list[str],
    workers: int,
    cache_dir=None,
) -> AnnotationRun:
    """Annotate *tables* across a pool of *workers* processes.

    The shard -> warm-start -> annotate -> merge-save data flow described
    in ``docs/architecture.md``.  Returns one :class:`AnnotationRun` whose
    ``tables`` are in original corpus order and whose ``diagnostics`` are
    the :meth:`RunDiagnostics.combined` fold of every shard's.

    The *parent* annotator does none of the annotation work, so its
    lifetime counters (engine clock, ``failure_count``) do not advance --
    the run's diagnostics carry the workers' accounting.  When *cache_dir*
    is set the parent warm-starts itself from the merged caches afterwards,
    so follow-up in-process work benefits from the workers' effort.
    """
    tables = list(tables)
    shards = shard_tables(tables, workers)
    method = _start_method()
    context = multiprocessing.get_context(method)
    global _FORK_PAYLOAD
    if method == "fork":
        payload = None
        _FORK_PAYLOAD = annotator
    else:  # pragma: no cover - exercised only on spawn-only platforms
        payload = pickle.dumps(annotator, protocol=pickle.HIGHEST_PROTOCOL)
    try:
        with ProcessPoolExecutor(
            max_workers=len(shards),
            mp_context=context,
            initializer=_init_worker,
            initargs=(payload, cache_dir),
        ) as pool:
            futures = [
                pool.submit(_annotate_shard, shard, type_keys, cache_dir)
                for shard in shards
            ]
            shard_runs = [future.result() for future in futures]
    finally:
        _FORK_PAYLOAD = None
    run = AnnotationRun()
    for shard_run in shard_runs:
        run.tables.update(shard_run.tables)
    run.diagnostics = RunDiagnostics.combined(
        [shard_run.diagnostics for shard_run in shard_runs]
    )
    if cache_dir is not None:
        annotator.load_caches(cache_dir)
    return run
