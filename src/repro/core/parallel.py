"""Process-pool execution layer for corpus annotation.

``EntityAnnotator.annotate_tables(..., workers=N)`` distributes a corpus
across ``N`` worker processes.  Each worker holds a full copy of the
annotator (classifier, engine, config), optionally warm-starts from a
shared cache directory, annotates the tasks it pulls corpus-at-a-time,
merge-saves its caches back once at the end of the run (so no worker's
save discards another's entries -- see :mod:`repro.persistence`), and
ships each task's :class:`~repro.core.results.AnnotationRun` home.  The
parent reassembles the per-table annotations deterministically in
original corpus order -- **merging** same-named tables' cells, never
replacing them -- and folds the task diagnostics into one corpus-wide
view with per-worker load accounting
(:class:`~repro.core.results.WorkerLoad`).

Two schedulers place the work (``AnnotatorConfig.schedule``):

``stealing`` (default)
    The parent dispatches cost-bounded *chunk* tasks -- consecutive tables
    packed until a cell-count budget is reached, a giant table travelling
    alone -- and long-lived workers receive the next task the moment they
    finish one.  A skewed corpus (one 2,000-row table next to hundreds of
    tiny ones, the shape real web-table corpora exhibit) keeps every
    worker busy: whoever draws the giant table works it while the rest
    drain the small chunks.

``static``
    PR 3's contiguous near-equal slices, one task per worker.  Retained
    as the parity and benchmark baseline; on a skewed corpus the worker
    whose slice holds the giant table serialises the run.

Under the stealing scheduler a giant table may additionally be **split
into row-range slice tasks** (:class:`TableSlice`,
``AnnotatorConfig.split_giant_tables`` / ``max_slice_cost``) so even the
giant stops bounding the critical path: each slice's sub-table is
annotated *raw* by whichever worker pulls it
(:meth:`~repro.core.annotator.EntityAnnotator.annotate_table_slice`
shifts rows to full-table coordinates and skips post-processing, which
is table-global), the parent reassembles a table's slices in row order
through :meth:`AnnotationRun.merge_table`, then post-processes once with
the full original table -- byte-identical to the unsplit run, degraded
cells included.  A slice is its own queue task, so crash recovery keeps
its granularity for free: a worker SIGKILLed mid-slice requeues exactly
that slice, and a poisonous slice quarantines alone (only its rows'
candidate cells degrade).  Splitting never engages under spatial
disambiguation (row contexts are table-global) or the static schedule.

The pool itself is hand-rolled (one duplex pipe per worker, parent-side
dispatch) rather than a ``ProcessPoolExecutor``, because the executor
declares the *whole pool* broken when any worker dies.  Here a worker
death is survivable by construction:

* the parent records exactly which task each worker holds in flight, so a
  crashed worker's task is identified without any acknowledgement
  protocol and **requeued** onto a fresh worker (the dead one is
  respawned), up to ``AnnotatorConfig.task_retries`` times;
* a task that keeps killing its workers -- a poison task -- is
  **quarantined**: the parent stops re-running it, marks every candidate
  cell of its tables *degraded* on the run
  (:class:`~repro.core.results.DegradedCell`, ``reason="worker-crash"``)
  and finishes the rest of the corpus;
* per-worker result pipes isolate crash damage: a worker killed mid-send
  corrupts only its own pipe, which the parent simply closes (after
  draining any complete messages that landed before the death, so a
  worker that finished its task and died idle never has its work redone).

``diagnostics.tasks_requeued`` / ``tasks_quarantined`` report what
happened.  With no crashes the dispatch order, results and accounting are
exactly the executor-based layer's, so annotations stay byte-identical to
the sequential run.

Worker state is established once per process.  Under the ``fork`` start
method the parent's annotator is inherited by reference (copy-on-write,
no serialisation at all); under ``spawn`` or ``forkserver`` a pickled
payload is shipped instead.  Either way every worker computes with an
identical copy of the classifier/engine state, so annotations are a pure
function of the task's tables -- which is why both schedulers are
byte-identical to the sequential path.  (Failure injection is
deterministic per (seed, query, occurrence), so even a flaky engine fails
the same queries inside a worker as the sequential run fails for each
query's first issue.)

The layer stays deliberately dumb about content: query deduplication
happens *within* a task (each worker runs the normal corpus-at-a-time
path over the task's tables); a query string spanning two tasks is issued
once per task, which the merged diagnostics report honestly via
``queries_issued``.  Chunking is a pure function of the table shapes and
the cost budget, so a given corpus always yields the same task list.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import signal
import sys
import time
from collections import deque
from dataclasses import dataclass, replace
from multiprocessing import connection
from typing import TYPE_CHECKING, Callable, Sequence, Union

try:  # POSIX rusage for per-worker RSS accounting; absent on some hosts.
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

from repro.core.config import SCHEDULES
from repro.core.results import (
    AnnotationRun,
    DegradedCell,
    RunDiagnostics,
    TableAnnotation,
    WorkerLoad,
)
from repro.observability import metrics as obs_metrics
from repro.observability import tracing
from repro.observability.log import get_logger
from repro.observability.tracing import span
from repro.tables.model import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotator imports us)
    from repro.core.annotator import EntityAnnotator

_LOG = get_logger(__name__)

CHUNKS_PER_WORKER = 4
"""Automatic chunk sizing: aim for this many stealing tasks per worker."""

_FLUSH_TIMEOUT = 120.0
"""Upper bound on waiting for a worker's end-of-run cache flush; a worker
that cannot ack in time is abandoned (merge-on-save makes a lost flush
cost warmth, never correctness)."""

_WAIT_TICK = 1.0
"""Parent poll granularity while waiting for worker messages, seconds.
The common case is event-driven (process sentinels are waited on
alongside the pipes, so both results and deaths wake the parent
immediately); the tick only bounds exotic missed-wakeup cases."""

_STOP_JOIN_TIMEOUT = 5.0
"""Grace period for workers to exit after a stop command."""

# Fork-path handoff: the parent parks its annotator here for the duration
# of the run; forked children (including crash replacements spawned
# mid-run) inherit the reference and the parent clears it in a finally.
# Avoids pickling multi-megabyte engine state when the OS can
# copy-on-write it for free.
_FORK_PAYLOAD = None


def _start_method() -> str:
    """``fork`` on Linux (cheapest: copy-on-write, no pickling), else the
    platform default.  macOS lists ``fork`` as available but made ``spawn``
    the default for a reason -- forking after Apple's system libraries or
    a BLAS have spun up threads can abort or deadlock the child -- so
    everywhere but Linux the default start method is honoured."""
    if sys.platform.startswith("linux") and (
        "fork" in multiprocessing.get_all_start_methods()
    ):
        return "fork"
    return multiprocessing.get_start_method()


def _max_rss_kb() -> int:
    """This process's peak resident set size in KiB (0 when unknowable).

    ``ru_maxrss`` is kilobytes on Linux but *bytes* on macOS; normalised
    here so :class:`~repro.core.results.WorkerLoad` readers never have to
    care.  Fallback only: some Linux kernels let a child *inherit* the
    parent's ``ru_maxrss`` across ``spawn``, so a freshly started worker
    can report the parent's lifetime peak and every subsequent delta
    reads zero — prefer :func:`_current_rss_kb` where ``/proc`` exists.
    """
    if resource is None:  # pragma: no cover - non-POSIX platforms
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        peak //= 1024
    return int(peak)


def _current_rss_kb() -> int:
    """This process's *current* resident set size in KiB.

    Read from ``/proc/self/statm`` (field 2, resident pages) because it
    reflects this process alone, right now — unlike ``ru_maxrss``, which
    is a lifetime peak that spawn children may inherit from the parent.
    Deltas of this value are the honest "how much memory did attaching
    cost" number, and a running ``max`` of samples stands in for the
    peak.  Falls back to :func:`_max_rss_kb` where ``/proc`` is absent.
    """
    try:
        with open("/proc/self/statm") as handle:
            resident_pages = int(handle.read().split()[1])
        return resident_pages * (os.sysconf("SC_PAGE_SIZE") // 1024)
    except (OSError, ValueError, IndexError):  # pragma: no cover - no /proc
        return _max_rss_kb()


def _portable_error(error: BaseException) -> BaseException:
    """The error itself when it pickles, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return RuntimeError(f"{type(error).__name__}: {error}")


def _worker_main(
    conn, pickled_annotator: bytes | None, cache_dir, obs=None
) -> None:
    """Worker process loop: receive commands, ship results home.

    Commands (tuples, first element the kind): ``("task", index, tables,
    type_keys)`` annotates and answers ``("done", index, pid, run,
    busy_seconds, (peak_rss_kb, attach_seconds, attach_rss_kb,
    cache_load_bytes, spans, metrics))`` or ``("error", index, pid,
    error)``; ``("flush",)`` merge-saves the caches and answers
    ``("flushed", pid)`` (or ``("flush-error", pid, error)``);
    ``("stop",)`` exits the loop.

    The trailing stats tuple makes the memory economics of the index and
    cache backends auditable: *attach_rss_kb* is how much resident
    memory this worker grew while materialising its annotator
    (unpickling under ``spawn``, near-zero under ``fork`` or when the
    engine's index is a shared mmap artifact) and loading caches;
    *attach_seconds* is how long that took; *peak_rss_kb* is the highest
    resident size sampled (at entry, after attach, after each task);
    *cache_load_bytes* is what the warm start actually read -- whole
    pickled payloads under the legacy cache files, just the store
    manifests plus delta logs under shared disk stores.

    *obs* is the parent's observability context, ``(tracing_enabled,
    trace_id)``: under ``spawn`` the module globals do not carry over, so
    the parent ships them explicitly (the fork path inherits them
    anyway, and re-enabling is idempotent).  With tracing on, the spans
    this worker recorded per task (element 4 of the stats tuple) and its
    per-task metrics-registry dict (element 5) ship home inside the
    ``done`` message; the parent splices the spans into its own
    :class:`~repro.observability.tracing.TraceBuffer` and merges the
    registry, exactly like ``RunDiagnostics.combined`` folds worker
    diagnostics.
    """
    # A terminal Ctrl-C delivers SIGINT to the whole foreground process
    # group.  The *parent* owns interrupt handling (stop dispatching,
    # flush every worker's caches, re-raise); a worker that dies on its
    # own KeyboardInterrupt would lose exactly the warmth the graceful
    # path exists to save.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic hosts
        pass
    if obs is not None and obs[0]:
        tracing.enable_tracing(obs[1])
        tracing.get_buffer().clear()  # fork children inherit parent spans
    rss_at_entry = _current_rss_kb()
    attach_start = time.perf_counter()
    if pickled_annotator is None:
        annotator = _FORK_PAYLOAD  # inherited via fork
    else:
        annotator = pickle.loads(pickled_annotator)
    if annotator is None:  # pragma: no cover - defensive
        raise RuntimeError("worker started without an annotator payload")
    # Delta, not absolute: a fork worker inherits the parent's lifetime
    # IO counters, and only what *this* process read to warm up belongs
    # in its load accounting.
    load_bytes_before = annotator.cache_load_bytes
    if cache_dir is not None:
        # Warm start from the shared cache directory.  A cold report is
        # fine (first worker ever, stale fingerprint, lock timeout): the
        # caches are an optimisation, never a correctness dependency.
        annotator.load_caches(cache_dir)
    cache_load_bytes = max(0, annotator.cache_load_bytes - load_bytes_before)
    attach_seconds = time.perf_counter() - attach_start
    attach_rss_kb = max(0, _current_rss_kb() - rss_at_entry)
    # Sampled peak: entry, post-attach, then after every task.  A true
    # kernel peak (``ru_maxrss``) would be preferable, but spawn children
    # can inherit the parent's value on some kernels (see _max_rss_kb),
    # which poisons both the peak and every delta computed from it.
    peak_rss_kb = max(rss_at_entry, rss_at_entry + attach_rss_kb)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # pragma: no cover - parent died
            break
        kind = message[0]
        if kind == "task":
            _, index, tables, type_keys = message
            start = time.perf_counter()
            try:
                with span("pool.task", task_index=index, pid=os.getpid()):
                    run = _annotate_task(annotator, tables, type_keys)
            except Exception as error:
                conn.send(("error", index, os.getpid(), _portable_error(error)))
            else:
                busy = time.perf_counter() - start
                peak_rss_kb = max(peak_rss_kb, _current_rss_kb())
                task_spans: list = []
                task_metrics: dict = {}
                if tracing.tracing_enabled():
                    task_spans = tracing.get_buffer().drain()
                    registry = obs_metrics.MetricsRegistry()
                    registry.inc("pool.tasks")
                    registry.inc("pool.task_cells", run.diagnostics.n_cells)
                    registry.observe("pool.task_seconds", busy)
                    task_metrics = registry.to_dict()
                conn.send(
                    (
                        "done",
                        index,
                        os.getpid(),
                        run,
                        busy,
                        (
                            peak_rss_kb,
                            attach_seconds,
                            attach_rss_kb,
                            cache_load_bytes,
                            task_spans,
                            task_metrics,
                        ),
                    )
                )
        elif kind == "flush":
            try:
                annotator.save_caches(cache_dir)
            except Exception as error:
                conn.send(("flush-error", os.getpid(), _portable_error(error)))
            else:
                conn.send(("flushed", os.getpid()))
        elif kind == "stop":
            break
    conn.close()


def _annotate_task(
    annotator: "EntityAnnotator", items: "Sequence[TaskItem]", type_keys
) -> AnnotationRun:
    """Annotate one queue task inside a worker.

    A slice task (always a single :class:`TableSlice`) goes through the
    raw slice path -- no post-processing, rows shifted to full-table
    coordinates -- everything else through the ordinary corpus-at-a-time
    path, exactly as before splitting existed.
    """
    if len(items) == 1 and isinstance(items[0], TableSlice):
        return annotator.annotate_table_slice(items[0], type_keys)
    return annotator.annotate_tables(items, type_keys)


def _wait_ready(targets, timeout: float):
    """Block until a pipe has a message or a worker sentinel fires.

    Thin wrapper over :func:`multiprocessing.connection.wait`, kept as a
    module-level seam so the graceful-interrupt tests can inject a
    ``KeyboardInterrupt`` at the exact point a terminal Ctrl-C lands in
    the parent: while it sits waiting on the pool.
    """
    return connection.wait(targets, timeout)


class _Worker:
    """Parent-side handle of one pool process."""

    __slots__ = ("slot", "process", "conn", "inflight", "inflight_since", "retired")

    def __init__(self, slot: int, process, conn) -> None:
        self.slot = slot
        self.process = process
        self.conn = conn
        # Index of the task this worker is annotating, or None when idle.
        # This single field is the whole crash-recovery bookkeeping: a
        # dead worker with a non-None inflight crashed mid-task, and that
        # is the task to requeue.
        self.inflight: int | None = None
        # When the in-flight task was dispatched (perf_counter).  Only
        # observability reads it: a worker that dies mid-task never
        # closes its own ``pool.task`` span, so the parent synthesises an
        # ``aborted`` span from this dispatch timestamp instead of
        # leaking an open span.
        self.inflight_since = 0.0
        # A reaped-and-not-replaced worker: excluded from dispatch and
        # from the wait set (a joined process's sentinel stays signalled
        # forever and would busy-spin the parent).
        self.retired = False


class _WorkerPool:
    """A crash-tolerant process pool with parent-side task dispatch.

    One duplex pipe per worker.  The parent assigns tasks to specific
    idle workers (recording what is in flight where), collects results as
    they arrive, requeues the in-flight task of any worker that dies and
    spawns a replacement, and quarantines tasks that exhaust their
    requeue budget.  Dispatch order is deterministic: tasks go out in
    index order, workers are offered work in slot order.
    """

    def __init__(
        self,
        context,
        n_workers: int,
        payload: bytes | None,
        cache_dir,
        on_worker_spawn: Callable[[int], None] | None = None,
    ) -> None:
        self._context = context
        self._payload = payload
        self._cache_dir = cache_dir
        self._on_worker_spawn = on_worker_spawn
        # Snapshot of the parent's observability context, shipped to
        # every worker (initial and crash replacements): under ``spawn``
        # the tracing module globals do not carry over.
        self._obs = (tracing.tracing_enabled(), tracing.current_trace_id())
        self.n_workers = n_workers
        self.workers: list[_Worker] = [
            self._spawn(slot) for slot in range(n_workers)
        ]

    def _spawn(self, slot: int) -> _Worker:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(child_conn, self._payload, self._cache_dir, self._obs),
            daemon=True,
        )
        process.start()
        child_conn.close()
        if self._on_worker_spawn is not None:
            self._on_worker_spawn(process.pid)
        return _Worker(slot=slot, process=process, conn=parent_conn)

    # -- task loop -----------------------------------------------------------------------

    def run_tasks(
        self,
        tasks: "Sequence[Sequence[TaskItem]]",
        type_keys: list[str],
        task_retries: int,
    ) -> tuple[dict[int, tuple], list[int], int, list[BaseException]]:
        """Drive every task to completion, quarantine or error.

        Returns ``(completed, quarantined_indices, n_requeued, errors)``
        where ``completed[index] = (index, run, pid, busy_seconds,
        worker_stats)`` (*worker_stats* the ``(peak_rss_kb,
        attach_seconds, attach_rss_kb)`` triple from the worker).  A
        worker *exception* (the task itself raised) aborts the run as the
        executor-based layer did: dispatch stops, in-flight tasks drain,
        and the caller raises the first error after the cache flush.  A
        worker *death* is recovered instead.  ``KeyboardInterrupt``
        switches to the same drain-then-return path, the interrupt placed
        first in ``errors`` so the caller re-raises it after the flush.
        """
        pending: deque[int] = deque(range(len(tasks)))
        attempts = [0] * len(tasks)
        completed: dict[int, tuple] = {}
        quarantined: list[int] = []
        errored: set[int] = set()
        errors: list[BaseException] = []
        requeued = 0
        interrupt: BaseException | None = None

        def handle(worker: _Worker, message: tuple) -> None:
            kind = message[0]
            if kind == "done":
                _, index, pid, run, busy, worker_stats = message
                completed[index] = (index, run, pid, busy, worker_stats)
                worker.inflight = None
                # Ship-home splice: the worker's spans land in the
                # parent's buffer, its per-task registry merges into the
                # parent's -- the metrics analogue of
                # ``RunDiagnostics.combined``.
                if len(worker_stats) > 4 and worker_stats[4]:
                    tracing.get_buffer().extend(worker_stats[4])
                if len(worker_stats) > 5 and worker_stats[5]:
                    obs_metrics.get_registry().merge(
                        obs_metrics.MetricsRegistry.from_dict(worker_stats[5])
                    )
            elif kind == "error":
                _, index, pid, error = message
                errored.add(index)
                errors.append(error)
                worker.inflight = None
            # "flushed"/"flush-error" cannot arrive here: flushes are
            # only requested after this loop returns.

        while len(completed) + len(quarantined) + len(errored) < len(tasks):
            aborting = bool(errors) or interrupt is not None
            try:
                if not aborting:
                    self._dispatch(pending, tasks, type_keys)
                elif all(w.inflight is None for w in self.workers):
                    break  # aborting and nothing left to drain
                ready = _wait_ready(self._wait_targets(), _WAIT_TICK)
                self._receive(ready, handle)
                requeued += self._reap(
                    handle,
                    pending,
                    attempts,
                    task_retries,
                    quarantined,
                    respawn=not aborting,
                )
            except KeyboardInterrupt as error:
                # Graceful shutdown (terminal Ctrl-C): stop handing out
                # new tasks, but keep the pool alive long enough to flush
                # the warmth the finished tasks already paid for.  Queued
                # tasks are dropped; running ones complete (a worker
                # cannot be interrupted mid-task without losing its
                # caches anyway).  The interrupt is re-raised by the
                # caller after the flush so the CLI still observes it
                # (exit code 130).
                interrupt = error
        if interrupt is not None:
            errors.insert(0, interrupt)
        return completed, quarantined, requeued, errors

    def _dispatch(
        self,
        pending: deque[int],
        tasks: "Sequence[Sequence[TaskItem]]",
        type_keys: list[str],
    ) -> None:
        for worker in self.workers:
            if not pending:
                return
            if worker.retired or worker.inflight is not None:
                continue
            if not worker.process.is_alive():
                continue  # the next reap requeues/respawns
            index = pending[0]
            try:
                worker.conn.send(("task", index, list(tasks[index]), type_keys))
            except (BrokenPipeError, OSError):
                continue  # died between is_alive and send; reaped next tick
            pending.popleft()
            worker.inflight = index
            worker.inflight_since = time.perf_counter()

    def _wait_targets(self) -> list:
        targets: list = []
        for worker in self.workers:
            if worker.retired:
                continue
            targets.append(worker.conn)
            targets.append(worker.process.sentinel)
        return targets

    def _receive(self, ready, handle) -> None:
        ready = set(ready or ())
        for worker in self.workers:
            if worker.retired or worker.conn not in ready:
                continue
            try:
                while worker.conn.poll():
                    handle(worker, worker.conn.recv())
            except (EOFError, OSError):
                # Dead or corrupt pipe (worker killed mid-send); the reap
                # below requeues whatever it held.
                pass

    def _reap(
        self,
        handle,
        pending: deque[int],
        attempts: list[int],
        task_retries: int,
        quarantined: list[int],
        respawn: bool,
    ) -> int:
        """Recover from dead workers; returns how many tasks were requeued."""
        requeued = 0
        for position, worker in enumerate(self.workers):
            if worker.retired or worker.process.is_alive():
                continue
            # Drain results that made it onto the pipe before the death:
            # a worker that completed its task and died idle must not
            # have its finished work redone.
            try:
                while worker.conn.poll():
                    handle(worker, worker.conn.recv())
            except (EOFError, OSError):
                pass
            crashed_task = worker.inflight
            worker.inflight = None
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            worker.process.join(timeout=0)
            if crashed_task is not None:
                attempts[crashed_task] += 1
                outcome = (
                    "quarantined"
                    if attempts[crashed_task] > task_retries
                    else "requeued"
                )
                # The worker died mid-span, so its ``pool.task`` span
                # never closed (and never shipped home); the parent
                # records an aborted stand-in from its own dispatch
                # bookkeeping -- linked retry spans, not a leak.
                tracing.record_span(
                    "pool.task.aborted",
                    time.perf_counter() - worker.inflight_since,
                    status="aborted",
                    task_index=crashed_task,
                    pid=worker.process.pid,
                    attempt=attempts[crashed_task],
                    outcome=outcome,
                )
                obs_metrics.get_registry().inc(f"pool.tasks_{outcome}")
                _LOG.warning(
                    f"pool.task_{outcome}",
                    task_index=crashed_task,
                    pid=worker.process.pid,
                    attempt=attempts[crashed_task],
                    task_retries=task_retries,
                )
                if attempts[crashed_task] > task_retries:
                    quarantined.append(crashed_task)
                else:
                    requeued += 1
                    pending.appendleft(crashed_task)
            if respawn:
                self.workers[position] = self._spawn(worker.slot)
            else:
                worker.retired = True
        return requeued

    # -- flush & shutdown ----------------------------------------------------------------

    def flush(self) -> list[BaseException]:
        """Ask every live worker to merge-save its caches, best-effort.

        One flush per worker process, no barrier needed: each worker has
        its own command pipe, so a flush cannot be drained twice by one
        worker while another saves nothing.  Returns any errors the
        saves reported.
        """
        waiting: list[_Worker] = []
        for worker in self.workers:
            if worker.retired or not worker.process.is_alive():
                continue
            try:
                worker.conn.send(("flush",))
            except (BrokenPipeError, OSError):  # pragma: no cover - race
                continue
            waiting.append(worker)
        errors: list[BaseException] = []
        deadline = time.monotonic() + _FLUSH_TIMEOUT
        while waiting:
            remaining = deadline - time.monotonic()
            if remaining <= 0:  # pragma: no cover - pathological save stall
                break
            ready = set(
                connection.wait([w.conn for w in waiting], min(remaining, 1.0))
                or ()
            )
            still_waiting: list[_Worker] = []
            for worker in waiting:
                acked = False
                if worker.conn in ready:
                    try:
                        message = worker.conn.recv()
                        if message[0] == "flush-error":
                            errors.append(message[2])
                        acked = True
                    except (EOFError, OSError):
                        acked = True  # died mid-flush; abandon it
                elif not worker.process.is_alive():
                    acked = True  # pragma: no cover - died without output
                if not acked:
                    still_waiting.append(worker)
            waiting = still_waiting
        return errors

    def shutdown(self) -> None:
        """Stop every worker: polite command, then escalate."""
        for worker in self.workers:
            if not worker.retired and worker.process.is_alive():
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        for worker in self.workers:
            worker.process.join(timeout=_STOP_JOIN_TIMEOUT)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass


@dataclass(frozen=True)
class TableSlice:
    """A row-range sub-task of one corpus table (the splitting unit).

    ``table`` is the materialised sub-table -- same name and columns,
    ``rows[row_start:row_stop]`` -- that ships to the worker; ``rows``
    hold references into the original row lists, so slicing is cheap.
    ``table_index`` is the table's position in the corpus: slices group
    by *position*, never by name, because a corpus may contain several
    distinct tables sharing a name and their slices must not be
    reassembled into one table.  Half-open ``[row_start, row_stop)``
    ranges partition the table exactly: no row lost, none duplicated.
    """

    table_name: str
    row_start: int
    row_stop: int
    table_index: int
    table: "Table"


TaskItem = Union["Table", TableSlice]
"""One unit of a queue task: a whole table, or a row-range slice of one.
A slice always travels as its own single-item task, so crash recovery
requeues (and quarantine degrades) exactly one slice."""


def slice_table(
    table: "Table", table_index: int, slice_cost_target: int
) -> list[TableSlice]:
    """Cut *table* into row-range slices of at most *slice_cost_target*
    estimated cost each (cost model of :func:`table_cost`: rows x
    columns).

    Slices are contiguous, cover every row exactly once, and never go
    below one row -- a one-row table is unsplittable however small the
    budget, the same "atomic floor" a giant table had under pure
    chunking.  The cut is a pure function of the table shape and the
    budget, so a given corpus always yields the same slice list.
    """
    if slice_cost_target < 1:
        raise ValueError(
            f"slice_cost_target must be >= 1, got {slice_cost_target}"
        )
    rows_per_slice = max(1, slice_cost_target // max(1, table.n_columns))
    slices: list[TableSlice] = []
    for row_start in range(0, table.n_rows, rows_per_slice):
        row_stop = min(row_start + rows_per_slice, table.n_rows)
        slices.append(
            TableSlice(
                table_name=table.name,
                row_start=row_start,
                row_stop=row_stop,
                table_index=table_index,
                table=Table(
                    name=table.name,
                    columns=table.columns,
                    rows=table.rows[row_start:row_stop],
                ),
            )
        )
    return slices


def table_cost(table: "Table") -> int:
    """Cheap per-table work estimate: its cell count (``rows x columns``).

    Annotation cost is dominated by per-candidate-cell engine requests,
    and candidate count scales with cell count, so the grid size is a
    good, zero-cost proxy -- it never inspects cell contents.  Every
    table costs at least 1 so empty tables still occupy a task slot.
    """
    return max(1, table.n_rows * table.n_columns)


def shard_tables(tables: "Sequence[Table]", workers: int) -> list[list["Table"]]:
    """Split *tables* into ``min(workers, len(tables))`` contiguous shards.

    Shard sizes differ by at most one table; order within and across
    shards follows the input, so reassembling shard runs in shard order
    reproduces the sequential table order exactly.  An empty corpus
    yields no shards at all; ``workers`` must be positive.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if not tables:
        return []
    n_shards = min(workers, len(tables))
    bounds = [round(i * len(tables) / n_shards) for i in range(n_shards + 1)]
    return [list(tables[bounds[i] : bounds[i + 1]]) for i in range(n_shards)]


def chunk_tables(
    tables: "Sequence[Table]",
    chunk_cost_target: int,
    slice_cost_target: int = 0,
) -> list[list[TaskItem]]:
    """Pack *tables* into contiguous chunks of at most *chunk_cost_target*
    estimated cost each (see :func:`table_cost`).

    Consecutive small tables share a chunk until adding the next one
    would exceed the budget; with *slice_cost_target* at its default 0, a
    table costing more than the budget on its own travels alone (tables
    are then the atomic unit of work -- they never split).  With a
    positive *slice_cost_target*, a multi-row table whose cost exceeds
    that budget is instead cut into row-range slices
    (:func:`slice_table`), each emitted as its **own single-item task**
    so the queue -- and crash recovery -- handles slices at slice
    granularity.  Chunks preserve the input order (a split table's
    slices appear consecutively, in row order), so walking tasks in
    order reproduces the corpus exactly; the packing is a pure function
    of the table shapes and the budgets, so the same corpus always
    yields the same task list.
    """
    if chunk_cost_target < 1:
        raise ValueError(
            f"chunk_cost_target must be >= 1, got {chunk_cost_target}"
        )
    if slice_cost_target < 0:
        raise ValueError(
            f"slice_cost_target must be >= 0 (0 = no splitting), got "
            f"{slice_cost_target}"
        )
    chunks: list[list[TaskItem]] = []
    current: list[TaskItem] = []
    current_cost = 0
    for index, table in enumerate(tables):
        cost = table_cost(table)
        if slice_cost_target and cost > slice_cost_target and table.n_rows > 1:
            if current:
                chunks.append(current)
                current, current_cost = [], 0
            chunks.extend(
                [table_slice]
                for table_slice in slice_table(table, index, slice_cost_target)
            )
            continue
        if current and current_cost + cost > chunk_cost_target:
            chunks.append(current)
            current, current_cost = [], 0
        current.append(table)
        current_cost += cost
    if current:
        chunks.append(current)
    return chunks


def automatic_chunk_cost(tables: "Sequence[Table]", workers: int) -> int:
    """The default stealing budget: about :data:`CHUNKS_PER_WORKER` chunks
    per worker -- fine-grained enough that a giant table's neighbours can
    migrate to idle workers, coarse enough that per-task overhead (pickling
    a run home) stays negligible."""
    total = sum(table_cost(table) for table in tables)
    return max(1, math.ceil(total / max(1, workers * CHUNKS_PER_WORKER)))


def _build_tasks(
    tables: "Sequence[Table]",
    workers: int,
    schedule: str,
    chunk_cost_target: int,
    split_giant_tables: bool = False,
    max_slice_cost: int = 0,
) -> tuple[list[list[TaskItem]], int]:
    """The scheduler's task list: shards (static) or chunks (stealing).

    Returns ``(tasks, effective_chunk_cost)`` -- the cost target the
    stealing chunker actually packed with (0 for the static schedule,
    where no chunking happens), which the run's diagnostics record so an
    automatic target is never invisible.  A target below every table's
    cost degenerates to one task per table; that used to happen
    *silently*, so it is logged here -- a warning when splitting is off
    (the scheduler is back at its table-atomic ceiling), debug otherwise.
    """
    if schedule not in SCHEDULES:
        raise ValueError(
            f"schedule must be one of {SCHEDULES}, got {schedule!r}"
        )
    if schedule == "static":
        return shard_tables(tables, workers), 0
    if chunk_cost_target < 0:
        raise ValueError(
            "chunk_cost_target must be >= 0 (0 = automatic), got "
            f"{chunk_cost_target}"
        )
    if max_slice_cost < 0:
        raise ValueError(
            f"max_slice_cost must be >= 0 (0 = chunk cost target), got "
            f"{max_slice_cost}"
        )
    target = chunk_cost_target or automatic_chunk_cost(tables, workers)
    slice_cost_target = 0
    if split_giant_tables or max_slice_cost:
        slice_cost_target = max_slice_cost or target
    if tables:
        smallest = min(table_cost(table) for table in tables)
        if target < smallest and not slice_cost_target:
            _LOG.warning(
                "pool.chunk_target_degenerate",
                target=target,
                source="explicit" if chunk_cost_target else "automatic",
                min_table_cost=smallest,
                msg=(
                    "chunk cost target is below every table's cost: each "
                    "table travels alone and the giant table bounds the "
                    "run; enable split_giant_tables to cut rows"
                ),
            )
        else:
            _LOG.debug(
                "pool.schedule_planned",
                target=target,
                source="explicit" if chunk_cost_target else "automatic",
                slice_cost_target=slice_cost_target,
            )
    return chunk_tables(tables, target, slice_cost_target), target


def _worker_loads(
    results: "Sequence[tuple]",
    n_workers: int,
) -> tuple[WorkerLoad, ...]:
    """Fold per-task results into one :class:`WorkerLoad` per pool process.

    Worker ids are assigned by ascending pid -- an arbitrary but stable
    labelling; the loads themselves record what each process really did,
    which under stealing is the whole point of the accounting.  Pool
    processes that never completed a task (one worker drained the whole
    queue before another finished spawning) still get a zero load, so the
    imbalance ratio honestly reports the idle worker instead of calling a
    one-worker run "perfectly balanced".  Crash-replacement workers show
    up as extra pids, so a recovered run may report more loads than the
    nominal pool size -- every process that completed work is accounted
    for.  Each load also carries the process's memory/attach accounting
    (peak RSS, attach time, attach RSS delta, warm-start cache bytes --
    the last stats tuple the process reported, peak RSS being monotonic
    by definition)."""
    by_pid: dict[int, list[tuple]] = {}
    for result in results:
        by_pid.setdefault(result[2], []).append(result)
    loads = [
        WorkerLoad(
            worker_id=worker_id,
            n_tasks=len(group),
            n_tables=sum(r[1].diagnostics.n_tables for r in group),
            n_cells=sum(r[1].diagnostics.n_cells for r in group),
            busy_seconds=sum(r[3] for r in group),
            peak_rss_kb=max(r[4][0] for r in group),
            attach_seconds=group[0][4][1],
            attach_rss_kb=group[0][4][2],
            cache_load_bytes=(
                group[0][4][3] if len(group[0][4]) > 3 else 0
            ),
        )
        for worker_id, (_, group) in enumerate(sorted(by_pid.items()))
    ]
    for worker_id in range(len(loads), n_workers):
        loads.append(
            WorkerLoad(
                worker_id=worker_id,
                n_tasks=0,
                n_tables=0,
                n_cells=0,
                busy_seconds=0.0,
            )
        )
    return tuple(loads)


def _quarantine_run(
    annotator: "EntityAnnotator", items: "Sequence[TaskItem]"
) -> AnnotationRun:
    """The degraded stand-in for a quarantined task's annotations.

    Every candidate cell of the task's tables is marked degraded with
    ``reason="worker-crash"``; no annotations, no engine traffic (the
    parent computes candidates locally -- preprocessing never touches the
    network).  For a slice task only the slice's rows degrade (shifted
    to full-table coordinates), and ``n_tables`` follows the slice
    accounting convention: only a table's first slice counts it.
    """
    run = AnnotationRun()
    n_cells = 0
    n_tables = 0
    for item in items:
        if isinstance(item, TableSlice):
            table, row_offset = item.table, item.row_start
            n_tables += 1 if item.row_start == 0 else 0
        else:
            table, row_offset = item, 0
            n_tables += 1
        annotation = TableAnnotation(table_name=table.name)
        for candidate in annotator.preprocessor.candidate_cells(table):
            annotation.degraded.append(
                DegradedCell(
                    table_name=table.name,
                    row=candidate.row + row_offset,
                    column=candidate.column,
                    cell_value=candidate.value,
                    reason="worker-crash",
                )
            )
        n_cells += len(annotation.degraded)
        run.merge_table(annotation)
    run.diagnostics = RunDiagnostics(
        n_tables=n_tables,
        n_cells=n_cells,
        search_failures=0,
        cache_hits=0,
        cache_misses=0,
        queries_issued=0,
        clock_charges=0,
        virtual_seconds=0.0,
        degraded_cells=n_cells,
    )
    return run


def annotate_tables_parallel(
    annotator: "EntityAnnotator",
    tables: "Sequence[Table]",
    type_keys: list[str],
    workers: int,
    cache_dir=None,
    schedule: str | None = None,
    chunk_cost_target: int | None = None,
    task_retries: int | None = None,
    split_giant_tables: bool | None = None,
    max_slice_cost: int | None = None,
    on_worker_spawn: Callable[[int], None] | None = None,
    start_method: str | None = None,
) -> AnnotationRun:
    """Annotate *tables* across a pool of *workers* processes.

    The task-queue -> warm-start -> annotate -> merge-save data flow
    described in ``docs/architecture.md``.  *schedule*,
    *chunk_cost_target* and *task_retries* default to the annotator's
    config (``AnnotatorConfig.schedule`` / ``.chunk_cost_target`` /
    ``.task_retries``).  Returns one :class:`AnnotationRun` whose
    ``tables`` are in original corpus order (same-named tables merged,
    exactly as the sequential path merges them), whose ``diagnostics``
    are the :meth:`RunDiagnostics.combined` fold of every task's in task
    order, and whose ``diagnostics.worker_loads`` record what each pool
    process really did (tasks, tables, cells, busy seconds -- see
    ``RunDiagnostics.imbalance_ratio``).

    *split_giant_tables* / *max_slice_cost* (defaulting to the config
    knobs of the same names) let the stealing chunker cut a giant table
    into row-range :class:`TableSlice` tasks; workers annotate slices
    raw, and this parent reassembles each split table's slices in row
    order and post-processes it once, whole-table, so the run stays
    byte-identical to ``workers=1``.  Splitting is ignored under the
    static schedule and under spatial disambiguation (row contexts are
    table-global).  ``diagnostics.tables_split`` counts the tables that
    were cut; ``diagnostics.effective_chunk_cost`` records the chunk
    budget the stealing chunker actually used (automatic targets
    included).

    Crash recovery: a worker that dies mid-task has its task requeued on
    a replacement worker up to *task_retries* times; a task that keeps
    killing its workers is quarantined -- its tables' candidate cells
    marked degraded (``reason="worker-crash"``) -- and the rest of the
    corpus completes normally.  A slice task requeues and quarantines at
    slice granularity: losing a worker mid-slice never redoes (or
    degrades) the rest of its table.  ``diagnostics.tasks_requeued`` /
    ``tasks_quarantined`` count both.  *on_worker_spawn* (tests, chaos
    harnesses) is called with the pid of every worker the pool starts,
    replacements included.

    *start_method* overrides how pool processes start (any name in
    ``multiprocessing.get_all_start_methods()``); the default picks
    ``fork`` where safe (see :func:`_start_method`).  Under ``fork`` the
    annotator is inherited copy-on-write; under ``spawn`` it is pickled
    once and each worker unpickles its own copy -- *except* state that
    pickles by reference, like a frozen mmap index backend, which ships
    as an artifact path and re-opens against the same physical pages
    (the ``worker_loads`` attach columns make the difference visible).
    Benchmarks and backend-parity tests force ``spawn`` to measure and
    pin exactly that.

    The *parent* annotator does none of the annotation work, so its
    lifetime counters (engine clock, ``failure_count``) do not advance --
    the run's diagnostics carry the workers' accounting.  When
    *cache_dir* is set every worker merge-saves its caches once at the
    end of the run (each worker has its own command pipe, so exactly one
    flush lands on each), and the parent warm-starts itself from the
    merged caches afterwards, so follow-up in-process work benefits from
    the workers' effort.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    tables = list(tables)
    if schedule is None:
        schedule = getattr(annotator.config, "schedule", "stealing")
    if chunk_cost_target is None:
        chunk_cost_target = getattr(annotator.config, "chunk_cost_target", 0)
    if task_retries is None:
        task_retries = getattr(annotator.config, "task_retries", 2)
    if split_giant_tables is None:
        split_giant_tables = getattr(
            annotator.config, "split_giant_tables", False
        )
    if max_slice_cost is None:
        max_slice_cost = getattr(annotator.config, "max_slice_cost", 0)
    if getattr(annotator.config, "use_spatial_disambiguation", False):
        # Row contexts are computed iteratively over the whole table; a
        # slice cannot reproduce them, so splitting is gated off rather
        # than trading byte-parity for balance.
        split_giant_tables, max_slice_cost = False, 0
    tasks, effective_chunk_cost = _build_tasks(
        tables,
        workers,
        schedule,
        chunk_cost_target,
        split_giant_tables=split_giant_tables,
        max_slice_cost=max_slice_cost,
    )
    run = AnnotationRun()
    if not tasks:
        run.diagnostics = RunDiagnostics.combined([])
        return run
    n_workers = min(workers, len(tasks))
    method = start_method if start_method is not None else _start_method()
    if method not in multiprocessing.get_all_start_methods():
        raise ValueError(
            f"start_method must be one of "
            f"{multiprocessing.get_all_start_methods()}, got {method!r}"
        )
    context = multiprocessing.get_context(method)
    global _FORK_PAYLOAD
    if method == "fork":
        payload = None
        _FORK_PAYLOAD = annotator
    else:
        payload = pickle.dumps(annotator, protocol=pickle.HIGHEST_PROTOCOL)
    pool = None
    try:
        with span(
            "pool.run",
            workers=n_workers,
            n_tasks=len(tasks),
            schedule=schedule,
            start_method=method,
        ):
            pool = _WorkerPool(
                context,
                n_workers,
                payload,
                cache_dir,
                on_worker_spawn=on_worker_spawn,
            )
            completed, quarantined, requeued, errors = pool.run_tasks(
                tasks, type_keys, task_retries
            )
            if cache_dir is not None:
                # Flushing happens even when a task failed or the run was
                # interrupted, so the warmth the surviving tasks already
                # paid for is kept; a flush error only propagates when
                # nothing more important already wants to.
                flush_errors = pool.flush()
                if flush_errors and not errors:
                    errors = flush_errors
            pool.shutdown()
            pool = None
            if errors:
                raise errors[0]
    finally:
        if pool is not None:  # pragma: no cover - error unwinding
            pool.shutdown()
        _FORK_PAYLOAD = None
    # Deterministic reassembly: tasks are contiguous slices of the corpus,
    # so walking them in task order visits tables in original corpus
    # order; merge_table folds duplicate-named tables' cells together in
    # that same order, byte-identical to the workers=1 run.  Quarantined
    # tasks contribute degraded placeholders at their corpus position.
    # A split table's slice tasks are consecutive: their raw annotations
    # accumulate (merge_table again, so cells/degraded extend in row
    # order) until the last slice lands, then the parent post-processes
    # once with the full original table -- the deferred table-global
    # stage -- and merges the finished table at its corpus position.
    # Slices group by corpus *position* (table_index), never by name, so
    # duplicate-named distinct tables cannot bleed into each other.
    quarantine_runs = {
        index: _quarantine_run(annotator, tasks[index]) for index in quarantined
    }
    slice_counts: dict[int, int] = {}
    for task in tasks:
        if len(task) == 1 and isinstance(task[0], TableSlice):
            index = task[0].table_index
            slice_counts[index] = slice_counts.get(index, 0) + 1
    pending_slices: dict[int, AnnotationRun] = {}
    seen_slices: dict[int, int] = {}
    parts: list[AnnotationRun] = []
    results = []
    for index in range(len(tasks)):
        if index in completed:
            task_run = completed[index][1]
            results.append(completed[index])
        elif index in quarantine_runs:
            task_run = quarantine_runs[index]
        else:  # pragma: no cover - only reachable on an aborted run
            continue
        parts.append(task_run)
        task = tasks[index]
        if len(task) == 1 and isinstance(task[0], TableSlice):
            table_slice = task[0]
            partial = pending_slices.setdefault(
                table_slice.table_index, AnnotationRun()
            )
            for annotation in task_run.tables.values():
                partial.merge_table(annotation)
            seen_slices[table_slice.table_index] = (
                seen_slices.get(table_slice.table_index, 0) + 1
            )
            if (
                seen_slices[table_slice.table_index]
                == slice_counts[table_slice.table_index]
            ):
                combined = partial.tables.get(
                    table_slice.table_name
                ) or TableAnnotation(table_name=table_slice.table_name)
                run.merge_table(
                    annotator.postprocess_table(
                        tables[table_slice.table_index], combined
                    )
                )
        else:
            for annotation in task_run.tables.values():
                run.merge_table(annotation)
    combined = RunDiagnostics.combined([part.diagnostics for part in parts])
    worker_loads = _worker_loads(results, n_workers)
    run.diagnostics = replace(
        combined,
        worker_loads=worker_loads,
        tasks_requeued=requeued,
        tasks_quarantined=len(quarantined),
        effective_chunk_cost=effective_chunk_cost,
        tables_split=len(slice_counts),
        # Task-window deltas miss the workers' attach-time warm starts
        # (they happen before any task); fold the per-worker bytes in so
        # the corpus view reports everything the pool read to get warm.
        cache_load_bytes=combined.cache_load_bytes
        + sum(load.cache_load_bytes for load in worker_loads),
    )
    if cache_dir is not None:
        annotator.load_caches(cache_dir)
    return run
