"""Process-pool execution layer for corpus annotation.

``EntityAnnotator.annotate_tables(..., workers=N)`` distributes a corpus
across ``N`` worker processes.  Each worker holds a full copy of the
annotator (classifier, engine, config), optionally warm-starts from a
shared cache directory, annotates the tasks it pulls corpus-at-a-time,
merge-saves its caches back once at the end of the run (so no worker's
save discards another's entries -- see :mod:`repro.persistence`), and
ships each task's :class:`~repro.core.results.AnnotationRun` home.  The
parent reassembles the per-table annotations deterministically in
original corpus order -- **merging** same-named tables' cells, never
replacing them -- and folds the task diagnostics into one corpus-wide
view with per-worker load accounting
(:class:`~repro.core.results.WorkerLoad`).

Two schedulers place the work (``AnnotatorConfig.schedule``):

``stealing`` (default)
    The parent enqueues cost-bounded *chunk* tasks -- consecutive tables
    packed until a cell-count budget is reached, a giant table travelling
    alone -- and long-lived workers pull the next task from the shared
    queue the moment they finish one.  A skewed corpus (one 2,000-row
    table next to hundreds of tiny ones, the shape real web-table corpora
    exhibit) keeps every worker busy: whoever draws the giant table works
    it while the rest drain the small chunks.

``static``
    PR 3's contiguous near-equal slices, one task per worker.  Retained
    as the parity and benchmark baseline; on a skewed corpus the worker
    whose slice holds the giant table serialises the run.

Worker state is established once per process via the pool initializer.
Under the ``fork`` start method the parent's annotator is inherited by
reference (copy-on-write, no serialisation at all); under ``spawn`` or
``forkserver`` a pickled payload is shipped instead.  Either way every
worker computes with an identical copy of the classifier/engine state, so
annotations are a pure function of the task's tables -- which is why both
schedulers are byte-identical to the sequential path (the parity caveat
is the same as for corpus-at-a-time batching: under random *failure
injection* the workers' independent rng streams legitimately diverge from
the sequential retry stream).

The layer stays deliberately dumb about content: query deduplication
happens *within* a task (each worker runs the normal corpus-at-a-time
path over the task's tables); a query string spanning two tasks is issued
once per task, which the merged diagnostics report honestly via
``queries_issued``.  Chunking is a pure function of the table shapes and
the cost budget, so a given corpus always yields the same task list.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import signal
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import TYPE_CHECKING, Sequence

from repro.core.config import SCHEDULES
from repro.core.results import AnnotationRun, RunDiagnostics, WorkerLoad

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotator imports us)
    from repro.core.annotator import EntityAnnotator
    from repro.tables.model import Table

CHUNKS_PER_WORKER = 4
"""Automatic chunk sizing: aim for this many stealing tasks per worker."""

_FLUSH_BARRIER_TIMEOUT = 120.0
"""Upper bound on waiting for the save barrier; a broken barrier degrades
to best-effort saves (merge-on-save makes duplicates harmless)."""

# Worker-process state, set by _init_worker.  One annotator per process,
# reused across every task that lands on it.
_WORKER_ANNOTATOR = None

# Barrier shared by the end-of-run cache-flush tasks (see _flush_caches).
_WORKER_BARRIER = None

# Fork-path handoff: the parent parks its annotator here right before
# creating the pool; forked children inherit the reference and the parent
# clears it immediately after.  Avoids pickling multi-megabyte engine
# state when the OS can copy-on-write it for free.
_FORK_PAYLOAD = None


def _start_method() -> str:
    """``fork`` on Linux (cheapest: copy-on-write, no pickling), else the
    platform default.  macOS lists ``fork`` as available but made ``spawn``
    the default for a reason -- forking after Apple's system libraries or
    a BLAS have spun up threads can abort or deadlock the child -- so
    everywhere but Linux the default start method is honoured."""
    if sys.platform.startswith("linux") and (
        "fork" in multiprocessing.get_all_start_methods()
    ):
        return "fork"
    return multiprocessing.get_start_method()


def _init_worker(pickled_annotator: bytes | None, cache_dir, barrier) -> None:
    """Pool initializer: materialise this process's annotator, warm it up."""
    global _WORKER_ANNOTATOR, _WORKER_BARRIER
    # A terminal Ctrl-C delivers SIGINT to the whole foreground process
    # group.  The *parent* owns interrupt handling (stop dispatching,
    # flush every worker's caches, re-raise); a worker that dies on its
    # own KeyboardInterrupt breaks the pool before those flush tasks can
    # run, losing exactly the warmth the graceful path exists to save.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic hosts
        pass
    if pickled_annotator is None:
        _WORKER_ANNOTATOR = _FORK_PAYLOAD  # inherited via fork
    else:
        _WORKER_ANNOTATOR = pickle.loads(pickled_annotator)
    if _WORKER_ANNOTATOR is None:  # pragma: no cover - defensive
        raise RuntimeError("worker started without an annotator payload")
    _WORKER_BARRIER = barrier
    if cache_dir is not None:
        # Warm start from the shared cache directory.  A cold report is
        # fine (first worker ever, stale fingerprint, lock timeout): the
        # caches are an optimisation, never a correctness dependency.
        _WORKER_ANNOTATOR.load_caches(cache_dir)


def _annotate_task(
    index: int, tables: "Sequence[Table]", type_keys: list[str]
) -> tuple[int, AnnotationRun, int, float]:
    """One queue task: corpus-at-a-time over *tables*.

    Returns ``(task index, run, worker pid, busy seconds)`` so the parent
    can reassemble deterministically by index and attribute the work to
    the process that actually did it.  Cache saving is *not* done here --
    one save per task would serialise the pool on the advisory lock --
    but once per worker at the end of the run (:func:`_flush_caches`).
    """
    start = time.perf_counter()
    run = _WORKER_ANNOTATOR.annotate_tables(tables, type_keys)
    return index, run, os.getpid(), time.perf_counter() - start


def _flush_caches(cache_dir) -> int:
    """End-of-run task: merge-save this worker's caches, exactly once.

    The parent submits one flush task per pool process; the barrier makes
    each task block until every process holds one, so no worker can drain
    two flushes while another saves nothing.  A broken barrier (a worker
    died mid-run) degrades to best-effort: whoever is still alive saves
    anyway -- merge-on-save under the advisory lock means duplicate or
    missing saves cost warmth, never correctness.
    """
    if _WORKER_BARRIER is not None:
        try:
            _WORKER_BARRIER.wait(timeout=_FLUSH_BARRIER_TIMEOUT)
        except threading.BrokenBarrierError:  # pragma: no cover - worker loss
            pass
    _WORKER_ANNOTATOR.save_caches(cache_dir)
    return os.getpid()


def table_cost(table: "Table") -> int:
    """Cheap per-table work estimate: its cell count (``rows x columns``).

    Annotation cost is dominated by per-candidate-cell engine requests,
    and candidate count scales with cell count, so the grid size is a
    good, zero-cost proxy -- it never inspects cell contents.  Every
    table costs at least 1 so empty tables still occupy a task slot.
    """
    return max(1, table.n_rows * table.n_columns)


def shard_tables(tables: "Sequence[Table]", workers: int) -> list[list["Table"]]:
    """Split *tables* into ``min(workers, len(tables))`` contiguous shards.

    Shard sizes differ by at most one table; order within and across
    shards follows the input, so reassembling shard runs in shard order
    reproduces the sequential table order exactly.  An empty corpus
    yields no shards at all; ``workers`` must be positive.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if not tables:
        return []
    n_shards = min(workers, len(tables))
    bounds = [round(i * len(tables) / n_shards) for i in range(n_shards + 1)]
    return [list(tables[bounds[i] : bounds[i + 1]]) for i in range(n_shards)]


def chunk_tables(
    tables: "Sequence[Table]", chunk_cost_target: int
) -> list[list["Table"]]:
    """Pack *tables* into contiguous chunks of at most *chunk_cost_target*
    estimated cost each (see :func:`table_cost`).

    Consecutive small tables share a chunk until adding the next one
    would exceed the budget; a table costing more than the budget on its
    own always travels alone (tables are the atomic unit of work -- they
    never split).  Chunks preserve the input order, so concatenating them
    in chunk order reproduces the corpus exactly; the packing is a pure
    function of the table shapes and the budget, so the same corpus
    always yields the same task list.
    """
    if chunk_cost_target < 1:
        raise ValueError(
            f"chunk_cost_target must be >= 1, got {chunk_cost_target}"
        )
    chunks: list[list["Table"]] = []
    current: list["Table"] = []
    current_cost = 0
    for table in tables:
        cost = table_cost(table)
        if current and current_cost + cost > chunk_cost_target:
            chunks.append(current)
            current, current_cost = [], 0
        current.append(table)
        current_cost += cost
    if current:
        chunks.append(current)
    return chunks


def automatic_chunk_cost(tables: "Sequence[Table]", workers: int) -> int:
    """The default stealing budget: about :data:`CHUNKS_PER_WORKER` chunks
    per worker -- fine-grained enough that a giant table's neighbours can
    migrate to idle workers, coarse enough that per-task overhead (pickling
    a run home) stays negligible."""
    total = sum(table_cost(table) for table in tables)
    return max(1, math.ceil(total / max(1, workers * CHUNKS_PER_WORKER)))


def _build_tasks(
    tables: "Sequence[Table]",
    workers: int,
    schedule: str,
    chunk_cost_target: int,
) -> list[list["Table"]]:
    """The scheduler's task list: shards (static) or chunks (stealing)."""
    if schedule not in SCHEDULES:
        raise ValueError(
            f"schedule must be one of {SCHEDULES}, got {schedule!r}"
        )
    if schedule == "static":
        return shard_tables(tables, workers)
    if chunk_cost_target < 0:
        raise ValueError(
            "chunk_cost_target must be >= 0 (0 = automatic), got "
            f"{chunk_cost_target}"
        )
    target = chunk_cost_target or automatic_chunk_cost(tables, workers)
    return chunk_tables(tables, target)


def _worker_loads(
    results: "Sequence[tuple[int, AnnotationRun, int, float]]",
    n_workers: int,
) -> tuple[WorkerLoad, ...]:
    """Fold per-task results into one :class:`WorkerLoad` per pool process.

    Worker ids are assigned by ascending pid -- an arbitrary but stable
    labelling; the loads themselves record what each process really did,
    which under stealing is the whole point of the accounting.  Pool
    processes that never completed a task (one worker drained the whole
    queue before another finished spawning) still get a zero load, so the
    imbalance ratio honestly reports the idle worker instead of calling a
    one-worker run "perfectly balanced"."""
    by_pid: dict[int, list[tuple[int, AnnotationRun, int, float]]] = {}
    for result in results:
        by_pid.setdefault(result[2], []).append(result)
    loads = [
        WorkerLoad(
            worker_id=worker_id,
            n_tasks=len(group),
            n_tables=sum(r[1].diagnostics.n_tables for r in group),
            n_cells=sum(r[1].diagnostics.n_cells for r in group),
            busy_seconds=sum(r[3] for r in group),
        )
        for worker_id, (_, group) in enumerate(sorted(by_pid.items()))
    ]
    for worker_id in range(len(loads), n_workers):
        loads.append(
            WorkerLoad(
                worker_id=worker_id,
                n_tasks=0,
                n_tables=0,
                n_cells=0,
                busy_seconds=0.0,
            )
        )
    return tuple(loads)


def annotate_tables_parallel(
    annotator: "EntityAnnotator",
    tables: "Sequence[Table]",
    type_keys: list[str],
    workers: int,
    cache_dir=None,
    schedule: str | None = None,
    chunk_cost_target: int | None = None,
) -> AnnotationRun:
    """Annotate *tables* across a pool of *workers* processes.

    The task-queue -> warm-start -> annotate -> merge-save data flow
    described in ``docs/architecture.md``.  *schedule* and
    *chunk_cost_target* default to the annotator's config
    (``AnnotatorConfig.schedule`` / ``.chunk_cost_target``).  Returns one
    :class:`AnnotationRun` whose ``tables`` are in original corpus order
    (same-named tables merged, exactly as the sequential path merges
    them), whose ``diagnostics`` are the :meth:`RunDiagnostics.combined`
    fold of every task's in task order, and whose
    ``diagnostics.worker_loads`` record what each pool process really did
    (tasks, tables, cells, busy seconds -- see
    ``RunDiagnostics.imbalance_ratio``).

    The *parent* annotator does none of the annotation work, so its
    lifetime counters (engine clock, ``failure_count``) do not advance --
    the run's diagnostics carry the workers' accounting.  When *cache_dir*
    is set every worker merge-saves its caches once at the end of the run
    (a barrier hands exactly one flush task to each process), and the
    parent warm-starts itself from the merged caches afterwards, so
    follow-up in-process work benefits from the workers' effort.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    tables = list(tables)
    if schedule is None:
        schedule = getattr(annotator.config, "schedule", "stealing")
    if chunk_cost_target is None:
        chunk_cost_target = getattr(annotator.config, "chunk_cost_target", 0)
    tasks = _build_tasks(tables, workers, schedule, chunk_cost_target)
    run = AnnotationRun()
    if not tasks:
        run.diagnostics = RunDiagnostics.combined([])
        return run
    n_workers = min(workers, len(tasks))
    method = _start_method()
    context = multiprocessing.get_context(method)
    barrier = context.Barrier(n_workers) if cache_dir is not None else None
    global _FORK_PAYLOAD
    if method == "fork":
        payload = None
        _FORK_PAYLOAD = annotator
    else:  # pragma: no cover - exercised only on spawn-only platforms
        payload = pickle.dumps(annotator, protocol=pickle.HIGHEST_PROTOCOL)
    try:
        with ProcessPoolExecutor(
            max_workers=n_workers,
            mp_context=context,
            initializer=_init_worker,
            initargs=(payload, cache_dir, barrier),
        ) as pool:
            futures = [
                pool.submit(_annotate_task, index, task, type_keys)
                for index, task in enumerate(tasks)
            ]
            results = []
            errors: list[BaseException] = []
            interrupt: BaseException | None = None
            for future in futures:
                if interrupt is not None:
                    future.cancel()
                    continue
                try:
                    results.append(future.result())
                except Exception as error:
                    errors.append(error)
                except KeyboardInterrupt as error:
                    # Graceful shutdown (Ctrl-C / SIGTERM): stop handing
                    # out new tasks, but keep the pool alive long enough
                    # to flush the warmth the finished tasks already paid
                    # for.  Queued tasks are cancelled; running ones
                    # complete (a worker cannot be interrupted mid-task
                    # without losing its caches anyway).  The interrupt
                    # is re-raised after the flush so callers -- the CLI,
                    # the daemon -- still observe it (exit code 130).
                    interrupt = error
                    future.cancel()
            if cache_dir is not None:
                # One flush per pool process: each blocks on the barrier
                # until every process holds its own, then merge-saves.
                # Flushing happens even when a task failed, so the work
                # the surviving tasks already paid for stays warm; if the
                # *pool* broke (a worker died) the flush fails too and
                # the original task error is what propagates.
                try:
                    flushes = [
                        pool.submit(_flush_caches, cache_dir)
                        for _ in range(n_workers)
                    ]
                    for flush in flushes:
                        flush.result()
                except Exception:
                    if not errors and interrupt is None:
                        raise
            if interrupt is not None:
                raise interrupt
            if errors:
                raise errors[0]
    finally:
        _FORK_PAYLOAD = None
    # Deterministic reassembly: tasks are contiguous slices of the corpus,
    # so walking them in task order visits tables in original corpus
    # order; merge_table folds duplicate-named tables' cells together in
    # that same order, byte-identical to the workers=1 run.
    results.sort(key=lambda result: result[0])
    for _, task_run, _, _ in results:
        for annotation in task_run.tables.values():
            run.merge_table(annotation)
    run.diagnostics = replace(
        RunDiagnostics.combined([r[1].diagnostics for r in results]),
        worker_loads=_worker_loads(results, n_workers),
    )
    if cache_dir is not None:
        annotator.load_caches(cache_dir)
    return run
