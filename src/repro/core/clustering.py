"""Snippet clustering: the paper's proposed general ambiguity solution.

Section 5.2: "A more general solution to the ambiguity problem would be
clustering the results returned by the search engine and classify
separately the snippets that belong to the different clusters.  We do not
explore this point in this paper, which we leave for future work."

This module explores it.  Top-k snippets are clustered by cosine
similarity over the standard feature pipeline (greedy agglomerative
clustering with a similarity threshold -- no cluster count to guess), each
cluster is classified separately, and the cell is annotated from the best
*cluster* instead of the global snippet majority: an ambiguous name whose
results split 5/5 between a restaurant sense and a jazz-label sense still
yields a confident restaurant cluster.

The majority rule becomes: the winning cluster must be internally
unanimous enough (``cluster_majority``) and large enough
(``min_cluster_fraction``) to trust.  Scores remain comparable to Eq. 1:
``S = votes_in_cluster / k``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.classify.snippet import SnippetTypeClassifier
from repro.core.config import AnnotatorConfig
from repro.text.pipeline import TextPipeline
from repro.web.search import SearchEngine, SearchEngineUnavailable


def cosine_similarity(a: dict[str, float], b: dict[str, float]) -> float:
    """Cosine similarity of two sparse feature dicts.

    >>> cosine_similarity({"x": 1.0}, {"x": 2.0})
    1.0
    >>> cosine_similarity({"x": 1.0}, {"y": 1.0})
    0.0
    """
    if not a or not b:
        return 0.0
    if len(b) < len(a):
        a, b = b, a
    dot = sum(value * b.get(token, 0.0) for token, value in a.items())
    norm_a = math.sqrt(sum(v * v for v in a.values()))
    norm_b = math.sqrt(sum(v * v for v in b.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


def cluster_snippets(
    snippets: list[str],
    threshold: float = 0.25,
    pipeline: TextPipeline | None = None,
    exclude_tokens: set[str] | None = None,
) -> list[list[int]]:
    """Greedy agglomerative clustering of snippets by cosine similarity.

    Each snippet joins the existing cluster whose *centroid* is most
    similar, provided the similarity exceeds *threshold*; otherwise it
    founds a new cluster.  Returns clusters as lists of snippet indices,
    ordered by decreasing size (ties: first-founded first).

    *exclude_tokens* (already stemmed) are removed from the feature space
    before comparing.  The caller passes the query's own tokens: every
    snippet for "John Marsh" contains "john marsh", and that shared mass
    would otherwise glue the two senses of the name into one cluster.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    pipeline = pipeline or TextPipeline()
    features = [pipeline.features(snippet) for snippet in snippets]
    if exclude_tokens:
        features = [
            {t: v for t, v in vector.items() if t not in exclude_tokens}
            for vector in features
        ]
    clusters: list[list[int]] = []
    centroids: list[dict[str, float]] = []
    for index, vector in enumerate(features):
        best_cluster = None
        best_similarity = threshold
        for c, centroid in enumerate(centroids):
            similarity = cosine_similarity(vector, centroid)
            if similarity > best_similarity:
                best_similarity = similarity
                best_cluster = c
        if best_cluster is None:
            clusters.append([index])
            centroids.append(dict(vector))
        else:
            members = clusters[best_cluster]
            members.append(index)
            centroid = centroids[best_cluster]
            n = len(members)
            for token in set(centroid) | set(vector):
                centroid[token] = (
                    centroid.get(token, 0.0) * (n - 1) + vector.get(token, 0.0)
                ) / n
    order = sorted(range(len(clusters)), key=lambda c: (-len(clusters[c]), c))
    return [clusters[c] for c in order]


@dataclass(frozen=True)
class ClusteredDecision:
    """Outcome of cluster-aware cell annotation."""

    type_key: str | None
    score: float
    clusters: list[list[int]] = field(default_factory=list)
    cluster_types: list[str | None] = field(default_factory=list)
    query: str = ""
    failed: bool = False

    @property
    def annotated(self) -> bool:
        return self.type_key is not None


class ClusteredCellAnnotator:
    """Cluster-then-classify cell annotation (the future-work variant)."""

    def __init__(
        self,
        classifier: SnippetTypeClassifier,
        engine: SearchEngine,
        config: AnnotatorConfig | None = None,
        similarity_threshold: float = 0.15,
        cluster_majority: float = 0.6,
        min_cluster_fraction: float = 0.2,
    ) -> None:
        if not 0.0 < cluster_majority <= 1.0:
            raise ValueError(
                f"cluster_majority must be in (0, 1], got {cluster_majority}"
            )
        if not 0.0 < min_cluster_fraction <= 1.0:
            raise ValueError(
                "min_cluster_fraction must be in (0, 1], got "
                f"{min_cluster_fraction}"
            )
        self.classifier = classifier
        self.engine = engine
        self.config = config or AnnotatorConfig()
        self.similarity_threshold = similarity_threshold
        self.cluster_majority = cluster_majority
        self.min_cluster_fraction = min_cluster_fraction

    def annotate_value(self, value: str, type_keys: list[str]) -> ClusteredDecision:
        """Annotate *value* from its best snippet cluster."""
        if not type_keys:
            raise ValueError("type_keys must be non-empty")
        k = self.config.top_k
        try:
            results = self.engine.search(value, k=k)
        except SearchEngineUnavailable:
            return ClusteredDecision(
                type_key=None, score=0.0, query=value, failed=True
            )
        snippets = [result.snippet for result in results]
        if not snippets:
            return ClusteredDecision(type_key=None, score=0.0, query=value)
        labels = self.classifier.classify_many(snippets)
        pipeline = TextPipeline()
        query_tokens = set(pipeline.tokens(value))
        clusters = cluster_snippets(
            snippets,
            threshold=self.similarity_threshold,
            pipeline=pipeline,
            exclude_tokens=query_tokens,
        )
        cluster_types: list[str | None] = []
        best: tuple[str, int] | None = None  # (type, votes)
        for members in clusters:
            votes: dict[str, int] = {}
            for index in members:
                votes[labels[index]] = votes.get(labels[index], 0) + 1
            winner, count = max(
                sorted(votes.items()), key=lambda item: item[1]
            )
            is_target = winner in type_keys
            unanimous_enough = count >= self.cluster_majority * len(members)
            big_enough = len(members) >= self.min_cluster_fraction * k
            if is_target and unanimous_enough and big_enough:
                cluster_types.append(winner)
                if best is None or count > best[1]:
                    best = (winner, count)
            else:
                cluster_types.append(None)
        if best is None:
            return ClusteredDecision(
                type_key=None, score=0.0, clusters=clusters,
                cluster_types=cluster_types, query=value,
            )
        return ClusteredDecision(
            type_key=best[0],
            score=best[1] / k,
            clusters=clusters,
            cluster_types=cluster_types,
            query=value,
        )
