"""Cell annotation via search + snippet classification (Section 5.2, Eq. 1).

For a cell value ``v`` (optionally augmented with disambiguated spatial
context), the annotator retrieves the top-k snippets, classifies each one,
and annotates the cell with the winning type ``t_max`` provided strictly
more than ``k/2`` snippets were classified as ``t_max``.  The annotation
score is ``S_ij = s_t / k`` (Equation 1).

Two execution paths produce identical decisions:

* :meth:`CellAnnotator.annotate_value` -- one cell at a time, one engine
  round trip and one classifier call per cell (the seed behaviour, kept as
  the parity baseline);
* :meth:`CellAnnotator.annotate_values` -- any number of cells at once (a
  table's worth, or a whole corpus's when called from
  ``EntityAnnotator.annotate_tables``): unique queries are resolved through
  :meth:`~repro.web.search.SearchEngine.search_many`, every retrieved
  snippet is pooled into a single ``classify_many`` call (deduplicated,
  since classification is a pure function of the snippet text), the
  Equation 1 vote is computed once per distinct query, and the decisions
  are demultiplexed back onto the cells.

The batched path amortises across calls through two long-lived memos: a
snippet-text -> label memo (classification is a pure function of the text)
that :meth:`CellAnnotator.save_label_memo` /
:meth:`~CellAnnotator.load_label_memo` can persist to disk so a second
process starts warm, and the optional shared :class:`SnippetCache`.

The :class:`SnippetCache` counts a miss for every lookup that finds
nothing, whether or not a ``put`` follows, so engine failures stay visible
in the hit rate:

>>> cache = SnippetCache()
>>> cache.get("Hotel Melisse", 10) is None
True
>>> cache.put("Hotel Melisse", 10, ["melisse lodging rooms"])
>>> cache.get("Hotel Melisse", 10)
['melisse lodging rooms']
>>> (cache.hits, cache.misses, cache.hit_rate)
(1, 1, 0.5)
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Sequence

from repro.classify.snippet import SnippetTypeClassifier
from repro.core.config import AnnotatorConfig
from repro.observability.tracing import span
from repro.persistence import CacheStore, load_cache_payload, save_cache_payload
from repro.resilience import CircuitBreaker, RetryPolicy
from repro.web.search import SearchEngine, SearchEngineUnavailable

_FAILED = object()
"""Sentinel marking a unique query whose (single) engine request failed."""


@dataclass(frozen=True)
class CellDecision:
    """Outcome of annotating one cell value."""

    type_key: str | None
    score: float
    snippet_counts: dict[str, int] = field(default_factory=dict)
    query: str = ""
    failed: bool = False

    @property
    def annotated(self) -> bool:
        return self.type_key is not None


class SnippetCache:
    """Shared (query, k) -> snippets cache.

    Different classifier backends evaluated over the same corpus reuse the
    same searches; caching the snippet lists avoids recomputing BM25 while
    leaving each engine call's latency accounting to the first requester.

    Accounting lives entirely in :meth:`get`: a lookup that finds nothing
    is a miss whether or not a ``put`` ever follows (an engine failure
    after a miss used to be invisible).  :meth:`put` is pure storage.
    """

    def __init__(self) -> None:
        self._store: dict[tuple[str, int], list[str]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, query: str, k: int) -> list[str] | None:
        snippets = self._store.get((query, k))
        if snippets is None:
            self.misses += 1
        else:
            self.hits += 1
        return snippets

    def put(self, query: str, k: int, snippets: list[str]) -> None:
        self._store[(query, k)] = snippets

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CellAnnotator:
    """Annotates individual cell values against a set of target types."""

    def __init__(
        self,
        classifier: SnippetTypeClassifier,
        engine: SearchEngine,
        config: AnnotatorConfig | None = None,
        cache: SnippetCache | None = None,
    ) -> None:
        self.classifier = classifier
        self.engine = engine
        self.config = config or AnnotatorConfig()
        self.cache = cache
        self.failure_count = 0
        self.retry_count = 0
        self.retry_policy = RetryPolicy(
            retries=self.config.retries,
            backoff_seconds=self.config.retry_backoff_ms / 1000.0,
            seed=self.config.seed,
        )
        self.breaker = CircuitBreaker(
            self.config.breaker_threshold,
            self.config.breaker_cooldown_seconds,
            self.engine.clock,
        )
        # snippet text -> label, filled by the batched path.  Classification
        # is a pure function of the text, so a long-lived annotator streaming
        # many tables about overlapping entities classifies each distinct
        # snippet once.  Bounded by the distinct snippets seen; invalidated
        # automatically when self.classifier is swapped out.
        self._label_memo: dict[str, str] = {}
        self._label_memo_owner: SnippetTypeClassifier = classifier
        # Optional shared cache store (repro.persistence.CacheStore)
        # probed when a snippet misses the in-memory memo; the memo stays
        # the hot first tier, the store the shared-on-disk second.
        self._label_store: CacheStore | None = None
        # -- label-memo IO accounting (observability only) ----------------
        self._memo_hits = 0
        self._memo_misses = 0
        self._cache_loads = 0
        self._cache_saves = 0
        self._legacy_load_bytes = 0
        self._cache_save_bytes = 0

    # -- per-cell path -----------------------------------------------------------------

    def annotate_value(
        self,
        value: str,
        type_keys: list[str],
        spatial_context: str | None = None,
    ) -> CellDecision:
        """Decide whether *value* names an entity of one of *type_keys*.

        *spatial_context* (a city name) is appended to the query, the
        Section 5.2.2 disambiguation.  A search-engine failure (after the
        configured retries, if any) yields an unannotated decision flagged
        ``failed=True`` -- the algorithm degrades gracefully rather than
        aborting the table.
        """
        if not type_keys:
            raise ValueError("type_keys must be non-empty")
        query = value if spatial_context is None else f"{value} {spatial_context}"
        k = self.config.top_k
        snippets = self.cache.get(query, k) if self.cache is not None else None
        if snippets is None:
            results = self._search_with_retry(query, k)
            if results is None:
                self.failure_count += 1
                return CellDecision(
                    type_key=None, score=0.0, query=query, failed=True
                )
            snippets = [result.snippet for result in results]
            if self.cache is not None:
                self.cache.put(query, k, snippets)
        if not snippets:
            return CellDecision(type_key=None, score=0.0, query=query)
        labels = self.classifier.classify_many(snippets)
        return self._decide(labels, type_keys, query)

    def _search_with_retry(self, query: str, k: int):
        """One query through the retry policy and circuit breaker.

        Returns the result list, or ``None`` when every admitted attempt
        failed (or the breaker refused to admit one).  Backoff between
        attempts advances the virtual clock via
        :meth:`~repro.clock.VirtualClock.wait`; an open breaker fails fast
        without charging anything.  With ``retries=0`` and the breaker
        disabled this is exactly one plain :meth:`SearchEngine.search`
        call -- the seed behaviour.
        """
        attempts = 1 + self.retry_policy.retries
        for attempt in range(1, attempts + 1):
            if not self.breaker.allow():
                return None
            try:
                results = self.engine.search(query, k=k)
            except SearchEngineUnavailable:
                self.breaker.record_failure()
                if attempt < attempts:
                    self.retry_count += 1
                    self.engine.clock.wait(
                        self.retry_policy.backoff_for(query, attempt)
                    )
                continue
            self.breaker.record_success()
            return results
        return None

    # -- batched path ------------------------------------------------------------------

    def annotate_values(
        self,
        values_with_context: Sequence[tuple[str, str | None]],
        type_keys: list[str],
    ) -> list[CellDecision]:
        """Annotate a batch of (value, spatial_context) pairs at once.

        The batch may be one table's cells (``annotate_table``) or a whole
        corpus's (``annotate_tables``).  Semantics match calling
        :meth:`annotate_value` per pair, but the work is batched at every
        layer:

        * unique queries are resolved through the engine's
          :meth:`~repro.web.search.SearchEngine.search_many` (one request,
          one virtual-clock charge per unique query; the shared
          :class:`SnippetCache` is consulted first and populated after);
        * every retrieved snippet is pooled and deduplicated into a single
          ``classify_many`` call -- one vectorizer pass and one
          decision-matrix product for the whole batch;
        * labels are folded into one Equation 1 vote per *distinct* query
          and the (frozen, shareable) decisions are demultiplexed back onto
          the cells, including per-cell failure handling.

        A failed unique query fails every cell sharing it (each counts
        toward :attr:`failure_count`) and is not cached, so a later batch
        retries it.

        Accounting note: duplicate query strings within one batch are
        issued (and charged) once *by design* -- the protocol-level
        deduplication is the point of the batched path.  The per-cell
        path only collapses duplicates through a shared
        :class:`SnippetCache`, so for a table with repeated values and
        *no* cache it charges once per occurrence where this path charges
        once per unique query; with distinct values, or any values plus a
        shared cache, the two paths account identically.
        """
        if not type_keys:
            raise ValueError("type_keys must be non-empty")
        queries = [
            value if context is None else f"{value} {context}"
            for value, context in values_with_context
        ]
        with span("annotate.resolve_queries", n_cells=len(queries)) as resolve_span:
            snippets_by_query = self._resolve_queries(queries)
            resolve_span.tag(n_unique=len(snippets_by_query))
        with span("annotate.classify"):
            self._classify_pooled(snippets_by_query)
        with span("annotate.vote"):
            return self._demux(queries, snippets_by_query, type_keys)

    def _resolve_queries(self, queries: Sequence[str]) -> dict[str, object]:
        """Resolve unique queries: cache first, then batched search rounds.

        Returns query -> snippet list, with :data:`_FAILED` marking queries
        whose engine request(s) failed.  With retries enabled, queries that
        fail in one :meth:`search_many` round are re-issued together in the
        next round after their (deterministic, per-query) backoff is
        charged to the virtual clock.  Because both the backoff and the
        failure draw are pure functions of the query and its attempt /
        occurrence index, a query fails here exactly when the per-cell
        path's :meth:`_search_with_retry` would fail it -- the rounds only
        change *when* requests are issued, not their outcomes.  The breaker
        is consulted at round boundaries (the batched path's granularity):
        once it opens, the remaining pending queries fail fast uncharged.
        """
        k = self.config.top_k
        snippets_by_query: dict[str, object] = {}
        to_issue: list[str] = []
        for query in queries:
            if query in snippets_by_query:
                # Within-batch duplicate: served by the shared resolution;
                # its cache accounting happens at demux time, once the
                # shared request's outcome is known.
                continue
            cached = self.cache.get(query, k) if self.cache is not None else None
            if cached is not None:
                snippets_by_query[query] = cached
            else:
                snippets_by_query[query] = _FAILED  # placeholder until issued
                to_issue.append(query)
        pending = to_issue
        attempt = 0
        while pending:
            if not self.breaker.allow():
                break  # remaining queries stay _FAILED, uncharged
            failed_round: list[str] = []
            for query, results in zip(
                pending, self.engine.search_many(pending, k=k)
            ):
                if results is None:
                    self.breaker.record_failure()
                    failed_round.append(query)
                    continue
                self.breaker.record_success()
                snippets = [result.snippet for result in results]
                snippets_by_query[query] = snippets
                if self.cache is not None:
                    self.cache.put(query, k, snippets)
            attempt += 1
            if not failed_round or attempt > self.retry_policy.retries:
                break
            for query in failed_round:
                self.retry_count += 1
                self.engine.clock.wait(self.retry_policy.backoff_for(query, attempt))
            pending = failed_round
        return snippets_by_query

    def _classify_pooled(self, snippets_by_query: dict[str, object]) -> None:
        """Classify every resolved snippet into the lifetime label memo.

        Snippets from all queries are pooled, deduplicated against both the
        batch and the annotator-lifetime snippet -> label memo:
        classification is a pure function of the text, so each distinct
        snippet is vectorised and classified exactly once.
        """
        label_memo = self._active_label_memo()
        store = self._label_store
        pool_index: dict[str, int] = {}
        pooled: list[str] = []
        for snippets in snippets_by_query.values():
            if snippets is _FAILED:
                continue
            for snippet in snippets:  # type: ignore[union-attr]
                if snippet in label_memo:
                    self._memo_hits += 1
                    continue
                if snippet in pool_index:
                    continue
                if store is not None:
                    stored = store.get(snippet)
                    if stored is not None:
                        label_memo[snippet] = stored
                        self._memo_hits += 1
                        continue
                self._memo_misses += 1
                pool_index[snippet] = len(pooled)
                pooled.append(snippet)
        if pooled:
            with span("annotate.classify_gemm", n_snippets=len(pooled)):
                labels = self.classifier.classify_many(
                    pooled, workers=self.config.classify_workers
                )
            for snippet, position in pool_index.items():
                label_memo[snippet] = labels[position]

    def _demux(
        self,
        queries: Sequence[str],
        snippets_by_query: dict[str, object],
        type_keys: list[str],
    ) -> list[CellDecision]:
        """Demultiplex resolved queries back into per-cell decisions.

        The Equation 1 vote is a pure function of a query's snippet labels,
        so it is computed once per distinct query and the (frozen) decision
        is shared by every cell carrying that query -- across tables, when
        the batch spans a corpus.  Duplicate occurrences are accounted
        against the cache the way the per-cell path would see them: a hit
        when the shared resolution succeeded, another miss when it failed
        (failures are never cached); every failed occurrence counts toward
        :attr:`failure_count`.
        """
        label_memo = self._label_memo
        decisions: list[CellDecision] = []
        decided: dict[str, CellDecision] = {}
        for query in queries:
            snippets = snippets_by_query[query]
            decision = decided.get(query)
            if decision is None:
                if snippets is _FAILED:
                    decision = CellDecision(
                        type_key=None, score=0.0, query=query, failed=True
                    )
                elif not snippets:
                    decision = CellDecision(type_key=None, score=0.0, query=query)
                else:
                    cell_labels = [
                        label_memo[snippet]
                        for snippet in snippets  # type: ignore[union-attr]
                    ]
                    decision = self._decide(cell_labels, type_keys, query)
                decided[query] = decision
            elif self.cache is not None:
                if snippets is _FAILED:
                    self.cache.misses += 1
                else:
                    self.cache.hits += 1
            if snippets is _FAILED:
                self.failure_count += 1
            decisions.append(decision)
        return decisions

    # -- end-of-corpus repair ----------------------------------------------------------

    def repair_decisions(
        self,
        values_with_context: Sequence[tuple[str, str | None]],
        decisions: Sequence[CellDecision],
        type_keys: list[str],
    ) -> tuple[list[CellDecision], int]:
        """Re-issue every failed decision's query once, at end of corpus.

        If the breaker is open, the repair pass first waits out the
        remaining cooldown on the virtual clock so its probe is admitted.
        Each failed cell gets a fresh retry cycle (fresh occurrence
        indices, so fresh failure draws).  Returns the repaired decision
        list and how many cells recovered.  :attr:`failure_count` is
        adjusted so it counts cells whose resolution was *finally*
        abandoned, not intermediate attempts.
        """
        failed_indices = [
            index for index, decision in enumerate(decisions) if decision.failed
        ]
        repaired_decisions = list(decisions)
        if not failed_indices:
            return repaired_decisions, 0
        if self.breaker.is_open:
            self.engine.clock.wait(self.breaker.seconds_until_probe())
        retried = self.annotate_values(
            [values_with_context[index] for index in failed_indices], type_keys
        )
        # The first pass already counted these occurrences; only cells
        # still failed after the repair belong in the final tally.
        self.failure_count -= len(failed_indices)
        repaired = 0
        for index, decision in zip(failed_indices, retried):
            if not decision.failed:
                repaired += 1
            repaired_decisions[index] = decision
        return repaired_decisions, repaired

    # -- label-memo lifecycle and persistence ---------------------------------------------

    def _active_label_memo(self) -> dict[str, str]:
        """The lifetime snippet -> label memo, reset on classifier swap."""
        if self._label_memo_owner is not self.classifier:
            self._label_memo = {}
            self._label_memo_owner = self.classifier
            # The attached store answers for the old classifier now.
            if self._label_store is not None:
                self.detach_label_store()
        return self._label_memo

    # -- shared cache store ----------------------------------------------------------------

    @property
    def label_store(self) -> CacheStore | None:
        """The attached shared label store, or ``None`` (legacy files only)."""
        return self._label_store

    def attach_label_store(self, store: CacheStore) -> None:
        """Serve label-memo misses from *store* (a shared second tier).

        The store must have been opened against the current classifier's
        fingerprint -- labels are pure functions of the snippet text only
        under one fitted classifier.  Attaching counts as one cache load;
        bytes read grow lazily as buckets are touched.
        """
        if store.fingerprint != self.classifier.fingerprint():
            raise ValueError(
                "cannot attach a label store opened against a different "
                "classifier fingerprint"
            )
        if self._label_store is not None:
            self.detach_label_store()
        self._active_label_memo()
        self._label_store = store
        self._cache_loads += 1

    def detach_label_store(self) -> None:
        """Drop the attached store, folding its read bytes into the totals."""
        store = self._label_store
        if store is None:
            return
        self._legacy_load_bytes += store.loaded_bytes
        self._label_store = None

    def flush_label_store(self) -> int | None:
        """Persist the label memo through the attached store.

        Stages every memoised label the store does not already hold (the
        delta this process classified), then appends them in one locked
        write.  Returns the bytes written, 0 when the store was already
        complete, or ``None`` when no store is attached or the store lock
        could not be acquired (the flush is skipped).
        """
        store = self._label_store
        if store is None:
            return None
        for snippet, label in self._active_label_memo().items():
            if not store.contains(snippet):
                store.put(snippet, label)
        written = store.flush()
        if written is not None:
            self._cache_saves += 1
            self._cache_save_bytes += written
        return written

    # -- cache IO accounting ---------------------------------------------------------------

    @property
    def memo_hits(self) -> int:
        """Snippet classifications served from the memo or the store."""
        return self._memo_hits

    @property
    def memo_misses(self) -> int:
        """Snippet classifications that had to run the classifier."""
        return self._memo_misses

    @property
    def cache_loads(self) -> int:
        """Successful memo loads (legacy file reads + store attaches)."""
        return self._cache_loads

    @property
    def cache_saves(self) -> int:
        """Successful memo saves (legacy file writes + store flushes)."""
        return self._cache_saves

    @property
    def cache_load_bytes(self) -> int:
        """Bytes read to warm the memo, monotone across (de)attaches."""
        store = self._label_store
        return self._legacy_load_bytes + (store.loaded_bytes if store else 0)

    @property
    def cache_save_bytes(self) -> int:
        """Bytes written persisting the memo."""
        return self._cache_save_bytes

    @staticmethod
    def merge_label_memos(existing: dict, fresh: dict) -> dict:
        """Union two persisted snippet -> label memos of one fingerprint.

        Classification is a pure function of the snippet text under one
        fitted classifier (the fingerprint guards that), so same-keyed
        entries agree and the merge is the combined key set.  Concurrent
        workers sharing a cache directory each fold their shard's labels
        in instead of overwriting each other's.
        """
        return {**existing, **fresh}

    def save_label_memo(self, path) -> bool:
        """Persist the lifetime snippet -> label memo to *path*.

        The payload is fingerprinted with the fitted classifier's identity
        (backend, labels, weights): a process holding a differently trained
        classifier will refuse to load it rather than serve wrong labels.
        The write is merge-on-save under an advisory lock, so another
        worker's entries (same fingerprint) are never discarded; returns
        ``False`` when the lock timed out and the save was skipped.
        """
        saved = save_cache_payload(
            path,
            kind="label-memo",
            fingerprint=self.classifier.fingerprint(),
            payload=dict(self._active_label_memo()),
            merge=self.merge_label_memos,
        )
        if saved:
            self._cache_saves += 1
            try:
                self._cache_save_bytes += os.stat(path).st_size
            except OSError:  # pragma: no cover - racing unlink
                pass
        return saved

    def load_label_memo(self, path) -> bool:
        """Warm the snippet -> label memo from *path*.

        Returns ``True`` when the file existed, carried the current format
        version and matched this classifier's fingerprint; stale or foreign
        files are ignored and ``False`` is returned.
        """
        payload = load_cache_payload(
            path, kind="label-memo", fingerprint=self.classifier.fingerprint()
        )
        if payload is None:
            return False
        self._active_label_memo().update(payload)
        self._cache_loads += 1
        try:
            self._legacy_load_bytes += os.stat(path).st_size
        except OSError:  # pragma: no cover - racing unlink
            pass
        return True

    # -- Equation 1 --------------------------------------------------------------------

    def _decide(
        self, labels: Sequence[str], type_keys: list[str], query: str
    ) -> CellDecision:
        """Majority vote over snippet labels (Equation 1), shared by both paths."""
        counts: dict[str, int] = {}
        for label in labels:
            counts[label] = counts.get(label, 0) + 1
        # t_max over the *requested* types only; OTHER and off-request
        # labels never annotate, they only eat votes.
        best_type: str | None = None
        best_count = 0
        for type_key in type_keys:
            count = counts.get(type_key, 0)
            if count > best_count:
                best_count = count
                best_type = type_key
        if best_type is None or best_count <= self.config.majority_count:
            return CellDecision(
                type_key=None, score=0.0, snippet_counts=counts, query=query
            )
        return CellDecision(
            type_key=best_type,
            score=best_count / self.config.top_k,
            snippet_counts=counts,
            query=query,
        )
