"""Cell annotation via search + snippet classification (Section 5.2, Eq. 1).

For a cell value ``v`` (optionally augmented with disambiguated spatial
context), the annotator retrieves the top-k snippets, classifies each one,
and annotates the cell with the winning type ``t_max`` provided strictly
more than ``k/2`` snippets were classified as ``t_max``.  The annotation
score is ``S_ij = s_t / k`` (Equation 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.classify.snippet import SnippetTypeClassifier
from repro.core.config import AnnotatorConfig
from repro.web.search import SearchEngine, SearchEngineUnavailable


@dataclass(frozen=True)
class CellDecision:
    """Outcome of annotating one cell value."""

    type_key: str | None
    score: float
    snippet_counts: dict[str, int] = field(default_factory=dict)
    query: str = ""
    failed: bool = False

    @property
    def annotated(self) -> bool:
        return self.type_key is not None


class SnippetCache:
    """Shared (query, k) -> snippets cache.

    Different classifier backends evaluated over the same corpus reuse the
    same searches; caching the snippet lists avoids recomputing BM25 while
    leaving each engine call's latency accounting to the first requester.
    """

    def __init__(self) -> None:
        self._store: dict[tuple[str, int], list[str]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, query: str, k: int) -> list[str] | None:
        snippets = self._store.get((query, k))
        if snippets is not None:
            self.hits += 1
        return snippets

    def put(self, query: str, k: int, snippets: list[str]) -> None:
        self.misses += 1
        self._store[(query, k)] = snippets


class CellAnnotator:
    """Annotates individual cell values against a set of target types."""

    def __init__(
        self,
        classifier: SnippetTypeClassifier,
        engine: SearchEngine,
        config: AnnotatorConfig | None = None,
        cache: SnippetCache | None = None,
    ) -> None:
        self.classifier = classifier
        self.engine = engine
        self.config = config or AnnotatorConfig()
        self.cache = cache
        self.failure_count = 0

    def annotate_value(
        self,
        value: str,
        type_keys: list[str],
        spatial_context: str | None = None,
    ) -> CellDecision:
        """Decide whether *value* names an entity of one of *type_keys*.

        *spatial_context* (a city name) is appended to the query, the
        Section 5.2.2 disambiguation.  A search-engine failure yields an
        unannotated decision flagged ``failed=True`` -- the algorithm
        degrades gracefully rather than aborting the table.
        """
        if not type_keys:
            raise ValueError("type_keys must be non-empty")
        query = value if spatial_context is None else f"{value} {spatial_context}"
        k = self.config.top_k
        snippets = self.cache.get(query, k) if self.cache is not None else None
        if snippets is None:
            try:
                results = self.engine.search(query, k=k)
            except SearchEngineUnavailable:
                self.failure_count += 1
                return CellDecision(
                    type_key=None, score=0.0, query=query, failed=True
                )
            snippets = [result.snippet for result in results]
            if self.cache is not None:
                self.cache.put(query, k, snippets)
        if not snippets:
            return CellDecision(type_key=None, score=0.0, query=query)
        labels = self.classifier.classify_many(snippets)
        counts: dict[str, int] = {}
        for label in labels:
            counts[label] = counts.get(label, 0) + 1
        # t_max over the *requested* types only; OTHER and off-request
        # labels never annotate, they only eat votes.
        best_type: str | None = None
        best_count = 0
        for type_key in type_keys:
            count = counts.get(type_key, 0)
            if count > best_count:
                best_count = count
                best_type = type_key
        if best_type is None or best_count <= self.config.majority_count:
            return CellDecision(
                type_key=None, score=0.0, snippet_counts=counts, query=query
            )
        return CellDecision(
            type_key=best_type,
            score=best_count / k,
            snippet_counts=counts,
            query=query,
        )
