"""Pre-processing: ruling out cells before any search query (Section 5.1).

Two families of filters:

* **syntactic** -- regular expressions for phone numbers, URLs, email
  addresses, plain numbers and geographic coordinates, plus a token-count
  cut for verbose descriptions;
* **GFT column types** -- cells in columns typed Location, Date or Number
  cannot contain entity names and are skipped wholesale.

The filters return the *reason* a cell was excluded, which the annotator
records; ``None`` means the cell survives and will be queried.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.config import AnnotatorConfig
from repro.tables.model import ColumnType, Table
from repro.text.tokenization import token_count

URL_RE = re.compile(r"^(https?://|www\.)\S+$", re.IGNORECASE)
EMAIL_RE = re.compile(r"^[\w.+-]+@[\w-]+\.[\w.-]+$")
COORDINATES_RE = re.compile(r"^-?\d{1,3}\.\d+\s*[,;]\s*-?\d{1,3}\.\d+$")
NUMBER_RE = re.compile(r"^[+-]?\d+([.,]\d+)*%?$")
_PHONE_CHARS_RE = re.compile(r"^[+()\d\s./-]+$")

_SKIPPED_COLUMN_TYPES = frozenset(
    (ColumnType.LOCATION, ColumnType.DATE, ColumnType.NUMBER)
)


def looks_like_url(value: str) -> bool:
    """``True`` for http(s)/www links."""
    return URL_RE.match(value.strip()) is not None


def looks_like_email(value: str) -> bool:
    """``True`` for e-mail addresses."""
    return EMAIL_RE.match(value.strip()) is not None


def looks_like_number(value: str) -> bool:
    """``True`` for plain numeric values (ints, decimals, percentages)."""
    return NUMBER_RE.match(value.strip()) is not None


def looks_like_coordinates(value: str) -> bool:
    """``True`` for "lat, lon" style coordinate pairs."""
    return COORDINATES_RE.match(value.strip()) is not None


def looks_like_phone(value: str) -> bool:
    """``True`` for phone-number-shaped values (>= 7 digits, digit punctuation only)."""
    stripped = value.strip()
    if not stripped or _PHONE_CHARS_RE.match(stripped) is None:
        return False
    return sum(ch.isdigit() for ch in stripped) >= 7


@dataclass(frozen=True)
class CandidateCell:
    """A cell that survived pre-processing and will be queried."""

    row: int
    column: int
    value: str


class Preprocessor:
    """Applies the Section 5.1 filters to a table."""

    def __init__(self, config: AnnotatorConfig | None = None) -> None:
        self.config = config or AnnotatorConfig()

    # -- single-cell filters ---------------------------------------------------------

    def exclusion_reason(self, value: str) -> str | None:
        """Why *value* cannot contain an entity name; ``None`` if it can."""
        stripped = value.strip()
        if not stripped:
            return "empty"
        if looks_like_url(stripped):
            return "url"
        if looks_like_email(stripped):
            return "email"
        if looks_like_coordinates(stripped):
            return "coordinates"
        if looks_like_number(stripped):
            return "number"
        if looks_like_phone(stripped):
            return "phone"
        if token_count(stripped) > self.config.long_value_token_limit:
            return "long-value"
        return None

    def column_exclusion_reason(self, table: Table, column: int) -> str | None:
        """Why a whole column is skipped (GFT typing), or ``None``."""
        if not self.config.use_gft_column_types:
            return None
        column_type = table.column_type(column)
        if column_type in _SKIPPED_COLUMN_TYPES:
            return f"gft-type-{column_type.value.lower()}"
        return None

    # -- table-level API -----------------------------------------------------------------

    def candidate_cells(self, table: Table) -> list[CandidateCell]:
        """All cells of *table* that survive every filter, row-major order."""
        candidates = []
        skipped_columns = {
            j
            for j in range(table.n_columns)
            if self.column_exclusion_reason(table, j) is not None
        }
        for cell in table.iter_cells():
            if cell.column in skipped_columns:
                continue
            if self.exclusion_reason(cell.value) is None:
                candidates.append(
                    CandidateCell(row=cell.row, column=cell.column, value=cell.value)
                )
        return candidates

    def exclusion_summary(self, table: Table) -> dict[str, int]:
        """Histogram of exclusion reasons over the whole table (diagnostics)."""
        summary: dict[str, int] = {}
        skipped_columns = {}
        for j in range(table.n_columns):
            reason = self.column_exclusion_reason(table, j)
            if reason is not None:
                skipped_columns[j] = reason
        for cell in table.iter_cells():
            if cell.column in skipped_columns:
                reason: str | None = skipped_columns[cell.column]
            else:
                reason = self.exclusion_reason(cell.value)
            key = reason if reason is not None else "kept"
            summary[key] = summary.get(key, 0) + 1
        return summary
