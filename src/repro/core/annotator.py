"""The end-to-end entity annotator (Section 5, Figure 5).

``EntityAnnotator`` wires the three stages together:

1. **Pre-processing** (:class:`~repro.core.preprocessing.Preprocessor`)
   keeps only cells that could plausibly name an entity;
2. **Annotation** (:class:`~repro.core.annotation.CellAnnotator`) queries
   the search engine per candidate cell -- augmented with a disambiguated
   city context when spatial disambiguation is enabled -- and applies the
   snippet-majority rule (Equation 1);
3. **Post-processing** (:mod:`~repro.core.postprocessing`) eliminates
   spurious annotations via the column-coherence score (Equation 2).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.classify.snippet import SnippetTypeClassifier
from repro.core.annotation import CellAnnotator, SnippetCache
from repro.core.config import AnnotatorConfig
from repro.core.disambiguation import SpatialContextExtractor
from repro.core.postprocessing import eliminate_spurious
from repro.core.preprocessing import Preprocessor
from repro.core.results import AnnotationRun, CellAnnotation, TableAnnotation
from repro.geo.geocoder import Geocoder
from repro.tables.model import Table
from repro.web.search import SearchEngine


class EntityAnnotator:
    """Discovers and annotates entities of given types in tables.

    Parameters
    ----------
    classifier:
        A fitted :class:`SnippetTypeClassifier` over (at least) the types
        that will be requested.
    engine:
        The web search engine to consult per cell.
    geocoder:
        Required only when ``config.use_spatial_disambiguation`` is on.
    cache:
        Optional shared :class:`SnippetCache`; harnesses evaluating several
        classifier backends over one corpus pass it to avoid re-searching.
    """

    def __init__(
        self,
        classifier: SnippetTypeClassifier,
        engine: SearchEngine,
        config: AnnotatorConfig | None = None,
        geocoder: Geocoder | None = None,
        cache: SnippetCache | None = None,
    ) -> None:
        self.config = config or AnnotatorConfig()
        if self.config.use_spatial_disambiguation and geocoder is None:
            raise ValueError(
                "spatial disambiguation requires a geocoder; pass one or "
                "disable use_spatial_disambiguation"
            )
        self.classifier = classifier
        self.engine = engine
        self.geocoder = geocoder
        self.preprocessor = Preprocessor(self.config)
        self.cell_annotator = CellAnnotator(
            classifier, engine, self.config, cache=cache
        )
        self._context_extractor = (
            SpatialContextExtractor(geocoder, self.config)
            if geocoder is not None
            else None
        )

    # -- single table -------------------------------------------------------------------

    def annotate_table(
        self, table: Table, type_keys: Sequence[str]
    ) -> TableAnnotation:
        """Annotate one table for the requested types (all three stages)."""
        type_keys = list(type_keys)
        if not type_keys:
            raise ValueError("type_keys must be non-empty")
        annotation = TableAnnotation(table_name=table.name)
        candidates = self.preprocessor.candidate_cells(table)
        contexts: dict[int, str] = {}
        if self.config.use_spatial_disambiguation and self._context_extractor:
            contexts = self._context_extractor.row_contexts(table)
        for candidate in candidates:
            decision = self.cell_annotator.annotate_value(
                candidate.value,
                type_keys,
                spatial_context=contexts.get(candidate.row),
            )
            if decision.annotated:
                annotation.add(
                    CellAnnotation(
                        table_name=table.name,
                        row=candidate.row,
                        column=candidate.column,
                        type_key=decision.type_key,  # type: ignore[arg-type]
                        score=decision.score,
                        cell_value=candidate.value,
                    )
                )
        if self.config.use_postprocessing:
            annotation = eliminate_spurious(
                table,
                annotation,
                use_repetition_factor=self.config.use_repetition_factor,
            )
        return annotation

    # -- corpora ---------------------------------------------------------------------------

    def annotate_tables(
        self, tables: Iterable[Table], type_keys: Sequence[str]
    ) -> AnnotationRun:
        """Annotate every table, returning a corpus-level run."""
        run = AnnotationRun()
        for table in tables:
            table_annotation = self.annotate_table(table, type_keys)
            run.tables[table.name] = table_annotation
        return run

    # -- diagnostics ------------------------------------------------------------------------

    @property
    def search_failures(self) -> int:
        """Number of cells skipped because the engine was unavailable."""
        return self.cell_annotator.failure_count
