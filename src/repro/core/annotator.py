"""The end-to-end entity annotator (Section 5, Figure 5).

``EntityAnnotator`` wires the three stages together:

1. **Pre-processing** (:class:`~repro.core.preprocessing.Preprocessor`)
   keeps only cells that could plausibly name an entity;
2. **Annotation** (:class:`~repro.core.annotation.CellAnnotator`) resolves
   all candidate cells in one batch -- queries augmented with a
   disambiguated city context when spatial disambiguation is enabled,
   deduplicated at the engine, snippets pooled into one classifier call --
   and applies the snippet-majority rule (Equation 1) per cell;
3. **Post-processing** (:mod:`~repro.core.postprocessing`) eliminates
   spurious annotations via the column-coherence score (Equation 2).

Batching happens at two granularities.  :meth:`EntityAnnotator.annotate_table`
is table-at-a-time; :meth:`EntityAnnotator.annotate_tables` is
**corpus-at-a-time**: the candidate cells of *every* table are pooled into
one engine/classifier pass, so a query string shared by several tables is
searched, classified and voted on exactly once for the whole run.  The
returned :class:`~repro.core.results.AnnotationRun` carries corpus-wide
:class:`~repro.core.results.RunDiagnostics`, and
:meth:`EntityAnnotator.save_caches` / :meth:`~EntityAnnotator.load_caches`
persist the engine's amortisation state so a second process starts warm.

>>> import random
>>> from repro.classify.dataset import TextDataset
>>> from repro.classify.snippet import SnippetTypeClassifier
>>> from repro.clock import VirtualClock
>>> from repro.tables.model import Column, ColumnType, Table
>>> from repro.web.documents import WebPage
>>> from repro.web.search import SearchEngine
>>> rng = random.Random(0)
>>> words = "exhibit gallery paintings curator collection museum".split()
>>> dataset = TextDataset()
>>> for _ in range(30):
...     dataset.add(" ".join(rng.choices(words, k=8)), "museum")
...     dataset.add("menu chef cuisine dining wine", "restaurant")
>>> classifier = SnippetTypeClassifier(backend="svm", min_count=1).fit(dataset)
>>> engine = SearchEngine(clock=VirtualClock())
>>> engine.add_pages(
...     [WebPage(url=f"https://web/stone-hall-{i}", title="Stone Hall",
...              body="stone hall " + " ".join(rng.choices(words, k=20)))
...      for i in range(8)]
... )
>>> def directory(name):
...     table = Table(name=name, columns=[Column("Name", ColumnType.TEXT)])
...     table.append_row(["Stone Hall"])
...     return table
>>> annotator = EntityAnnotator(classifier, engine)
>>> run = annotator.annotate_tables(
...     [directory("site-a"), directory("site-b")], ["museum", "restaurant"]
... )
>>> sorted(run.tables)
['site-a', 'site-b']
>>> run.tables["site-a"].cells[0].type_key
'museum'
>>> run.diagnostics.n_tables
2
>>> run.diagnostics.queries_issued  # "Stone Hall" searched once for the corpus
1
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.classify.snippet import SnippetTypeClassifier
from repro.core.annotation import CellAnnotator, SnippetCache
from repro.core.config import AnnotatorConfig
from repro.core.disambiguation import SpatialContextExtractor
from repro.core.postprocessing import eliminate_spurious
from repro.core.preprocessing import Preprocessor
from repro.core.results import (
    AnnotationRun,
    BatchAnnotationResult,
    CellAnnotation,
    DegradedCell,
    RunDiagnostics,
    TableAnnotation,
)
from repro.geo.geocoder import Geocoder
from repro.observability.tracing import span
from repro.persistence import lock_wait_seconds, open_cache_store
from repro.tables.model import Table
from repro.web.search import SearchEngine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (parallel imports us)
    from repro.core.parallel import TableSlice

ENGINE_CACHE_FILE = "search_results.cache"
"""File name of the persisted engine signature cache inside a cache dir."""

LABEL_MEMO_FILE = "label_memo.cache"
"""File name of the persisted snippet -> label memo inside a cache dir."""

ENGINE_CACHE_STORE = "search_results.cachestore"
"""Directory name of the engine's sharded disk cache store inside a cache
dir (``cache_backend="disk"``)."""

LABEL_MEMO_STORE = "label_memo.cachestore"
"""Directory name of the label memo's sharded disk cache store inside a
cache dir (``cache_backend="disk"``)."""


class EntityAnnotator:
    """Discovers and annotates entities of given types in tables.

    Parameters
    ----------
    classifier:
        A fitted :class:`SnippetTypeClassifier` over (at least) the types
        that will be requested.
    engine:
        The web search engine to consult per cell.
    geocoder:
        Required only when ``config.use_spatial_disambiguation`` is on.
    cache:
        Optional shared :class:`SnippetCache`; harnesses evaluating several
        classifier backends over one corpus pass it to avoid re-searching.
    """

    def __init__(
        self,
        classifier: SnippetTypeClassifier,
        engine: SearchEngine,
        config: AnnotatorConfig | None = None,
        geocoder: Geocoder | None = None,
        cache: SnippetCache | None = None,
    ) -> None:
        self.config = config or AnnotatorConfig()
        if self.config.use_spatial_disambiguation and geocoder is None:
            raise ValueError(
                "spatial disambiguation requires a geocoder; pass one or "
                "disable use_spatial_disambiguation"
            )
        self.classifier = classifier
        self.engine = engine
        self.geocoder = geocoder
        self.preprocessor = Preprocessor(self.config)
        self.cell_annotator = CellAnnotator(
            classifier, engine, self.config, cache=cache
        )
        self._context_extractor = (
            SpatialContextExtractor(geocoder, self.config)
            if geocoder is not None
            else None
        )

    # -- single table -------------------------------------------------------------------

    def annotate_table(
        self, table: Table, type_keys: Sequence[str]
    ) -> TableAnnotation:
        """Annotate one table for the requested types (all three stages).

        Runs table-at-a-time: spatial contexts are computed up front (as
        before), then every candidate cell is resolved through the batched
        :meth:`~repro.core.annotation.CellAnnotator.annotate_values` --
        deduplicated searches, pooled snippet classification -- producing
        exactly the decisions of the per-cell loop, faster.
        """
        type_keys = list(type_keys)
        if not type_keys:
            raise ValueError("type_keys must be non-empty")
        annotation, _ = self._annotate_one(table, type_keys)
        return annotation

    def _annotate_one(
        self, table: Table, type_keys: list[str]
    ) -> tuple[TableAnnotation, int]:
        """One table through the batched path; returns (annotation, n_candidates).

        The single canonical per-table sequence, shared by
        :meth:`annotate_table` and :meth:`_annotate_tables_sequential` so
        the corpus parity baseline can never drift from the public method.
        """
        candidates = self.preprocessor.candidate_cells(table)
        contexts = self._row_contexts(table)
        decisions = self.cell_annotator.annotate_values(
            [(c.value, contexts.get(c.row)) for c in candidates], type_keys
        )
        return self._collect(table, candidates, decisions), len(candidates)

    def _annotate_table_per_cell(
        self, table: Table, type_keys: Sequence[str]
    ) -> TableAnnotation:
        """The seed cell-by-cell path: one search + one classification per
        cell.  Retained (private) as the parity and throughput baseline the
        batched path is regression-tested against."""
        type_keys = list(type_keys)
        if not type_keys:
            raise ValueError("type_keys must be non-empty")
        candidates = self.preprocessor.candidate_cells(table)
        contexts = self._row_contexts(table)
        decisions = [
            self.cell_annotator.annotate_value(
                candidate.value,
                type_keys,
                spatial_context=contexts.get(candidate.row),
            )
            for candidate in candidates
        ]
        return self._collect(table, candidates, decisions)

    def _row_contexts(self, table: Table) -> dict[int, str]:
        """Disambiguated per-row city contexts (empty when disabled)."""
        if self.config.use_spatial_disambiguation and self._context_extractor:
            return self._context_extractor.row_contexts(table)
        return {}

    def _collect(self, table: Table, candidates, decisions) -> TableAnnotation:
        """Fold per-cell decisions into a (post-processed) TableAnnotation.

        Cells whose engine request(s) ultimately failed are recorded on
        the annotation's ``degraded`` list -- the resilience contract: a
        lossy run names its losses instead of silently shrinking.
        """
        return self.postprocess_table(
            table, self._collect_raw(table.name, candidates, decisions)
        )

    def _collect_raw(
        self, table_name: str, candidates, decisions, row_offset: int = 0
    ) -> TableAnnotation:
        """Fold decisions into a *raw* (pre-post-processing) annotation.

        *row_offset* shifts candidate rows into the coordinates of a
        larger table -- the row-range splitting path annotates a slice's
        sub-table (rows renumbered from 0) and ships absolute positions
        home, so reassembled slices are indistinguishable from an
        unsliced annotation of the full table.
        """
        annotation = TableAnnotation(table_name=table_name)
        for candidate, decision in zip(candidates, decisions):
            if decision.annotated:
                annotation.add(
                    CellAnnotation(
                        table_name=table_name,
                        row=candidate.row + row_offset,
                        column=candidate.column,
                        type_key=decision.type_key,  # type: ignore[arg-type]
                        score=decision.score,
                        cell_value=candidate.value,
                    )
                )
            elif decision.failed:
                annotation.degraded.append(
                    DegradedCell(
                        table_name=table_name,
                        row=candidate.row + row_offset,
                        column=candidate.column,
                        cell_value=candidate.value,
                        query=decision.query,
                    )
                )
        return annotation

    def postprocess_table(
        self, table: Table, annotation: TableAnnotation
    ) -> TableAnnotation:
        """Apply Equation 2 elimination when configured, else pass through.

        Post-processing is deliberately *table-global* -- the
        column-coherence score weighs whole-column value occurrences over
        all of a table's annotations -- which is exactly why the
        splitting scheduler defers it: workers annotate row slices raw,
        and the parent calls this once per reassembled table with the
        full original table.
        """
        if self.config.use_postprocessing:
            with span("annotate.postprocess", table=table.name):
                return eliminate_spurious(
                    table,
                    annotation,
                    use_repetition_factor=self.config.use_repetition_factor,
                )
        return annotation

    # -- corpora ---------------------------------------------------------------------------

    def annotate_tables(
        self,
        tables: Iterable[Table],
        type_keys: Sequence[str],
        *,
        workers: int = 1,
        cache_dir=None,
    ) -> AnnotationRun:
        """Annotate a whole corpus in one pooled engine/classifier pass.

        Corpus-at-a-time: candidate cells and spatial contexts are computed
        per table (as always), then every (value, context) pair of every
        table goes through a single
        :meth:`~repro.core.annotation.CellAnnotator.annotate_values` batch
        -- one :meth:`~repro.web.search.SearchEngine.search_many` for the
        corpus, one pooled ``classify_many``, one Equation 1 vote per
        distinct query -- and the decisions are demultiplexed back into
        per-table annotations (post-processing stays per table).

        Output is identical to :meth:`_annotate_tables_sequential`, the
        retained per-table loop.  Accounting is identical too whenever a
        shared :class:`~repro.core.annotation.SnippetCache` is in play or
        no query string repeats across tables; without a cache, a query
        shared by several tables is issued (and charged) once here versus
        once per table there -- the protocol-level amortisation that is
        the point of the corpus path.  The one caveat to output equality:
        a *failed* repeated query is final for the whole run here, while
        the per-table loop re-issues it table by table (failures are never
        cached) and each re-issue is a fresh occurrence with a fresh
        deterministic failure draw, so under failure injection the two
        protocols can legitimately diverge on repeated queries; with a
        healthy engine, a fully-down engine, or distinct queries, they
        cannot.

        The returned run carries corpus-aggregated
        :class:`~repro.core.results.RunDiagnostics` spanning every table
        of the run.

        ``workers=N`` distributes the corpus across ``N`` worker
        *processes* (see :mod:`repro.core.parallel`).  How the work is
        placed is ``config.schedule``'s call: ``"stealing"`` (default)
        enqueues cost-bounded chunk tasks (``config.chunk_cost_target``
        cells per task, 0 = automatic) that idle workers pull as they
        finish -- skew-tolerant, a giant table no longer serialises the
        run on one unlucky worker -- while ``"static"`` keeps contiguous
        near-equal shards, one per worker.  Each worker warm-starts from
        *cache_dir* (when given), runs this very corpus-at-a-time path
        over the tasks it pulls, and merge-saves its caches back once at
        the end of the run, so concurrent workers share one cache
        directory without losing entries.  The run's
        ``diagnostics.worker_loads`` record what every worker really did
        (tasks, cells, busy seconds; see
        ``RunDiagnostics.imbalance_ratio``).  Annotations are
        byte-identical to ``workers=1`` under either scheduler on a
        healthy (or fully-down) engine -- same-named tables merge in
        corpus order everywhere.  Failure injection is deterministic per
        (query, occurrence), so workers agree with the corpus path on
        every query's *first* issue; repeats inside different shards may
        still diverge, exactly like the corpus-vs-sequential caveat
        above.  A worker that *dies* mid-run no longer aborts the corpus:
        its task is requeued onto a fresh worker up to
        ``config.task_retries`` times, then quarantined with its tables'
        candidate cells marked degraded (see :mod:`repro.core.parallel`).
        With ``workers=1``, *cache_dir* warm-starts this process before
        the run and merge-saves after it -- the same contract, minus the
        pool.  The end-of-corpus repair pass (``config.retries > 0``)
        runs inside whichever process executes the pooled pass.
        """
        tables = list(tables)
        type_keys = list(type_keys)
        if not type_keys:
            raise ValueError("type_keys must be non-empty")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers > 1 and len(tables) > 1:
            from repro.core.parallel import annotate_tables_parallel

            return annotate_tables_parallel(
                self, tables, type_keys, workers=workers, cache_dir=cache_dir
            )
        # Snapshot before the warm start so the run's diagnostics cover
        # the cache IO spent serving it (annotation counters are
        # untouched by load/save, so the delta semantics are unchanged).
        before = self._counters()
        if cache_dir is not None:
            self.load_caches(cache_dir)
        prepped: list[tuple[Table, list]] = []
        pairs: list[tuple[str, str | None]] = []
        with span("annotate.prep", n_tables=len(tables)):
            for table in tables:
                candidates = self.preprocessor.candidate_cells(table)
                contexts = self._row_contexts(table)
                prepped.append((table, candidates))
                pairs.extend(
                    (candidate.value, contexts.get(candidate.row))
                    for candidate in candidates
                )
        decisions = self.cell_annotator.annotate_values(pairs, type_keys)
        repaired = 0
        if self.config.retries > 0:
            # End-of-corpus repair: one more pass over the cells that
            # exhausted their retries, issued once the breaker's cooldown
            # (if any) has been waited out on the virtual clock.
            with span("annotate.repair"):
                decisions, repaired = self.cell_annotator.repair_decisions(
                    pairs, decisions, type_keys
                )
        run = AnnotationRun()
        offset = 0
        for table, candidates in prepped:
            n_cells = len(candidates)
            run.merge_table(
                self._collect(
                    table, candidates, decisions[offset : offset + n_cells]
                )
            )
            offset += n_cells
        if cache_dir is not None:
            self.save_caches(cache_dir)
        run.diagnostics = self._diagnostics_since(
            before,
            n_tables=len(tables),
            n_cells=len(pairs),
            degraded_cells=sum(
                len(annotation.degraded) for annotation in run.tables.values()
            ),
            repaired_cells=repaired,
        )
        return run

    def annotate_batch(
        self,
        tables: Sequence[Table],
        type_keys: Sequence[str],
        *,
        workers: int = 1,
        cache_dir=None,
    ) -> BatchAnnotationResult:
        """One pooled corpus pass over a pre-batched list of *requests*.

        The demux-friendly sibling of :meth:`annotate_tables`, built for
        callers that batch *independent* requests -- the resident
        annotation service's micro-batcher coalescing concurrent clients
        into one tick (:mod:`repro.service.daemon`).  The engine and
        classifier economics are exactly the corpus path's (one
        ``search_many`` per distinct query, one pooled classify, one
        Equation 1 vote per distinct query), but the result demultiplexes
        *positionally*: ``annotations[i]`` answers input table ``i``, and
        two requests shipping same-named tables each get their own
        annotation instead of being merged into one
        :class:`~repro.core.results.TableAnnotation` -- an
        :class:`AnnotationRun` keyed by name could not tell their cells
        apart again.

        Implemented by aliasing each input table to a unique internal
        name, running the ordinary :meth:`annotate_tables` machinery
        (including ``workers``/``cache_dir``, so a large batch may shard
        across the worker pool), and renaming each annotation back.
        Annotations are byte-identical to calling :meth:`annotate_table`
        per table on an equally-warm annotator -- the service parity
        contract ``tests/test_service.py`` pins down.
        """
        tables = list(tables)
        aliased = [
            Table(name=f"__batch-{index}__", columns=table.columns, rows=table.rows)
            for index, table in enumerate(tables)
        ]
        run = self.annotate_tables(
            aliased, type_keys, workers=workers, cache_dir=cache_dir
        )
        annotations: list[TableAnnotation] = []
        for index, table in enumerate(tables):
            aliased_annotation = run.tables.get(f"__batch-{index}__")
            if aliased_annotation is None:
                annotations.append(TableAnnotation(table_name=table.name))
            else:
                annotations.append(
                    TableAnnotation(
                        table_name=table.name,
                        cells=[
                            replace(cell, table_name=table.name)
                            for cell in aliased_annotation.cells
                        ],
                        degraded=[
                            replace(cell, table_name=table.name)
                            for cell in aliased_annotation.degraded
                        ],
                    )
                )
        assert run.diagnostics is not None
        return BatchAnnotationResult(
            annotations=annotations, diagnostics=run.diagnostics
        )

    def annotate_table_slice(
        self, table_slice: "TableSlice", type_keys: Sequence[str]
    ) -> AnnotationRun:
        """Annotate one row-range slice of a table (the splitting unit).

        The work-stealing pool's counterpart of :meth:`annotate_tables`
        for a :class:`~repro.core.parallel.TableSlice` task: runs
        pre-processing and the batched resolution (plus the repair pass
        when ``config.retries > 0``) over the slice's rows only, and
        returns **raw** -- pre-post-processing -- annotations with rows
        shifted to the full table's coordinates.  Equation 2 elimination
        is table-global, so the parent applies :meth:`postprocess_table`
        once per reassembled table; spatial disambiguation is table-global
        too, which is why the scheduler never splits when it is enabled.

        Diagnostics count the slice's candidate cells; ``n_tables`` is 1
        only for the slice that starts at row 0, so summing slice
        diagnostics across a corpus still counts each physical table
        once.
        """
        type_keys = list(type_keys)
        if not type_keys:
            raise ValueError("type_keys must be non-empty")
        before = self._counters()
        sub_table = table_slice.table
        candidates = self.preprocessor.candidate_cells(sub_table)
        pairs: list[tuple[str, str | None]] = [
            (candidate.value, None) for candidate in candidates
        ]
        decisions = self.cell_annotator.annotate_values(pairs, type_keys)
        repaired = 0
        if self.config.retries > 0:
            decisions, repaired = self.cell_annotator.repair_decisions(
                pairs, decisions, type_keys
            )
        annotation = self._collect_raw(
            sub_table.name,
            candidates,
            decisions,
            row_offset=table_slice.row_start,
        )
        run = AnnotationRun()
        run.merge_table(annotation)
        run.diagnostics = self._diagnostics_since(
            before,
            n_tables=1 if table_slice.row_start == 0 else 0,
            n_cells=len(candidates),
            degraded_cells=len(annotation.degraded),
            repaired_cells=repaired,
        )
        return run

    def _annotate_tables_sequential(
        self, tables: Iterable[Table], type_keys: Sequence[str]
    ) -> AnnotationRun:
        """The per-table loop: one batched :meth:`annotate_table` per table.

        Retained (private) as the parity and throughput baseline the
        corpus-at-a-time path is regression-tested against; diagnostics are
        aggregated across the whole run exactly as in
        :meth:`annotate_tables`.
        """
        tables = list(tables)
        type_keys = list(type_keys)
        if not type_keys:
            raise ValueError("type_keys must be non-empty")
        before = self._counters()
        run = AnnotationRun()
        n_cells = 0
        for table in tables:
            annotation, n_candidates = self._annotate_one(table, type_keys)
            run.merge_table(annotation)
            n_cells += n_candidates
        run.diagnostics = self._diagnostics_since(
            before,
            n_tables=len(tables),
            n_cells=n_cells,
            degraded_cells=sum(
                len(annotation.degraded) for annotation in run.tables.values()
            ),
        )
        return run

    # -- cache persistence ------------------------------------------------------------------

    def save_caches(self, cache_dir) -> dict[str, bool]:
        """Persist the engine's amortisation caches under *cache_dir*.

        Writes two versioned files: the search engine's token-signature ->
        results cache (``search_results.cache``) and the lifetime
        snippet -> label memo (``label_memo.cache``).  A later process --
        or CLI invocation -- over the same corpus and classifier loads
        them with :meth:`load_caches` and skips the cold start.

        Both writes are merge-on-save under an advisory file lock, so a
        cache directory shared by concurrent workers unions everybody's
        entries instead of keeping only the last writer's.  Returns which
        file was actually written (``False`` means the lock timed out and
        that save was skipped).

        With ``config.cache_backend="disk"`` the same contract is served
        by the sharded stores instead (``search_results.cachestore/`` and
        ``label_memo.cachestore/``): this process's new entries are
        *appended* to each store's delta log in one locked write -- a
        grown cache never rewrites the world -- and ``False`` likewise
        means a lock timeout skipped that flush.
        """
        cache_dir = Path(cache_dir)
        with span("cache.flush", backend=self.config.cache_backend):
            if self.config.cache_backend == "disk":
                self._ensure_stores(cache_dir)
                return {
                    "search_results": self.engine.flush_results_store()
                    is not None,
                    "label_memo": self.cell_annotator.flush_label_store()
                    is not None,
                }
            return {
                "search_results": self.engine.save_results_cache(
                    cache_dir / ENGINE_CACHE_FILE
                ),
                "label_memo": self.cell_annotator.save_label_memo(
                    cache_dir / LABEL_MEMO_FILE
                ),
            }

    def load_caches(self, cache_dir) -> dict[str, bool]:
        """Warm the engine caches from *cache_dir* (see :meth:`save_caches`).

        Returns which cache loaded, e.g. ``{"search_results": True,
        "label_memo": False}``; a ``False`` means the file was missing or
        stale (corpus grown, classifier retrained, format changed) and
        that cache simply starts cold.

        With ``config.cache_backend="disk"`` nothing is copied into the
        process at all: the sharded stores are (re)opened -- reading only
        each store's manifest and delta log -- and attached as a shared
        second tier that compute-cache misses probe lazily.  ``True``
        then means the store matched the current fingerprint and holds
        entries; re-opening (rather than reusing an attached store) is
        deliberate, so a parent sees deltas its workers flushed since.
        """
        cache_dir = Path(cache_dir)
        with span("cache.load", backend=self.config.cache_backend):
            if self.config.cache_backend == "disk":
                engine_store, memo_store = self._open_stores(cache_dir)
                self.engine.attach_results_store(engine_store)
                self.cell_annotator.attach_label_store(memo_store)
                return {
                    "search_results": engine_store.has_entries(),
                    "label_memo": memo_store.has_entries(),
                }
            return {
                "search_results": self.engine.load_results_cache(
                    cache_dir / ENGINE_CACHE_FILE
                ),
                "label_memo": self.cell_annotator.load_label_memo(
                    cache_dir / LABEL_MEMO_FILE
                ),
            }

    def compact_caches(self) -> dict[str, int | None]:
        """Fold the attached disk stores' delta logs into their buckets.

        Delta compaction (:meth:`repro.persistence.ShardedDiskCacheStore.merge`):
        only the buckets the log touches are rewritten, so compacting
        after incremental growth leaves unchanged buckets byte-identical
        on disk.  Returns buckets rewritten per cache (``None`` marks a
        lock-timeout skip); empty when no stores are attached (memory
        backend, or no ``cache_dir`` seen yet).
        """
        out: dict[str, int | None] = {}
        engine_store = self.engine.results_store
        if engine_store is not None:
            out["search_results"] = engine_store.merge()
        memo_store = self.cell_annotator.label_store
        if memo_store is not None:
            out["label_memo"] = memo_store.merge()
        return out

    def _open_stores(self, cache_dir: Path):
        """Freshly opened (engine, memo) disk stores under *cache_dir*."""
        engine_store = open_cache_store(
            "disk",
            cache_dir / ENGINE_CACHE_STORE,
            kind="search-results",
            fingerprint=self.engine.cache_fingerprint(),
            n_buckets=self.config.cache_buckets,
        )
        memo_store = open_cache_store(
            "disk",
            cache_dir / LABEL_MEMO_STORE,
            kind="label-memo",
            fingerprint=self.classifier.fingerprint(),
            n_buckets=self.config.cache_buckets,
        )
        return engine_store, memo_store

    def _ensure_stores(self, cache_dir: Path) -> None:
        """Attach disk stores for *cache_dir* unless current ones match.

        The save path must not blindly re-open: entries staged on an
        attached store would be dropped, and a flush needs no fresh view
        of the disk state anyway.  A store is replaced only when it
        answers for a different location or a stale fingerprint.
        """
        engine_store = self.engine.results_store
        if (
            engine_store is None
            or Path(engine_store.path) != cache_dir / ENGINE_CACHE_STORE
            or engine_store.fingerprint != self.engine.cache_fingerprint()
        ):
            self.engine.attach_results_store(
                open_cache_store(
                    "disk",
                    cache_dir / ENGINE_CACHE_STORE,
                    kind="search-results",
                    fingerprint=self.engine.cache_fingerprint(),
                    n_buckets=self.config.cache_buckets,
                )
            )
        memo_store = self.cell_annotator.label_store
        if (
            memo_store is None
            or Path(memo_store.path) != cache_dir / LABEL_MEMO_STORE
            or memo_store.fingerprint != self.classifier.fingerprint()
        ):
            self.cell_annotator.attach_label_store(
                open_cache_store(
                    "disk",
                    cache_dir / LABEL_MEMO_STORE,
                    kind="label-memo",
                    fingerprint=self.classifier.fingerprint(),
                    n_buckets=self.config.cache_buckets,
                )
            )

    # -- diagnostics ------------------------------------------------------------------------

    @property
    def search_failures(self) -> int:
        """Cells skipped because the engine was unavailable (lifetime).

        Aggregates over every table this annotator ever touched; the
        per-run view -- aggregated across the tables of one corpus run
        rather than whatever the last table happened to see -- lives on
        :attr:`AnnotationRun.diagnostics`.
        """
        return self.cell_annotator.failure_count

    @property
    def cache_load_bytes(self) -> int:
        """Bytes read warm-starting this annotator's caches (lifetime).

        Whole pickled payloads under the legacy files; manifest, delta
        log and lazily touched buckets under shared disk stores.
        """
        return self.engine.cache_load_bytes + self.cell_annotator.cache_load_bytes

    def _counters(self) -> tuple:
        """Snapshot of the counters :class:`RunDiagnostics` deltas over."""
        cache = self.cell_annotator.cache
        cells = self.cell_annotator
        engine = self.engine
        clock = engine.clock
        return (
            cells.failure_count,
            cache.hits if cache is not None else 0,
            cache.misses if cache is not None else 0,
            engine.query_count,
            clock.n_charges,
            clock.elapsed_seconds,
            cells.retry_count,
            cells.breaker.opens,
            engine.cache_hits,
            engine.cache_misses,
            cells.memo_hits,
            cells.memo_misses,
            engine.cache_loads + cells.cache_loads,
            engine.cache_saves + cells.cache_saves,
            engine.cache_load_bytes + cells.cache_load_bytes,
            engine.cache_save_bytes + cells.cache_save_bytes,
            lock_wait_seconds(),
        )

    def _diagnostics_since(
        self,
        before: tuple,
        n_tables: int,
        n_cells: int,
        degraded_cells: int = 0,
        repaired_cells: int = 0,
    ) -> RunDiagnostics:
        after = self._counters()
        return RunDiagnostics(
            n_tables=n_tables,
            n_cells=n_cells,
            search_failures=after[0] - before[0],
            cache_hits=after[1] - before[1],
            cache_misses=after[2] - before[2],
            queries_issued=after[3] - before[3],
            clock_charges=after[4] - before[4],
            virtual_seconds=after[5] - before[5],
            search_retries=after[6] - before[6],
            breaker_opens=after[7] - before[7],
            degraded_cells=degraded_cells,
            repaired_cells=repaired_cells,
            results_cache_hits=after[8] - before[8],
            results_cache_misses=after[9] - before[9],
            label_memo_hits=after[10] - before[10],
            label_memo_misses=after[11] - before[11],
            cache_loads=after[12] - before[12],
            cache_saves=after[13] - before[13],
            cache_load_bytes=after[14] - before[14],
            cache_save_bytes=after[15] - before[15],
            cache_lock_wait_seconds=after[16] - before[16],
        )
