"""The end-to-end entity annotator (Section 5, Figure 5).

``EntityAnnotator`` wires the three stages together:

1. **Pre-processing** (:class:`~repro.core.preprocessing.Preprocessor`)
   keeps only cells that could plausibly name an entity;
2. **Annotation** (:class:`~repro.core.annotation.CellAnnotator`) resolves
   all candidate cells of a table in one batch -- queries augmented with a
   disambiguated city context when spatial disambiguation is enabled,
   deduplicated at the engine, snippets pooled into one classifier call --
   and applies the snippet-majority rule (Equation 1) per cell;
3. **Post-processing** (:mod:`~repro.core.postprocessing`) eliminates
   spurious annotations via the column-coherence score (Equation 2).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.classify.snippet import SnippetTypeClassifier
from repro.core.annotation import CellAnnotator, SnippetCache
from repro.core.config import AnnotatorConfig
from repro.core.disambiguation import SpatialContextExtractor
from repro.core.postprocessing import eliminate_spurious
from repro.core.preprocessing import Preprocessor
from repro.core.results import AnnotationRun, CellAnnotation, TableAnnotation
from repro.geo.geocoder import Geocoder
from repro.tables.model import Table
from repro.web.search import SearchEngine


class EntityAnnotator:
    """Discovers and annotates entities of given types in tables.

    Parameters
    ----------
    classifier:
        A fitted :class:`SnippetTypeClassifier` over (at least) the types
        that will be requested.
    engine:
        The web search engine to consult per cell.
    geocoder:
        Required only when ``config.use_spatial_disambiguation`` is on.
    cache:
        Optional shared :class:`SnippetCache`; harnesses evaluating several
        classifier backends over one corpus pass it to avoid re-searching.
    """

    def __init__(
        self,
        classifier: SnippetTypeClassifier,
        engine: SearchEngine,
        config: AnnotatorConfig | None = None,
        geocoder: Geocoder | None = None,
        cache: SnippetCache | None = None,
    ) -> None:
        self.config = config or AnnotatorConfig()
        if self.config.use_spatial_disambiguation and geocoder is None:
            raise ValueError(
                "spatial disambiguation requires a geocoder; pass one or "
                "disable use_spatial_disambiguation"
            )
        self.classifier = classifier
        self.engine = engine
        self.geocoder = geocoder
        self.preprocessor = Preprocessor(self.config)
        self.cell_annotator = CellAnnotator(
            classifier, engine, self.config, cache=cache
        )
        self._context_extractor = (
            SpatialContextExtractor(geocoder, self.config)
            if geocoder is not None
            else None
        )

    # -- single table -------------------------------------------------------------------

    def annotate_table(
        self, table: Table, type_keys: Sequence[str]
    ) -> TableAnnotation:
        """Annotate one table for the requested types (all three stages).

        Runs table-at-a-time: spatial contexts are computed up front (as
        before), then every candidate cell is resolved through the batched
        :meth:`~repro.core.annotation.CellAnnotator.annotate_values` --
        deduplicated searches, pooled snippet classification -- producing
        exactly the decisions of the per-cell loop, faster.
        """
        type_keys = list(type_keys)
        if not type_keys:
            raise ValueError("type_keys must be non-empty")
        candidates = self.preprocessor.candidate_cells(table)
        contexts = self._row_contexts(table)
        decisions = self.cell_annotator.annotate_values(
            [(c.value, contexts.get(c.row)) for c in candidates], type_keys
        )
        return self._collect(table, candidates, decisions)

    def _annotate_table_per_cell(
        self, table: Table, type_keys: Sequence[str]
    ) -> TableAnnotation:
        """The seed cell-by-cell path: one search + one classification per
        cell.  Retained (private) as the parity and throughput baseline the
        batched path is regression-tested against."""
        type_keys = list(type_keys)
        if not type_keys:
            raise ValueError("type_keys must be non-empty")
        candidates = self.preprocessor.candidate_cells(table)
        contexts = self._row_contexts(table)
        decisions = [
            self.cell_annotator.annotate_value(
                candidate.value,
                type_keys,
                spatial_context=contexts.get(candidate.row),
            )
            for candidate in candidates
        ]
        return self._collect(table, candidates, decisions)

    def _row_contexts(self, table: Table) -> dict[int, str]:
        """Disambiguated per-row city contexts (empty when disabled)."""
        if self.config.use_spatial_disambiguation and self._context_extractor:
            return self._context_extractor.row_contexts(table)
        return {}

    def _collect(self, table: Table, candidates, decisions) -> TableAnnotation:
        """Fold per-cell decisions into a (post-processed) TableAnnotation."""
        annotation = TableAnnotation(table_name=table.name)
        for candidate, decision in zip(candidates, decisions):
            if decision.annotated:
                annotation.add(
                    CellAnnotation(
                        table_name=table.name,
                        row=candidate.row,
                        column=candidate.column,
                        type_key=decision.type_key,  # type: ignore[arg-type]
                        score=decision.score,
                        cell_value=candidate.value,
                    )
                )
        if self.config.use_postprocessing:
            annotation = eliminate_spurious(
                table,
                annotation,
                use_repetition_factor=self.config.use_repetition_factor,
            )
        return annotation

    # -- corpora ---------------------------------------------------------------------------

    def annotate_tables(
        self, tables: Iterable[Table], type_keys: Sequence[str]
    ) -> AnnotationRun:
        """Annotate every table, returning a corpus-level run."""
        run = AnnotationRun()
        for table in tables:
            table_annotation = self.annotate_table(table, type_keys)
            run.tables[table.name] = table_annotation
        return run

    # -- diagnostics ------------------------------------------------------------------------

    @property
    def search_failures(self) -> int:
        """Number of cells skipped because the engine was unavailable."""
        return self.cell_annotator.failure_count
