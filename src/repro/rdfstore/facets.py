"""Faceted browsing over the POI repository.

The paper's demo application is "a faceted browser over a repository of RDF
data on points of interest of cities".  A facet is one of the record
dimensions (type, city, source table); the browser counts values per facet
and intersects selections, which is all a faceted UI needs from its
backend.
"""

from __future__ import annotations

from collections import Counter

from repro.rdfstore.store import PoiRecord, PoiStore

_FACETS = ("type", "city", "source")


def _facet_value(record: PoiRecord, facet: str) -> str | None:
    if facet == "type":
        return record.poi_type
    if facet == "city":
        return record.city
    if facet == "source":
        return record.source_table
    raise ValueError(f"unknown facet {facet!r}; expected one of {_FACETS}")


class FacetedBrowser:
    """Counts and filters POIs along the type / city / source facets."""

    def __init__(self, store: PoiStore) -> None:
        self.store = store

    def facet_counts(self, facet: str, **filters: str) -> dict[str, int]:
        """Value -> count for *facet*, restricted by active *filters*.

        >>> # browser.facet_counts("type", city="Lyon")
        """
        counts: Counter[str] = Counter()
        for record in self.select(**filters):
            value = _facet_value(record, facet)
            if value is not None:
                counts[value] += 1
        return dict(counts)

    def select(self, **filters: str) -> list[PoiRecord]:
        """Records matching every active facet filter."""
        for facet in filters:
            if facet not in _FACETS:
                raise ValueError(
                    f"unknown facet {facet!r}; expected one of {_FACETS}"
                )
        results = []
        for record in self.store.records():
            if all(
                _facet_value(record, facet) == value
                for facet, value in filters.items()
            ):
                results.append(record)
        return results

    def summary(self) -> str:
        """Human-readable snapshot of the repository (for the demo)."""
        lines = [f"POI repository: {len(self.store)} entries"]
        for facet in ("type", "city"):
            counts = self.facet_counts(facet)
            top = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
            rendered = ", ".join(f"{value} ({count})" for value, count in top[:8])
            lines.append(f"  by {facet}: {rendered}")
        return "\n".join(lines)
