"""Annotated table -> POI record extraction.

The last step of the paper's application pipeline: once the annotator has
marked which cells name entities of which types, each annotated row is
folded into a :class:`~repro.rdfstore.store.PoiRecord`.  Companion columns
are harvested with the same syntactic detectors pre-processing uses --
phones, websites and spatial values are recognisable by shape.
"""

from __future__ import annotations

from repro.core.preprocessing import looks_like_phone, looks_like_url
from repro.core.results import TableAnnotation
from repro.rdfstore.store import PoiRecord
from repro.tables.model import ColumnType, Table


def _row_extras(table: Table, row: int, skip_column: int) -> dict[str, str]:
    """Phone / website / spatial companions of an annotated cell's row."""
    extras: dict[str, str] = {}
    for j in range(table.n_columns):
        if j == skip_column:
            continue
        value = table.cell(row, j).strip()
        if not value:
            continue
        if "phone" not in extras and looks_like_phone(value):
            extras["phone"] = value
        elif "website" not in extras and looks_like_url(value):
            extras["website"] = value
        elif table.column_type(j) is ColumnType.LOCATION:
            # First spatial column wins; a trailing city component, when
            # present ("12 Main Street, Austin"), doubles as the city.
            if "address" not in extras:
                extras["address"] = value
                if "," in value:
                    extras["city"] = value.rsplit(",", 1)[1].strip()
                elif not any(ch.isdigit() for ch in value):
                    extras["city"] = value
    return extras


def extract_pois(
    table: Table,
    annotation: TableAnnotation,
    type_keys: list[str] | None = None,
) -> list[PoiRecord]:
    """Fold annotated rows of *table* into POI records.

    One record per annotated cell (restricted to *type_keys* when given),
    enriched with whatever companion data the row carries.
    """
    records = []
    for cell in annotation.cells:
        if type_keys is not None and cell.type_key not in type_keys:
            continue
        extras = _row_extras(table, cell.row, cell.column)
        records.append(
            PoiRecord(
                name=table.cell(cell.row, cell.column),
                poi_type=cell.type_key,
                city=extras.get("city"),
                address=extras.get("address"),
                phone=extras.get("phone"),
                website=extras.get("website"),
                source_table=table.name,
                score=cell.score,
            )
        )
    return records
