"""The motivating application (Section 1): a POI repository with facets.

The paper's algorithm was built to populate "a RDF repository of points of
interest (POIs), such as restaurants and museums, of cities around the
world" extracted from Google Fusion Tables, browsed through a faceted
interface.  This package closes that loop:

* :mod:`repro.rdfstore.store` -- the POI triple repository;
* :mod:`repro.rdfstore.extract` -- annotated table -> RDF extraction;
* :mod:`repro.rdfstore.facets` -- the faceted browser over the repository.
"""

from repro.rdfstore.extract import extract_pois
from repro.rdfstore.facets import FacetedBrowser
from repro.rdfstore.store import PoiRecord, PoiStore

__all__ = [
    "FacetedBrowser",
    "PoiRecord",
    "PoiStore",
    "extract_pois",
]
