"""The POI RDF repository.

Each point of interest becomes a subject URI with DataBridges-flavoured
predicates (``poi:name``, ``poi:type``, ``poi:city``, ``poi:address``,
``poi:phone``, ``poi:website``, ``poi:source``).  The store wraps a
:class:`~repro.kb.triples.TripleStore`, so the mini-SPARQL engine works on
it directly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.kb.triples import TripleStore

POI_NAME = "poi:name"
POI_TYPE = "poi:type"
POI_CITY = "poi:city"
POI_ADDRESS = "poi:address"
POI_PHONE = "poi:phone"
POI_WEBSITE = "poi:website"
POI_SOURCE = "poi:source"
POI_SCORE = "poi:annotationScore"


@dataclass(frozen=True)
class PoiRecord:
    """One extracted point of interest, ready for insertion."""

    name: str
    poi_type: str
    city: str | None = None
    address: str | None = None
    phone: str | None = None
    website: str | None = None
    source_table: str | None = None
    score: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a POI needs a name")
        if not self.poi_type:
            raise ValueError("a POI needs a type")


class PoiStore:
    """Triple-backed repository of points of interest."""

    def __init__(self) -> None:
        self.triples = TripleStore()
        self._uris: dict[str, PoiRecord] = {}
        self._counter = itertools.count(1)

    # -- insertion -----------------------------------------------------------------

    def add(self, record: PoiRecord) -> str:
        """Insert *record*; returns its minted subject URI."""
        uri = f"poi:{next(self._counter):05d}"
        self._uris[uri] = record
        self.triples.add(uri, POI_NAME, record.name)
        self.triples.add(uri, POI_TYPE, record.poi_type)
        optional = (
            (POI_CITY, record.city),
            (POI_ADDRESS, record.address),
            (POI_PHONE, record.phone),
            (POI_WEBSITE, record.website),
            (POI_SOURCE, record.source_table),
        )
        for predicate, value in optional:
            if value:
                self.triples.add(uri, predicate, value)
        self.triples.add(uri, POI_SCORE, f"{record.score:.2f}")
        return uri

    def add_all(self, records) -> list[str]:
        """Insert many records, returning their URIs in order."""
        return [self.add(record) for record in records]

    # -- retrieval -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._uris)

    def get(self, uri: str) -> PoiRecord:
        """Record behind a URI; ``KeyError`` when unknown."""
        if uri not in self._uris:
            raise KeyError(f"unknown POI uri: {uri!r}")
        return self._uris[uri]

    def uris(self) -> list[str]:
        """All subject URIs, sorted."""
        return sorted(self._uris)

    def records(self) -> list[PoiRecord]:
        """All records, in URI order."""
        return [self._uris[uri] for uri in self.uris()]

    def of_type(self, poi_type: str) -> list[str]:
        """URIs of the POIs with the given type."""
        return self.triples.subjects(POI_TYPE, poi_type)

    def in_city(self, city: str) -> list[str]:
        """URIs of the POIs in the given city."""
        return self.triples.subjects(POI_CITY, city)
