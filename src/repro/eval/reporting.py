"""Plain-text rendering of experiment results.

Every experiment renders through :func:`format_table`, so benchmark output
lines up with the paper's tables for eyeball comparison.
"""

from __future__ import annotations

from typing import Sequence


def format_cell(value: object) -> str:
    """Human form of one cell: floats to two decimals, None to a dash."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width text table with a header rule.

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  ----
    1  2.50
    """
    text_rows = [[format_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)
