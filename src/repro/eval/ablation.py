"""Ablation studies over the design choices DESIGN.md calls out.

* **A1 -- the 1/o repetition factor of Equation 2** (Section 5.3): without
  it, a repeated high-scoring label column ("Museum" in every row of
  Figure 8) can outscore the entity-name column and post-processing keeps
  the wrong column wholesale.
* **A2 -- top-k and the majority threshold** (Section 5.2): fewer snippets
  make the majority rule noisier; a lower threshold trades precision for
  recall, a higher one the reverse.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.annotation import SnippetCache
from repro.core.annotator import EntityAnnotator
from repro.core.config import AnnotatorConfig
from repro.core.postprocessing import eliminate_spurious
from repro.core.results import AnnotationRun
from repro.eval.evaluator import evaluate_annotations
from repro.eval.experiments import ALL_TYPE_KEYS, ExperimentContext
from repro.eval.reporting import format_table


@dataclass
class RepetitionAblationResult:
    """Per-type F with and without the 1/o factor (experiment A1)."""

    with_factor: dict[str, float]
    without_factor: dict[str, float]

    def render(self) -> str:
        rows = [
            [type_key, self.with_factor[type_key], self.without_factor[type_key]]
            for type_key in sorted(self.with_factor)
        ]
        return format_table(
            ["Type", "F (with 1/o)", "F (without 1/o)"],
            rows,
            title="Ablation A1: Equation 2's repetition factor",
        )

    def mean_gain(self) -> float:
        """Average F improvement the factor provides."""
        keys = sorted(self.with_factor)
        return sum(
            self.with_factor[k] - self.without_factor[k] for k in keys
        ) / len(keys)


def run_repetition_ablation(context: ExperimentContext) -> RepetitionAblationResult:
    """Post-process the raw SVM run with and without the 1/o damping."""
    raw = context.annotation_run(backend="svm", postprocess=False)
    with_factor = AnnotationRun()
    without_factor = AnnotationRun()
    for table in context.gft.tables:
        annotation = raw.table(table.name)
        with_factor.tables[table.name] = eliminate_spurious(
            table, annotation, use_repetition_factor=True
        )
        without_factor.tables[table.name] = eliminate_spurious(
            table, annotation, use_repetition_factor=False
        )
    gold = context.gft.gold
    eval_with = evaluate_annotations(with_factor, gold, ALL_TYPE_KEYS)
    eval_without = evaluate_annotations(without_factor, gold, ALL_TYPE_KEYS)
    return RepetitionAblationResult(
        with_factor={k: eval_with.f1_of(k) for k in ALL_TYPE_KEYS},
        without_factor={k: eval_without.f1_of(k) for k in ALL_TYPE_KEYS},
    )


@dataclass
class TopKAblationResult:
    """Micro-F across (top_k, majority_fraction) settings (experiment A2)."""

    scores: dict[tuple[int, float], float]
    table_names: list[str]

    def render(self) -> str:
        rows = [
            [k, fraction, score]
            for (k, fraction), score in sorted(self.scores.items())
        ]
        return format_table(
            ["top-k", "majority fraction", "micro F"],
            rows,
            title=(
                "Ablation A2: snippet count and majority threshold "
                f"(over {len(self.table_names)} tables)"
            ),
        )

    def f_of(self, top_k: int, majority_fraction: float) -> float:
        return self.scores[(top_k, majority_fraction)]


def run_topk_ablation(
    context: ExperimentContext,
    top_ks: tuple[int, ...] = (3, 10),
    fractions: tuple[float, ...] = (0.3, 0.5, 0.7),
    table_prefixes: tuple[str, ...] = ("gft-museum", "gft-restaurant"),
) -> TopKAblationResult:
    """Sweep the annotation parameters over a subset of the GFT corpus.

    The subset keeps the sweep affordable; snippet lists are shared through
    the context cache, so fraction sweeps at a fixed k reuse all searches.
    """
    tables = [
        table
        for table in context.gft.tables
        if table.name.startswith(table_prefixes)
    ]
    scores: dict[tuple[int, float], float] = {}
    for top_k in top_ks:
        for fraction in fractions:
            config = AnnotatorConfig(top_k=top_k, majority_fraction=fraction)
            annotator = EntityAnnotator(
                context.classifiers["svm"],
                context.world.search_engine,
                config,
                cache=context.cache,
            )
            run = annotator.annotate_tables(tables, ALL_TYPE_KEYS)
            table_names = {table.name for table in tables}
            cells = [
                cell
                for cell in run.all_cells()
                if cell.table_name in table_names
            ]
            gold_subset = _gold_subset(context, table_names)
            evaluation = evaluate_annotations(cells, gold_subset, ALL_TYPE_KEYS)
            scores[(top_k, fraction)] = evaluation.micro_f1()
    return TopKAblationResult(
        scores=scores, table_names=sorted(t.name for t in tables)
    )


def _gold_subset(context: ExperimentContext, table_names: set[str]):
    from repro.eval.gold import GoldStandard

    subset = GoldStandard()
    for reference in context.gft.gold.references:
        if reference.table_name in table_names:
            subset.add(reference)
    return subset
