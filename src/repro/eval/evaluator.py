"""Scoring annotation runs against a gold standard (Section 6.2).

For every type ``t``::

    P = |C_t| / |A_t|    R = |C_t| / |T_t|    F = 2PR / (P + R)

``A_t``: cells the method annotated with ``t``; ``C_t``: those whose cell is
a gold reference of type ``t``; ``T_t``: all gold references of type ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.classify.metrics import f_measure, precision_recall_f1
from repro.core.results import AnnotationRun, CellAnnotation
from repro.eval.gold import GoldStandard


@dataclass(frozen=True)
class TypeScores:
    """P/R/F plus the raw counts behind them, for one type."""

    precision: float
    recall: float
    f1: float
    n_correct: int
    n_predicted: int
    n_gold: int


@dataclass
class EvaluationResult:
    """Per-type scores of one annotation run."""

    per_type: dict[str, TypeScores] = field(default_factory=dict)

    def f1_of(self, type_key: str) -> float:
        scores = self.per_type.get(type_key)
        return scores.f1 if scores else 0.0

    def average(self, type_keys: Sequence[str] | None = None) -> tuple[float, float, float]:
        """Macro-averaged (P, R, F) over *type_keys* (default: all types).

        This is the AVERAGE row of Table 1, computed per category group.
        """
        keys = list(type_keys) if type_keys is not None else sorted(self.per_type)
        if not keys:
            return 0.0, 0.0, 0.0
        p = sum(self.per_type[k].precision for k in keys if k in self.per_type)
        r = sum(self.per_type[k].recall for k in keys if k in self.per_type)
        f = sum(self.per_type[k].f1 for k in keys if k in self.per_type)
        n = len(keys)
        return p / n, r / n, f / n

    def micro_f1(self) -> float:
        """Pooled F over all types (the single-number Section 6.3 summary)."""
        n_correct = sum(s.n_correct for s in self.per_type.values())
        n_predicted = sum(s.n_predicted for s in self.per_type.values())
        n_gold = sum(s.n_gold for s in self.per_type.values())
        precision = n_correct / n_predicted if n_predicted else 0.0
        recall = n_correct / n_gold if n_gold else 0.0
        return f_measure(precision, recall)


def evaluate_annotations(
    annotations: AnnotationRun | Iterable[CellAnnotation],
    gold: GoldStandard,
    type_keys: Sequence[str] | None = None,
) -> EvaluationResult:
    """Score *annotations* against *gold* for each type in *type_keys*.

    When *type_keys* is ``None``, the gold standard's own types are used.
    """
    if isinstance(annotations, AnnotationRun):
        cells = list(annotations.all_cells())
    else:
        cells = list(annotations)
    keys = list(type_keys) if type_keys is not None else gold.type_keys()
    result = EvaluationResult()
    for type_key in keys:
        predicted = [cell for cell in cells if cell.type_key == type_key]
        n_correct = 0
        for cell in predicted:
            reference = gold.lookup(cell.table_name, cell.row, cell.column)
            if reference is not None and reference.type_key == type_key:
                n_correct += 1
        n_gold = gold.total_of_type(type_key)
        p, r, f = precision_recall_f1(n_correct, len(predicted), n_gold)
        result.per_type[type_key] = TypeScores(
            precision=p,
            recall=r,
            f1=f,
            n_correct=n_correct,
            n_predicted=len(predicted),
            n_gold=n_gold,
        )
    return result
