"""Experiments for the implemented future-work extensions.

* **E-HYB** -- the Section 6.4 hybrid proposal: catalogue for known
  entities, web search only for unknown ones.  Measured: annotation
  quality parity with the pure-web algorithm and the fraction of search
  queries saved (expected ≈ the catalogue's 22 % coverage).
* **E-CLU** -- the Section 5.2 clustering proposal: cluster the top-k
  snippets and classify per cluster, recovering ambiguous names whose
  result lists split between senses and defeat the plain majority rule.
* **E-GIU** -- the Giuliano-style similarity alternative that Section
  5.2.1 argues against: nearest-centroid snippet similarity instead of a
  trained classifier.  The paper's critique -- text *about* entities looks
  similar to the entities themselves, costing precision -- becomes a
  measured comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.giuliano import GiulianoAnnotator
from repro.core.annotation import CellAnnotator
from repro.core.clustering import ClusteredCellAnnotator
from repro.core.config import AnnotatorConfig
from repro.core.hybrid import HybridAnnotator
from repro.eval.evaluator import evaluate_annotations
from repro.eval.experiments import ALL_TYPE_KEYS, ExperimentContext
from repro.eval.reporting import format_table


@dataclass
class HybridResult:
    """Parity and savings of the hybrid annotator (experiment E-HYB)."""

    pure_micro_f: float
    hybrid_micro_f: float
    query_savings: float
    catalogue_hits: int
    web_queries: int

    def render(self) -> str:
        rows = [
            ["pure web algorithm", self.pure_micro_f, None],
            ["hybrid (catalogue + web)", self.hybrid_micro_f,
             f"{self.query_savings:.0%} queries saved"],
        ]
        table = format_table(
            ["Method", "micro F", "cost"],
            rows,
            title="Extension: hybrid catalogue + web annotation (§6.4 future work)",
        )
        return (
            f"{table}\n(catalogue hits: {self.catalogue_hits},"
            f" web queries: {self.web_queries})"
        )


def run_hybrid(context: ExperimentContext) -> HybridResult:
    """Compare the hybrid annotator against the pure-web run on GFT."""
    pure = evaluate_annotations(
        context.annotation_run(backend="svm", postprocess=True),
        context.gft.gold,
        ALL_TYPE_KEYS,
    )
    annotator = HybridAnnotator(
        context.classifiers["svm"],
        context.world.search_engine,
        context.world.catalogue,
        AnnotatorConfig(),
        cache=context.cache,
    )
    run = annotator.annotate_tables(context.gft.tables, ALL_TYPE_KEYS)
    hybrid = evaluate_annotations(run, context.gft.gold, ALL_TYPE_KEYS)
    return HybridResult(
        pure_micro_f=pure.micro_f1(),
        hybrid_micro_f=hybrid.micro_f1(),
        query_savings=annotator.stats.query_savings,
        catalogue_hits=annotator.stats.catalogue_hits,
        web_queries=annotator.stats.web_queries,
    )


@dataclass
class ClusteringResult:
    """Recovery of ambiguous names via snippet clustering (experiment E-CLU)."""

    n_ambiguous: int
    plain_recovered: int
    clustered_recovered: int

    def render(self) -> str:
        rows = [
            ["plain majority (Eq. 1)", self.plain_recovered],
            ["cluster-then-classify", self.clustered_recovered],
        ]
        table = format_table(
            ["Annotator", f"recovered of {self.n_ambiguous} ambiguous names"],
            rows,
            title="Extension: snippet clustering (§5.2 future work)",
        )
        return table

    @property
    def plain_rate(self) -> float:
        return self.plain_recovered / self.n_ambiguous if self.n_ambiguous else 0.0

    @property
    def clustered_rate(self) -> float:
        return (
            self.clustered_recovered / self.n_ambiguous if self.n_ambiguous else 0.0
        )


def run_clustering(
    context: ExperimentContext,
    type_keys: tuple[str, ...] = ("singer", "scientist", "actor"),
    max_entities: int = 60,
) -> ClusteringResult:
    """Annotate ambiguous people names with and without clustering.

    Only entities with a planted alternate sense are considered: these are
    exactly the names whose top-k lists mix senses.  "Recovered" means the
    annotator assigned the entity's true type.
    """
    classifier = context.classifiers["svm"]
    engine = context.world.search_engine
    plain = CellAnnotator(classifier, engine, AnnotatorConfig(), cache=context.cache)
    clustered = ClusteredCellAnnotator(classifier, engine, AnnotatorConfig())
    ambiguous = [
        entity
        for type_key in type_keys
        for entity in context.world.table_entities(type_key)
        if entity.alternate_sense is not None
    ][:max_entities]
    plain_recovered = 0
    clustered_recovered = 0
    for entity in ambiguous:
        if (
            plain.annotate_value(entity.table_name, list(ALL_TYPE_KEYS)).type_key
            == entity.type_key
        ):
            plain_recovered += 1
        if (
            clustered.annotate_value(
                entity.table_name, list(ALL_TYPE_KEYS)
            ).type_key
            == entity.type_key
        ):
            clustered_recovered += 1
    return ClusteringResult(
        n_ambiguous=len(ambiguous),
        plain_recovered=plain_recovered,
        clustered_recovered=clustered_recovered,
    )


@dataclass
class GiulianoResult:
    """Classifier-based versus similarity-based annotation (experiment E-GIU)."""

    classifier_precision: float
    classifier_recall: float
    classifier_f: float
    similarity_precision: float
    similarity_recall: float
    similarity_f: float

    def render(self) -> str:
        rows = [
            ["text classifier (the paper)", self.classifier_precision,
             self.classifier_recall, self.classifier_f],
            ["snippet similarity (Giuliano-style)", self.similarity_precision,
             self.similarity_recall, self.similarity_f],
        ]
        table = format_table(
            ["Method", "macro P", "macro R", "macro F"],
            rows,
            title="Extension: classifier vs similarity snippets (§5.2.1 critique)",
        )
        return table


def run_giuliano(context: ExperimentContext) -> GiulianoResult:
    """Measure the paper's argument for classifying over similarity."""
    classifier_eval = evaluate_annotations(
        context.annotation_run(backend="svm", postprocess=True),
        context.gft.gold,
        ALL_TYPE_KEYS,
    )
    annotator = GiulianoAnnotator(
        context.world.search_engine, AnnotatorConfig(), cache=context.cache
    )
    annotator.fit(context.train_set)
    raw = annotator.annotate_tables(context.gft.tables, ALL_TYPE_KEYS)
    # Same post-processing as the main pipeline, for a fair comparison.
    from repro.core.postprocessing import eliminate_spurious
    from repro.core.results import AnnotationRun

    processed = AnnotationRun()
    for table in context.gft.tables:
        processed.tables[table.name] = eliminate_spurious(
            table, raw.table(table.name)
        )
    similarity_eval = evaluate_annotations(
        processed, context.gft.gold, ALL_TYPE_KEYS
    )
    cp, cr, cf = classifier_eval.average(ALL_TYPE_KEYS)
    sp, sr, sf = similarity_eval.average(ALL_TYPE_KEYS)
    return GiulianoResult(
        classifier_precision=cp, classifier_recall=cr, classifier_f=cf,
        similarity_precision=sp, similarity_recall=sr, similarity_f=sf,
    )
