"""Gold-standard annotations for table corpora.

The paper: "Each table was manually annotated by one person, so as to have
a gold standard against which we compared our algorithm."  Our tables are
generated, so the gold standard is recorded at generation time: one
:class:`GoldEntityReference` per cell that contains an entity name, carrying
the entity's true type.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GoldEntityReference:
    """One gold cell: table, position, true type and the cell text."""

    table_name: str
    row: int
    column: int
    type_key: str
    cell_value: str


@dataclass
class GoldStandard:
    """All gold references of a corpus, with the lookups evaluation needs."""

    references: list[GoldEntityReference] = field(default_factory=list)
    _by_cell: dict[tuple[str, int, int], GoldEntityReference] = field(
        default_factory=dict, repr=False
    )

    def add(self, reference: GoldEntityReference) -> None:
        """Record one reference; duplicate cells are rejected."""
        key = (reference.table_name, reference.row, reference.column)
        if key in self._by_cell:
            raise ValueError(f"duplicate gold reference for cell {key}")
        self.references.append(reference)
        self._by_cell[key] = reference

    def lookup(
        self, table_name: str, row: int, column: int
    ) -> GoldEntityReference | None:
        """The gold reference at a cell, or ``None``."""
        return self._by_cell.get((table_name, row, column))

    def total_of_type(self, type_key: str) -> int:
        """|T_t| -- the number of gold entities of *type_key*."""
        return sum(1 for ref in self.references if ref.type_key == type_key)

    def of_table(self, table_name: str) -> list[GoldEntityReference]:
        """All gold references in one table, in insertion order."""
        return [ref for ref in self.references if ref.table_name == table_name]

    def type_keys(self) -> list[str]:
        """Distinct gold types, sorted."""
        return sorted({ref.type_key for ref in self.references})

    def __len__(self) -> int:
        return len(self.references)
