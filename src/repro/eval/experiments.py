"""The paper's experiments, one callable per table / figure.

Every ``run_*`` function takes an :class:`ExperimentContext` (built once per
world configuration and cached, since it holds the trained classifiers and
the annotated corpora) and returns a result object with a ``render()``
method producing a paper-style text table.

Experiment index (mirrors DESIGN.md):

========  ================================================================
T1        Table 1  -- P/R/F of SVM / Bayes / TIN / TIS on the 40 tables
T2        Table 2  -- corpus sizes + classifier F per type
T3        Table 3  -- F for SVM / +postproc / +postproc+disambig
C1        §6.3     -- Wiki Manual comparison against the Limaye baseline
E1        §6.4     -- seconds-per-row efficiency and scaling
F6        Fig. 6   -- category network excerpt + pruning heuristic
F7        Fig. 7   -- toponym disambiguation on the paper's own example
X1        §1       -- catalogue coverage of table entities (the 22 % claim)
========  ================================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.limaye import LimayeAnnotator
from repro.baselines.type_in_name import TypeInNameAnnotator
from repro.baselines.type_in_snippet import TypeInSnippetAnnotator
from repro.classify.snippet import SnippetTypeClassifier
from repro.clock import VirtualClock
from repro.core.annotation import SnippetCache
from repro.core.annotator import EntityAnnotator
from repro.core.config import CACHE_BACKENDS, INDEX_BACKENDS, AnnotatorConfig
from repro.core.parallel import annotate_tables_parallel
from repro.core.postprocessing import eliminate_spurious
from repro.core.results import AnnotationRun, RunDiagnostics
from repro.core.training import CorpusStats, TrainingCorpusBuilder
from repro.eval.evaluator import EvaluationResult, evaluate_annotations
from repro.eval.reporting import format_table
from repro.synth.table_corpus import TableCorpus, build_gft_corpus, build_wiki_manual
from repro.synth.types import CATEGORIES, TYPE_SPECS, TypeSpec, types_in_category
from repro.synth.world import SyntheticWorld, WorldConfig
from repro.tables.model import Column, ColumnType, Table
from repro.web.backends import (
    FrozenMmapIndex,
    build_index_artifact,
    ensure_index_artifact,
)
from repro.web.index import InvertedIndex
from repro.web.search import SearchEngine

ALL_TYPE_KEYS = [spec.key for spec in TYPE_SPECS]

_CATEGORY_TITLES = {"poi": "Points of interest", "people": "People", "cinema": "Cinema"}


# ======================================================================== context


@dataclass
class ExperimentContext:
    """Everything the experiments share for one world configuration."""

    world: SyntheticWorld
    gft: TableCorpus
    wiki: TableCorpus
    train_set: object
    test_set: object
    corpus_stats: CorpusStats
    classifiers: dict[str, SnippetTypeClassifier]
    cache: SnippetCache = field(default_factory=SnippetCache)
    _runs: dict[str, AnnotationRun] = field(default_factory=dict, repr=False)

    # -- annotation runs (lazy, memoised) ---------------------------------------------

    def annotation_run(
        self,
        backend: str = "svm",
        postprocess: bool = True,
        disambiguate: bool = False,
        corpus: str = "gft",
    ) -> AnnotationRun:
        """Annotate a corpus under a setting, reusing memoised raw runs.

        Post-processing is a pure function of the raw run, so the raw
        (unpostprocessed) annotation is computed once per (backend,
        disambiguate, corpus) and Equation 2 is applied on demand.
        """
        raw_key = f"{backend}|disambig={disambiguate}|{corpus}"
        if raw_key not in self._runs:
            config = AnnotatorConfig(
                use_postprocessing=False,
                use_spatial_disambiguation=disambiguate,
            )
            annotator = EntityAnnotator(
                self.classifiers[backend],
                self.world.search_engine,
                config,
                geocoder=self.world.geocoder if disambiguate else None,
                cache=self.cache,
            )
            tables = self._corpus(corpus).tables
            self._runs[raw_key] = annotator.annotate_tables(tables, ALL_TYPE_KEYS)
        raw = self._runs[raw_key]
        if not postprocess:
            return raw
        post_key = f"{raw_key}|post"
        if post_key not in self._runs:
            run = AnnotationRun()
            corpus_obj = self._corpus(corpus)
            for table in corpus_obj.tables:
                run.tables[table.name] = eliminate_spurious(
                    table, raw.table(table.name)
                )
            self._runs[post_key] = run
        return self._runs[post_key]

    def _corpus(self, corpus: str) -> TableCorpus:
        if corpus == "gft":
            return self.gft
        if corpus == "wiki":
            return self.wiki
        raise ValueError(f"unknown corpus {corpus!r}")


_CONTEXT_CACHE: dict[WorldConfig, ExperimentContext] = {}


def build_context(config: WorldConfig | None = None) -> ExperimentContext:
    """Build (or fetch) the shared experiment context for *config*."""
    config = config or WorldConfig()
    if config in _CONTEXT_CACHE:
        return _CONTEXT_CACHE[config]
    world = SyntheticWorld.build(config)
    gft = build_gft_corpus(world)
    wiki = build_wiki_manual(world)
    builder = TrainingCorpusBuilder(
        world.kb, world.search_engine, seed=config.seed
    )
    train, test, stats = builder.build_split(list(TYPE_SPECS))
    classifiers = {
        "svm": SnippetTypeClassifier(backend="svm").fit(train),
        "bayes": SnippetTypeClassifier(backend="bayes").fit(train),
    }
    context = ExperimentContext(
        world=world,
        gft=gft,
        wiki=wiki,
        train_set=train,
        test_set=test,
        corpus_stats=stats,
        classifiers=classifiers,
    )
    _CONTEXT_CACHE[config] = context
    return context


def clear_context_cache() -> None:
    """Drop cached contexts (for tests that tamper with worlds)."""
    _CONTEXT_CACHE.clear()


# ======================================================================== Table 2


@dataclass
class Table2Result:
    """Corpus sizes and classifier F-measure per type (Table 2)."""

    rows: list[tuple[str, int, int, float, float]]  # display, |TR|, |TE|, bayes, svm

    def render(self) -> str:
        return format_table(
            ["Type", "|TR|", "|TE|", "Bayes", "SVM"],
            self.rows,
            title="Table 2: snippet classifier training/test evaluation",
        )

    def f_of(self, display: str, backend: str) -> float:
        for row in self.rows:
            if row[0] == display:
                return row[3] if backend == "bayes" else row[4]
        raise KeyError(display)


def run_table2(context: ExperimentContext) -> Table2Result:
    """Reproduce Table 2: per-type |TR| / |TE| and classifier F."""
    reports = {
        backend: classifier.evaluate(context.test_set)
        for backend, classifier in context.classifiers.items()
    }
    rows = []
    for spec in TYPE_SPECS:
        rows.append(
            (
                spec.display,
                context.corpus_stats.train_counts.get(spec.key, 0),
                context.corpus_stats.test_counts.get(spec.key, 0),
                reports["bayes"].f1_of(spec.key),
                reports["svm"].f1_of(spec.key),
            )
        )
    return Table2Result(rows=rows)


# ======================================================================== Table 1


@dataclass
class Table1Result:
    """P/R/F of the four methods across the twelve types (Table 1)."""

    methods: list[str]
    evaluations: dict[str, EvaluationResult]

    def render(self) -> str:
        headers = ["Type"]
        for method in self.methods:
            headers.extend([f"{method} P", f"{method} R", f"{method} F"])
        rows: list[list[object]] = []
        for category in CATEGORIES:
            specs = types_in_category(category)
            for spec in specs:
                row: list[object] = [spec.display]
                for method in self.methods:
                    scores = self.evaluations[method].per_type.get(spec.key)
                    if scores is None:
                        row.extend([None, None, None])
                    else:
                        row.extend([scores.precision, scores.recall, scores.f1])
                rows.append(row)
            average_row: list[object] = [f"AVERAGE ({_CATEGORY_TITLES[category]})"]
            keys = [spec.key for spec in specs]
            for method in self.methods:
                p, r, f = self.evaluations[method].average(keys)
                average_row.extend([p, r, f])
            rows.append(average_row)
        return format_table(headers, rows, title="Table 1: evaluation of the algorithm")

    def f_of(self, method: str, type_key: str) -> float:
        return self.evaluations[method].f1_of(type_key)


def run_table1(context: ExperimentContext) -> Table1Result:
    """Reproduce Table 1: SVM, Bayes, TIN and TIS on the 40-table corpus.

    Setting matches the paper: post-processing on, disambiguation off.
    """
    config = AnnotatorConfig()
    evaluations: dict[str, EvaluationResult] = {}
    for backend in ("svm", "bayes"):
        run = context.annotation_run(backend=backend, postprocess=True)
        evaluations[backend.upper()] = evaluate_annotations(
            run, context.gft.gold, ALL_TYPE_KEYS
        )
    tin = TypeInNameAnnotator(config)
    evaluations["TIN"] = evaluate_annotations(
        tin.annotate_tables(context.gft.tables, ALL_TYPE_KEYS),
        context.gft.gold,
        ALL_TYPE_KEYS,
    )
    tis = TypeInSnippetAnnotator(
        context.world.search_engine, config, cache=context.cache
    )
    evaluations["TIS"] = evaluate_annotations(
        tis.annotate_tables(context.gft.tables, ALL_TYPE_KEYS),
        context.gft.gold,
        ALL_TYPE_KEYS,
    )
    return Table1Result(methods=["SVM", "BAYES", "TIN", "TIS"], evaluations=evaluations)


# ======================================================================== Table 3


@dataclass
class Table3Result:
    """F-measure for the three pipeline settings (Table 3)."""

    rows: list[tuple[str, float, float, float | None]]

    def render(self) -> str:
        return format_table(
            ["Type", "SVM", "SVM+postproc", "SVM+postproc+disambig"],
            self.rows,
            title="Table 3: contribution of post-processing and disambiguation",
        )

    def f_of(self, display: str, setting: int) -> float | None:
        for row in self.rows:
            if row[0] == display:
                return row[setting]
        raise KeyError(display)


def run_table3(context: ExperimentContext) -> Table3Result:
    """Reproduce Table 3: SVM alone, +postprocessing, +disambiguation.

    Disambiguation is evaluated only on the spatial POI types (all POIs but
    Mines), exactly as in the paper -- other cells show a dash.
    """
    raw = evaluate_annotations(
        context.annotation_run(backend="svm", postprocess=False),
        context.gft.gold,
        ALL_TYPE_KEYS,
    )
    post = evaluate_annotations(
        context.annotation_run(backend="svm", postprocess=True),
        context.gft.gold,
        ALL_TYPE_KEYS,
    )
    disambig = evaluate_annotations(
        context.annotation_run(backend="svm", postprocess=True, disambiguate=True),
        context.gft.gold,
        ALL_TYPE_KEYS,
    )
    rows: list[tuple[str, float, float, float | None]] = []
    for spec in TYPE_SPECS:
        with_disambig = disambig.f1_of(spec.key) if spec.spatial else None
        rows.append(
            (spec.display, raw.f1_of(spec.key), post.f1_of(spec.key), with_disambig)
        )
    return Table3Result(rows=rows)


# ======================================================================== §6.3


@dataclass
class ComparisonResult:
    """Our algorithm versus the Limaye baseline on Wiki Manual (§6.3)."""

    ours_f: float
    limaye_f: float
    ours_eval: EvaluationResult
    limaye_eval: EvaluationResult
    catalogue_coverage: float

    def render(self) -> str:
        rows = [
            ["Ours (SVM + postproc)", self.ours_f],
            ["Limaye (catalogue-based)", self.limaye_f],
        ]
        table = format_table(
            ["Method", "F-measure"],
            rows,
            title="Section 6.3: comparison on the Wiki Manual corpus",
        )
        return (
            f"{table}\n"
            f"(catalogue covers {self.catalogue_coverage:.0%} of the corpus entities;"
            " the paper reports 0.84 vs 0.8382)"
        )


def run_comparison(context: ExperimentContext) -> ComparisonResult:
    """Reproduce the Section 6.3 comparison on the Wiki-Manual-style corpus."""
    ours_run = context.annotation_run(
        backend="svm", postprocess=True, corpus="wiki"
    )
    ours_eval = evaluate_annotations(ours_run, context.wiki.gold, ALL_TYPE_KEYS)
    limaye = LimayeAnnotator(context.world.catalogue)
    limaye_run = limaye.annotate_tables(context.wiki.tables, ALL_TYPE_KEYS)
    limaye_eval = evaluate_annotations(limaye_run, context.wiki.gold, ALL_TYPE_KEYS)
    names = [ref.cell_value for ref in context.wiki.gold.references]
    coverage = context.world.catalogue.coverage(names)
    return ComparisonResult(
        ours_f=ours_eval.micro_f1(),
        limaye_f=limaye_eval.micro_f1(),
        ours_eval=ours_eval,
        limaye_eval=limaye_eval,
        catalogue_coverage=coverage,
    )


# ======================================================================== §6.4


@dataclass
class EfficiencyResult:
    """Virtual seconds per row across table sizes (§6.4)."""

    rows: list[tuple[int, int, float, float]]  # rows, queries, virtual s, s/row
    with_disambiguation: list[tuple[int, int, float, float]]

    def render(self) -> str:
        base = format_table(
            ["Table rows", "Engine calls", "Virtual seconds", "Seconds/row"],
            self.rows,
            title="Section 6.4: per-row cost (annotation only)",
        )
        extra = format_table(
            ["Table rows", "Remote calls", "Virtual seconds", "Seconds/row"],
            self.with_disambiguation,
            title="Section 6.4: per-row cost (with spatial disambiguation)",
        )
        return f"{base}\n\n{extra}\n(the paper reports ~0.5 s per row)"

    def seconds_per_row(self, n_rows: int) -> float:
        for rows, _queries, _seconds, per_row in self.rows:
            if rows == n_rows:
                return per_row
        raise KeyError(n_rows)


def _efficiency_table(
    context: ExperimentContext, n_rows: int, start: int = 0
) -> Table:
    """A directory table with *n_rows* rows cycling over restaurant entities.

    *start* offsets the row numbering, producing a table with entirely new
    cell strings over the same entity directory -- the shape of "the next
    table arriving" in a stream, used by the throughput benchmark.
    """
    import random

    rng = random.Random(context.world.config.seed + n_rows + start)
    entities = context.world.table_entities("restaurant")
    table = Table(
        name=f"efficiency-{n_rows}-{start}" if start else f"efficiency-{n_rows}",
        columns=[
            Column("Name", ColumnType.TEXT),
            Column("Address", ColumnType.LOCATION),
            Column("Phone", ColumnType.TEXT),
        ],
    )
    from repro.synth.table_corpus import _address_cell, _phone

    for i in range(start, start + n_rows):
        entity = entities[i % len(entities)]
        table.append_row(
            [
                f"{entity.table_name} #{i}",
                _address_cell(rng, entity.city),
                _phone(rng),
            ]
        )
    return table


def run_efficiency(
    context: ExperimentContext, sizes: tuple[int, ...] = (10, 50, 100, 250, 500)
) -> EfficiencyResult:
    """Reproduce the Section 6.4 efficiency study on growing tables.

    Uses the world's virtual clock: every search / geocoding request
    charges its configured latency, so "seconds" are simulated network
    seconds, the quantity the paper says dominates the running time.
    """
    clock = context.world.clock
    plain: list[tuple[int, int, float, float]] = []
    disambig: list[tuple[int, int, float, float]] = []
    for use_disambiguation, bucket in ((False, plain), (True, disambig)):
        for n_rows in sizes:
            table = _efficiency_table(context, n_rows)
            config = AnnotatorConfig(
                use_spatial_disambiguation=use_disambiguation
            )
            annotator = EntityAnnotator(
                context.classifiers["svm"],
                context.world.search_engine,
                config,
                geocoder=context.world.geocoder,
            )
            start_elapsed = clock.elapsed_seconds
            start_charges = clock.n_charges
            annotator.annotate_table(table, ALL_TYPE_KEYS)
            seconds = clock.elapsed_seconds - start_elapsed
            calls = clock.n_charges - start_charges
            bucket.append((n_rows, calls, seconds, seconds / n_rows))
    return EfficiencyResult(rows=plain, with_disambiguation=disambig)


# ======================================================================== throughput


@dataclass
class ThroughputRow:
    """Wall-clock cost of annotating tables of one size, both paths.

    The batched engine is measured twice: *cold* (first table of the
    stream, the engine's compute caches freshly reset) and *steady*
    (subsequent tables over the same entity directory but entirely new
    cell strings -- the sustained-traffic regime the ROADMAP targets).
    The per-cell path has no compute caches, so one number describes it.
    """

    n_rows: int
    n_candidates: int
    batch_cold_seconds: float
    batch_steady_seconds: float
    per_cell_seconds: float
    identical: bool

    @property
    def batch_cells_per_second(self) -> float:
        if not self.batch_steady_seconds:
            return 0.0
        return self.n_candidates / self.batch_steady_seconds

    @property
    def per_cell_cells_per_second(self) -> float:
        if not self.per_cell_seconds:
            return 0.0
        return self.n_candidates / self.per_cell_seconds

    @property
    def cold_speedup(self) -> float:
        if not self.batch_cold_seconds:
            return 0.0
        return self.per_cell_seconds / self.batch_cold_seconds

    @property
    def steady_speedup(self) -> float:
        if not self.batch_steady_seconds:
            return 0.0
        return self.per_cell_seconds / self.batch_steady_seconds


@dataclass
class ThroughputResult:
    """Real wall-clock throughput: batched path versus the per-cell path.

    Unlike :class:`EfficiencyResult` (virtual network seconds, the paper's
    Section 6.4 quantity), this measures *actual* compute time of the
    in-process pipeline -- the number future perf PRs have to beat.
    """

    rows: list[ThroughputRow]
    tables_per_size: int
    corpus: "CorpusThroughput | None" = None
    parallel: "ParallelThroughput | None" = None
    skewed: "SkewedThroughput | None" = None
    service: "ServiceThroughput | None" = None
    flaky: "FlakyThroughput | None" = None
    mmap: "MmapBackendThroughput | None" = None
    disk_cache: "DiskCacheThroughput | None" = None

    def render(self) -> str:
        table = format_table(
            [
                "Table rows",
                "Cells",
                "Batch cold s",
                "Batch steady s",
                "Per-cell s",
                "Batch cells/s",
                "Per-cell cells/s",
                "Cold x",
                "Steady x",
                "Identical",
            ],
            [
                (
                    row.n_rows,
                    row.n_candidates,
                    row.batch_cold_seconds,
                    row.batch_steady_seconds,
                    row.per_cell_seconds,
                    row.batch_cells_per_second,
                    row.per_cell_cells_per_second,
                    row.cold_speedup,
                    row.steady_speedup,
                    row.identical,
                )
                for row in self.rows
            ],
            title="Throughput: batched annotation engine vs per-cell path (wall clock)",
        )
        text = (
            f"{table}\n(steady = per-table cost over a stream of "
            f"{self.tables_per_size} fresh same-shape tables after the cold "
            "first table; identical = both paths agree on every annotation)"
        )
        if self.corpus is not None:
            corpus = self.corpus
            corpus_table = format_table(
                [
                    "Tables",
                    "Rows",
                    "Cells",
                    "Cold s",
                    "Per-table warm s",
                    "Corpus warm s",
                    "Corpus x",
                    "Warm x",
                    "Identical",
                ],
                [
                    (
                        corpus.n_tables,
                        corpus.n_rows,
                        corpus.n_cells,
                        corpus.cold_seconds,
                        corpus.per_table_seconds,
                        corpus.corpus_seconds,
                        corpus.corpus_speedup,
                        corpus.warm_speedup,
                        corpus.identical,
                    )
                ],
                title="Corpus-at-a-time annotate_tables vs per-table batching",
            )
            text += (
                f"\n\n{corpus_table}\n(same-directory corpus; warm runs load "
                "the cold run's persisted caches; corpus path issued "
                f"{corpus.corpus_queries_issued} engine queries vs "
                f"{corpus.per_table_queries_issued} for per-table batching)"
            )
        if self.parallel is not None:
            parallel = self.parallel
            parallel_table = format_table(
                [
                    "Tables",
                    "Rows",
                    "Cells",
                    "Latency ms",
                    "1-worker s",
                    f"{parallel.workers}-worker s",
                    "Speedup",
                    "Identical",
                ],
                [
                    (
                        parallel.n_tables,
                        parallel.n_rows,
                        parallel.n_cells,
                        parallel.real_latency_seconds * 1000.0,
                        parallel.single_seconds,
                        parallel.multi_seconds,
                        parallel.speedup,
                        parallel.identical,
                    )
                ],
                title=(
                    "Multi-worker annotate_tables over one shared cache "
                    "directory (latency-dominated regime)"
                ),
            )
            text += (
                f"\n\n{parallel_table}\n(distinct-content corpus; every run "
                "warm-starts from one shared cache directory and merge-saves "
                "back; the engine sleeps its per-request latency for real, "
                "so workers overlap the remote waits the paper's Section "
                "6.4 cost model is dominated by)"
            )
        if self.skewed is not None:
            skewed = self.skewed
            skewed_table = format_table(
                [
                    "Tables",
                    "Giant rows",
                    "Small rows",
                    "Latency ms",
                    "1-worker s",
                    "Static s",
                    "Stealing s",
                    "Splitting s",
                    "vs static",
                    "Split vs static",
                    "Static imb",
                    "Stealing imb",
                    "Splitting imb",
                    "Identical",
                ],
                [
                    (
                        skewed.n_tables,
                        skewed.giant_rows,
                        skewed.small_rows,
                        skewed.real_latency_seconds * 1000.0,
                        skewed.single_seconds,
                        skewed.static_seconds,
                        skewed.stealing_seconds,
                        skewed.splitting_seconds,
                        skewed.speedup_vs_static,
                        skewed.splitting_speedup_vs_static,
                        skewed.static_imbalance,
                        skewed.stealing_imbalance,
                        skewed.splitting_imbalance,
                        skewed.identical,
                    )
                ],
                title=(
                    "Work-stealing vs static sharding on a skewed corpus "
                    f"(workers={skewed.workers}, latency-dominated regime)"
                ),
            )
            text += (
                f"\n\n{skewed_table}\n(one giant table + many small "
                "distinct-content tables; static contiguous sharding "
                "serialises on the shard holding the giant table while the "
                f"stealing queue ({skewed.stealing_tasks} cost-bounded "
                "tasks) keeps every worker busy -- but the atomic giant "
                "table still bounds it; row-range splitting "
                f"({skewed.splitting_tasks} tasks, {skewed.tables_split} "
                f"table(s) cut into slices of <= {skewed.slice_cost} "
                "cells) removes that bound too, byte-identically; imb = "
                "busiest worker over the mean, 1.0 = perfectly balanced)"
            )
        if self.service is not None:
            service = self.service
            service_table = format_table(
                [
                    "Clients",
                    "Rows each",
                    "Cells",
                    "One-shot s",
                    "Service s",
                    "Speedup",
                    "Batches",
                    "Coalescing",
                    "Warm hits",
                    "Identical",
                ],
                [
                    (
                        service.n_clients,
                        service.n_rows,
                        service.n_cells,
                        service.one_shot_seconds,
                        service.service_seconds,
                        service.speedup,
                        service.batches,
                        service.coalescing_ratio,
                        service.warm_hit_rate,
                        service.identical,
                    )
                ],
                title=(
                    "Resident service (micro-batched daemon) vs one-shot "
                    "cold invocations"
                ),
            )
            text += (
                f"\n\n{service_table}\n(same-directory tables, one per "
                "client: the one-shot baseline pays a cold engine per "
                "invocation, the daemon coalesces the concurrent requests "
                "into pooled corpus passes over one warm resident engine; "
                "coalescing = requests per corpus pass)"
            )
        if self.flaky is not None:
            flaky = self.flaky
            flaky_table = format_table(
                [
                    "Tables",
                    "Rows",
                    "Cells",
                    "Fail rate",
                    "Retries",
                    "No-retry cov",
                    "Retry cov",
                    "Retried",
                    "Repaired",
                ],
                [
                    (
                        flaky.n_tables,
                        flaky.n_rows,
                        flaky.n_cells,
                        flaky.failure_rate,
                        flaky.retries,
                        flaky.baseline_coverage,
                        flaky.resilient_coverage,
                        flaky.search_retries,
                        flaky.repaired_cells,
                    )
                ],
                title=(
                    "Flaky engine: retry/backoff coverage recovery vs the "
                    "no-retry baseline"
                ),
            )
            text += (
                f"\n\n{flaky_table}\n(same deterministic first-attempt "
                "failures in both runs; the no-retry baseline abandons "
                f"{flaky.baseline_degraded} cells where the retrying "
                "annotator re-issues failed queries with virtual-clock "
                "backoff and an end-of-corpus repair pass; cov = annotated "
                "candidate cells over all candidate cells)"
            )
        if self.mmap is not None:
            mmap = self.mmap
            mmap_table = format_table(
                [
                    "Tables",
                    "Rows",
                    "Pages",
                    "Artifact MB",
                    "Build s",
                    "Payload KB mem",
                    "Payload KB mmap",
                    "Attach MB mem",
                    "Attach MB mmap",
                    "Attach s mem",
                    "Attach s mmap",
                    "Identical",
                ],
                [
                    (
                        mmap.n_tables,
                        mmap.n_rows,
                        mmap.n_pages,
                        mmap.artifact_bytes / 1e6,
                        mmap.build_seconds,
                        mmap.memory_payload_bytes / 1024.0,
                        mmap.mmap_payload_bytes / 1024.0,
                        mmap.memory_attach_rss_kb / 1024.0,
                        mmap.mmap_attach_rss_kb / 1024.0,
                        mmap.memory_attach_seconds,
                        mmap.mmap_attach_seconds,
                        mmap.identical,
                    )
                ],
                title=(
                    "Index storage backends: frozen mmap artifact vs "
                    f"in-memory pickling (workers={mmap.workers}, spawn)"
                ),
            )
            text += (
                f"\n\n{mmap_table}\n(both pools use the spawn start "
                "method, so each worker pays its true shipping cost: the "
                "in-memory backend pickles the whole annotator per worker "
                "while the frozen artifact ships a path and every worker "
                "maps the same physical pages; attach = per-worker mean "
                "RSS grown / wall-clock spent becoming ready; payload "
                f"fraction {mmap.payload_fraction:.3f}, attach-RSS "
                f"fraction {mmap.attach_rss_fraction:.3f})"
            )
        if self.disk_cache is not None:
            cache = self.disk_cache
            cache_table = format_table(
                [
                    "Tables",
                    "Rows",
                    "Store KB",
                    "Load KB mem",
                    "Load KB disk",
                    "Attach s mem",
                    "Attach s disk",
                    "Warm s mem",
                    "Warm s disk",
                    "Delta buckets",
                    "Identical",
                ],
                [
                    (
                        cache.n_tables,
                        cache.n_rows,
                        cache.store_bytes / 1024.0,
                        cache.memory_load_bytes / 1024.0,
                        cache.disk_load_bytes / 1024.0,
                        cache.memory_attach_seconds,
                        cache.disk_attach_seconds,
                        cache.memory_seconds,
                        cache.disk_seconds,
                        (
                            f"{cache.delta_buckets_rewritten}"
                            f"/{cache.delta_buckets_total}"
                        ),
                        cache.identical,
                    )
                ],
                title=(
                    "Cache storage backends: sharded disk stores vs "
                    f"pickled-dict files (workers={cache.workers}, spawn)"
                ),
            )
            text += (
                f"\n\n{cache_table}\n(both pools warm-start every worker "
                "from one shared cache directory seeded by the same cold "
                "run: the memory backend loads the whole pickled files "
                "per worker while the disk backend attaches the sharded "
                "stores and reads only manifests plus append logs; delta "
                f"buckets = bucket files rewritten when {cache.delta_tables} "
                "grown-corpus table(s) were appended and compacted; load "
                f"fraction {cache.load_fraction:.3f}, delta fraction "
                f"{cache.delta_fraction:.3f})"
            )
        return text

    def to_json(self) -> dict:
        payload: dict = {
            "benchmark": "throughput",
            "unit": "wall-clock seconds",
            "tables_per_size": self.tables_per_size,
            "sizes": [
                {
                    "n_rows": row.n_rows,
                    "n_candidates": row.n_candidates,
                    "batch_cold_seconds": row.batch_cold_seconds,
                    "batch_steady_seconds": row.batch_steady_seconds,
                    "per_cell_seconds": row.per_cell_seconds,
                    "batch_cells_per_second": row.batch_cells_per_second,
                    "per_cell_cells_per_second": row.per_cell_cells_per_second,
                    "cold_speedup": row.cold_speedup,
                    "steady_speedup": row.steady_speedup,
                    "identical_annotations": row.identical,
                }
                for row in self.rows
            ],
        }
        if self.corpus is not None:
            corpus = self.corpus
            payload["corpus"] = {
                "scenario": (
                    "same-directory corpus; per-table and corpus runs "
                    "warm-started from the cold run's persisted caches"
                ),
                "n_tables": corpus.n_tables,
                "n_rows": corpus.n_rows,
                "n_cells": corpus.n_cells,
                "corpus_queries_issued": corpus.corpus_queries_issued,
                "per_table_queries_issued": corpus.per_table_queries_issued,
                "cold_seconds": corpus.cold_seconds,
                "per_table_seconds": corpus.per_table_seconds,
                "corpus_seconds": corpus.corpus_seconds,
                "corpus_speedup_vs_per_table": corpus.corpus_speedup,
                "warm_speedup_vs_cold": corpus.warm_speedup,
                "identical_annotations": corpus.identical,
                "caches_loaded": corpus.caches_loaded,
            }
        if self.parallel is not None:
            parallel = self.parallel
            payload["parallel"] = {
                "scenario": (
                    "distinct-content corpus; single- and multi-worker runs "
                    "warm-start from one shared cache directory and "
                    "merge-save back; per-request engine latency is slept "
                    "for real (the paper's latency-dominated regime), so "
                    "workers overlap remote waits"
                ),
                "n_tables": parallel.n_tables,
                "n_rows": parallel.n_rows,
                "n_cells": parallel.n_cells,
                "workers": parallel.workers,
                "queries_issued": parallel.queries_issued,
                "real_latency_seconds": parallel.real_latency_seconds,
                "single_worker_seconds": parallel.single_seconds,
                "multi_worker_seconds": parallel.multi_seconds,
                "speedup_vs_single_worker": parallel.speedup,
                "identical_annotations": parallel.identical,
            }
        if self.skewed is not None:
            skewed = self.skewed
            payload["skewed"] = {
                "scenario": (
                    "skewed distinct-content corpus (one giant table + "
                    "many small ones); workers=1, static shards, the "
                    "work-stealing chunk queue and stealing with row-range "
                    "splitting of the giant table, all timed under real "
                    "per-request latency with in-memory compute caches "
                    "pre-warmed by an untimed seed pass (no cache "
                    "directory: file I/O is a fixed per-arm cost that "
                    "would blur the scheduling ratios); imbalance = "
                    "busiest worker's busy seconds over the pool mean"
                ),
                "n_tables": skewed.n_tables,
                "giant_rows": skewed.giant_rows,
                "small_rows": skewed.small_rows,
                "n_cells": skewed.n_cells,
                "workers": skewed.workers,
                "real_latency_seconds": skewed.real_latency_seconds,
                "single_worker_seconds": skewed.single_seconds,
                "static_seconds": skewed.static_seconds,
                "stealing_seconds": skewed.stealing_seconds,
                "splitting_seconds": skewed.splitting_seconds,
                "stealing_speedup_vs_static": skewed.speedup_vs_static,
                "stealing_speedup_vs_single_worker": skewed.speedup_vs_single,
                "splitting_speedup_vs_static": skewed.splitting_speedup_vs_static,
                "splitting_speedup_vs_stealing": skewed.splitting_speedup_vs_stealing,
                "splitting_speedup_vs_single_worker": skewed.splitting_speedup_vs_single,
                "static_imbalance_ratio": skewed.static_imbalance,
                "stealing_imbalance_ratio": skewed.stealing_imbalance,
                "splitting_imbalance_ratio": skewed.splitting_imbalance,
                "stealing_tasks": skewed.stealing_tasks,
                "splitting_tasks": skewed.splitting_tasks,
                "tables_split": skewed.tables_split,
                "slice_cost": skewed.slice_cost,
                "effective_chunk_cost": skewed.effective_chunk_cost,
                "identical_annotations": skewed.identical,
            }
        if self.service is not None:
            service = self.service
            payload["service"] = {
                "scenario": (
                    "resident daemon with request micro-batching vs N "
                    "one-shot cold invocations: N concurrent clients each "
                    "submit one same-directory table over the Unix socket "
                    "and the admission layer coalesces them into pooled "
                    "corpus passes over the warm engine; the baseline "
                    "annotates the same tables one cold annotator (and "
                    "freshly reset compute caches) at a time, the cost "
                    "every separate CLI invocation pays"
                ),
                "n_clients": service.n_clients,
                "n_rows": service.n_rows,
                "n_cells": service.n_cells,
                "requests": service.requests,
                "batches": service.batches,
                "mean_batch_size": service.mean_batch_size,
                "coalescing_ratio": service.coalescing_ratio,
                "warm_hit_rate": service.warm_hit_rate,
                "batch_window_ms": service.batch_window_ms,
                "one_shot_seconds": service.one_shot_seconds,
                "service_seconds": service.service_seconds,
                "speedup_vs_one_shot": service.speedup,
                "identical_annotations": service.identical,
            }
        if self.flaky is not None:
            flaky = self.flaky
            payload["flaky"] = {
                "scenario": (
                    "distinct-content corpus under deterministic "
                    "failure injection: the no-retry baseline and the "
                    "retrying annotator see identical first-attempt "
                    "failures (per-(seed, query, occurrence) hash draws); "
                    "coverage = annotated candidate cells over all "
                    "candidate cells"
                ),
                "n_tables": flaky.n_tables,
                "n_rows": flaky.n_rows,
                "n_cells": flaky.n_cells,
                "failure_rate": flaky.failure_rate,
                "retries": flaky.retries,
                "baseline_seconds": flaky.baseline_seconds,
                "resilient_seconds": flaky.resilient_seconds,
                "baseline_degraded_cells": flaky.baseline_degraded,
                "resilient_degraded_cells": flaky.resilient_degraded,
                "baseline_coverage": flaky.baseline_coverage,
                "resilient_coverage": flaky.resilient_coverage,
                "search_retries": flaky.search_retries,
                "repaired_cells": flaky.repaired_cells,
                "breaker_opens": flaky.breaker_opens,
            }
        if self.mmap is not None:
            mmap = self.mmap
            payload["mmap_backend"] = {
                "scenario": (
                    "distinct-content corpus annotated at workers=N under "
                    "the spawn start method, once over the in-memory index "
                    "backend (whole annotator pickled to every worker) and "
                    "once over a frozen mmap artifact built from the same "
                    "index (workers receive the artifact path and share "
                    "the file's pages read-only through the OS page "
                    "cache); attach = per-worker mean RSS grown and "
                    "wall-clock spent between worker entry and readiness"
                ),
                "n_tables": mmap.n_tables,
                "n_rows": mmap.n_rows,
                "n_cells": mmap.n_cells,
                "workers": mmap.workers,
                "n_pages": mmap.n_pages,
                "artifact_bytes": mmap.artifact_bytes,
                "build_seconds": mmap.build_seconds,
                "memory_payload_bytes": mmap.memory_payload_bytes,
                "mmap_payload_bytes": mmap.mmap_payload_bytes,
                "payload_fraction": mmap.payload_fraction,
                "memory_attach_rss_kb": mmap.memory_attach_rss_kb,
                "mmap_attach_rss_kb": mmap.mmap_attach_rss_kb,
                "attach_rss_fraction": mmap.attach_rss_fraction,
                "memory_attach_seconds": mmap.memory_attach_seconds,
                "mmap_attach_seconds": mmap.mmap_attach_seconds,
                "attach_speedup": mmap.attach_speedup,
                "memory_peak_rss_kb": mmap.memory_peak_rss_kb,
                "mmap_peak_rss_kb": mmap.mmap_peak_rss_kb,
                "memory_seconds": mmap.memory_seconds,
                "mmap_seconds": mmap.mmap_seconds,
                "identical_annotations": mmap.identical,
            }
        if self.disk_cache is not None:
            cache = self.disk_cache
            payload["disk_cache"] = {
                "scenario": (
                    "distinct-content corpus whose warm state is seeded "
                    "by one cold run, then re-annotated at workers=N "
                    "under the spawn start method from a pickled-dict "
                    "cache directory and from sharded on-disk cache "
                    "stores (per-worker cache payload at attach "
                    "compared), followed by a corpus-growth phase whose "
                    "delta compaction rewrites only the bucket files the "
                    "new entries hash to"
                ),
                "n_tables": cache.n_tables,
                "n_rows": cache.n_rows,
                "n_cells": cache.n_cells,
                "workers": cache.workers,
                "store_bytes": cache.store_bytes,
                "memory_load_bytes": cache.memory_load_bytes,
                "disk_load_bytes": cache.disk_load_bytes,
                "load_fraction": cache.load_fraction,
                "memory_attach_seconds": cache.memory_attach_seconds,
                "disk_attach_seconds": cache.disk_attach_seconds,
                "memory_peak_rss_kb": cache.memory_peak_rss_kb,
                "disk_peak_rss_kb": cache.disk_peak_rss_kb,
                "memory_seconds": cache.memory_seconds,
                "disk_seconds": cache.disk_seconds,
                "delta_tables": cache.delta_tables,
                "delta_buckets_rewritten": cache.delta_buckets_rewritten,
                "delta_buckets_total": cache.delta_buckets_total,
                "delta_fraction": cache.delta_fraction,
                "identical_annotations": cache.identical,
            }
        return payload

    def speedup_at(self, n_rows: int) -> float:
        """Steady-state speedup for one table size."""
        for row in self.rows:
            if row.n_rows == n_rows:
                return row.steady_speedup
        raise KeyError(n_rows)


def _corpus_tables(
    context: ExperimentContext, n_tables: int, n_rows: int, start: int = 0
) -> list[Table]:
    """A same-directory corpus: *n_tables* views of one entity directory.

    Every table lists the same *n_rows* directory rows (name strings shared
    verbatim across tables) in its own shuffled order -- the shape of many
    sites mirroring one directory, which is where corpus-at-a-time
    annotation earns its keep: each distinct cell string is searched,
    classified and voted on once for the whole corpus instead of once per
    table.  *start* offsets the row numbering so two corpora share an
    entity directory (and therefore query signatures) without sharing a
    single query string.
    """
    import random

    rng = random.Random(context.world.config.seed + 7919 + start)
    entities = context.world.table_entities("restaurant")
    directory = [
        f"{entities[i % min(n_rows, len(entities))].table_name} #{start + i}"
        for i in range(n_rows)
    ]
    tables = []
    for index in range(n_tables):
        table = Table(
            name=f"corpus-{start}-{index}",
            columns=[Column("Name", ColumnType.TEXT)],
        )
        order = list(range(n_rows))
        rng.shuffle(order)
        for row in order:
            table.append_row([directory[row]])
        tables.append(table)
    return tables


@dataclass
class CorpusThroughput:
    """Corpus-at-a-time versus per-table batching on a same-directory corpus.

    All three timed regimes annotate the *same* 20-table corpus:

    * ``cold_seconds`` -- ``annotate_tables`` with every compute cache
      freshly reset (first process ever to see this directory); its caches
      are then persisted via ``EntityAnnotator.save_caches``;
    * ``per_table_seconds`` -- the retained per-table loop
      (``_annotate_tables_sequential``), warm-started from the persisted
      caches: the fairest baseline, since only the corpus-at-a-time
      *structure* differs;
    * ``corpus_seconds`` -- ``annotate_tables`` warm-started the same way
      (a second process loading the first one's caches).
    """

    n_tables: int
    n_rows: int
    n_cells: int
    corpus_queries_issued: int
    per_table_queries_issued: int
    cold_seconds: float
    per_table_seconds: float
    corpus_seconds: float
    identical: bool
    caches_loaded: bool

    @property
    def corpus_speedup(self) -> float:
        """Warm corpus-at-a-time over warm per-table batching."""
        if not self.corpus_seconds:
            return 0.0
        return self.per_table_seconds / self.corpus_seconds

    @property
    def warm_speedup(self) -> float:
        """Warm (persisted-cache) corpus run over its own cold start."""
        if not self.corpus_seconds:
            return 0.0
        return self.cold_seconds / self.corpus_seconds


@dataclass
class ParallelThroughput:
    """Multi-worker ``annotate_tables`` versus single-worker, shared caches.

    The measured regime is the paper's: Section 6.4 finds the running time
    "dominated by the latency time required to connect to the search
    engine", so for this scenario the engine *sleeps* its per-request
    latency in real time (``SearchEngine.real_latency_seconds``) instead
    of only charging the virtual clock.  Remote waits are exactly what a
    pool of workers overlaps -- on any core count -- while the compute
    parallelism across shards comes free on multi-core hosts.

    Both timed runs annotate the same *distinct-content* corpus (every
    table its own directory slice, so no cross-table query dedupe blurs
    the comparison) and share one cache directory seeded by an untimed
    cold pass: each run warm-starts from it and merge-saves back, which is
    the production data flow (shard -> warm-start -> annotate ->
    merge-save) this scenario exists to exercise.
    """

    n_tables: int
    n_rows: int
    n_cells: int
    workers: int
    queries_issued: int
    real_latency_seconds: float
    single_seconds: float
    multi_seconds: float
    identical: bool

    @property
    def speedup(self) -> float:
        """Multi-worker wall-clock gain over the single-worker run."""
        if not self.multi_seconds:
            return 0.0
        return self.single_seconds / self.multi_seconds


@dataclass
class SkewedThroughput:
    """Work-stealing versus static sharding on a heavily skewed corpus.

    Real web-table corpora mix a few giant tables with hundreds of tiny
    ones; static contiguous sharding hands whichever worker draws the
    giant table nearly the whole run.  This scenario builds that shape --
    one *giant_rows*-row table followed by many *small_rows*-row tables,
    all distinct-content -- and annotates it four ways under real
    per-request engine latency (the paper's Section 6.4 regime).  An
    untimed seed pass pre-warms the engine's in-memory compute caches
    (inherited copy-on-write by forked workers; a cache hit still sleeps
    its per-request latency), so every timed arm measures how its
    scheduler places the latency units -- not cache-file I/O, which is a
    fixed per-arm cost that would blur the ratios:

    * ``single_seconds`` -- ``workers=1``, the parity reference;
    * ``static_seconds`` -- ``workers=N`` with ``schedule="static"``
      (contiguous shards: the giant table's shard serialises the run);
    * ``stealing_seconds`` -- ``workers=N`` with ``schedule="stealing"``
      (cost-bounded chunk queue, the giant table travelling alone as one
      atomic task: one worker takes it while the others drain the small
      chunks, so the giant's own cost still bounds the run);
    * ``splitting_seconds`` -- the stealing queue with
      ``split_giant_tables=True``: the giant table is cut into row-range
      slice tasks (:class:`~repro.core.parallel.TableSlice`), annotated
      independently and reassembled byte-identically, so the critical
      path drops to roughly ``total_cost / workers``.

    ``static_imbalance`` / ``stealing_imbalance`` /
    ``splitting_imbalance`` are the runs'
    ``RunDiagnostics.imbalance_ratio`` (busiest worker over the mean, 1.0
    = perfectly balanced); ``stealing_tasks`` / ``splitting_tasks`` count
    the queue tasks each chunker produced, ``tables_split`` the tables
    the splitting run cut, ``slice_cost`` the per-slice cell budget its
    tables were cut under, and ``effective_chunk_cost`` the (automatic)
    chunk budget its diagnostics recorded.  All four runs must produce
    identical annotations.
    """

    n_tables: int
    giant_rows: int
    small_rows: int
    n_cells: int
    workers: int
    real_latency_seconds: float
    single_seconds: float
    static_seconds: float
    stealing_seconds: float
    splitting_seconds: float
    static_imbalance: float
    stealing_imbalance: float
    splitting_imbalance: float
    stealing_tasks: int
    splitting_tasks: int
    tables_split: int
    slice_cost: int
    effective_chunk_cost: int
    identical: bool

    @property
    def speedup_vs_static(self) -> float:
        """Work-stealing wall-clock gain over static contiguous shards."""
        if not self.stealing_seconds:
            return 0.0
        return self.static_seconds / self.stealing_seconds

    @property
    def speedup_vs_single(self) -> float:
        """Work-stealing wall-clock gain over the single-worker run."""
        if not self.stealing_seconds:
            return 0.0
        return self.single_seconds / self.stealing_seconds

    @property
    def splitting_speedup_vs_static(self) -> float:
        """Row-range splitting's wall-clock gain over static shards --
        the number that must clear the table-atomic stealing ceiling
        (``speedup_vs_static`` can never exceed roughly
        ``(giant + half the small tables) / giant``)."""
        if not self.splitting_seconds:
            return 0.0
        return self.static_seconds / self.splitting_seconds

    @property
    def splitting_speedup_vs_stealing(self) -> float:
        """Row-range splitting's wall-clock gain over table-atomic
        stealing (> 1.0 means splitting removed the giant-table bound)."""
        if not self.splitting_seconds:
            return 0.0
        return self.stealing_seconds / self.splitting_seconds

    @property
    def splitting_speedup_vs_single(self) -> float:
        """Row-range splitting's wall-clock gain over the single-worker
        run."""
        if not self.splitting_seconds:
            return 0.0
        return self.single_seconds / self.splitting_seconds


@dataclass
class ServiceThroughput:
    """Resident micro-batched daemon versus N one-shot cold invocations.

    The cold-start-amortisation claim of the service subsystem, measured:
    *n_clients* concurrent clients each submit one table of a
    same-directory corpus (shared strings across clients -- the workload
    the admission layer's pooled passes dedupe) over the daemon's Unix
    socket, against annotating the same tables one **cold** annotator at
    a time -- compute caches freshly reset per table, which is what every
    separate CLI/process invocation pays before PR 2's persisted caches,
    and still the per-invocation floor (process + context + cache load)
    after them.

    ``requests``/``batches``/``coalescing_ratio`` come from the daemon's
    :class:`~repro.core.results.ServiceStats`: a coalescing ratio > 1
    means concurrently-arriving requests genuinely shared corpus passes.
    ``identical`` asserts the service parity contract -- every response
    equal to the in-process ``annotate_table`` answer for that table.
    """

    n_clients: int
    n_rows: int
    n_cells: int
    requests: int
    batches: int
    mean_batch_size: float
    coalescing_ratio: float
    warm_hit_rate: float
    batch_window_ms: float
    one_shot_seconds: float
    service_seconds: float
    identical: bool

    @property
    def speedup(self) -> float:
        """Resident-service wall-clock gain over the one-shot baseline."""
        if not self.service_seconds:
            return 0.0
        return self.one_shot_seconds / self.service_seconds


@dataclass
class FlakyThroughput:
    """Retry/backoff coverage recovery on a flaky engine, versus no retries.

    The resilience layer's headline number: under deterministic failure
    injection (every request dropped by a per-(seed, query, occurrence)
    hash draw, so both runs fail the *same* first attempts), the seed's
    no-retry behaviour abandons roughly ``failure_rate`` of the candidate
    cells while the retrying annotator -- exponential virtual-clock
    backoff per retry, plus the end-of-corpus repair pass -- recovers
    near-full coverage.  Coverage counts annotated-or-decided candidate
    cells: ``1 - degraded / n_cells``.
    """

    n_tables: int
    n_rows: int
    n_cells: int
    failure_rate: float
    retries: int
    baseline_seconds: float
    resilient_seconds: float
    baseline_degraded: int
    resilient_degraded: int
    search_retries: int
    repaired_cells: int
    breaker_opens: int

    @property
    def baseline_coverage(self) -> float:
        """Candidate cells the no-retry run kept (annotated or decided)."""
        if not self.n_cells:
            return 0.0
        return 1.0 - self.baseline_degraded / self.n_cells

    @property
    def resilient_coverage(self) -> float:
        """Candidate cells the retrying run kept."""
        if not self.n_cells:
            return 0.0
        return 1.0 - self.resilient_degraded / self.n_cells


@dataclass
class MmapBackendThroughput:
    """Frozen mmap index backend versus the in-memory backend at workers=N.

    The storage claim of the pluggable index backends (see
    :mod:`repro.web.backends`), measured under the ``spawn`` start method
    -- the one that cannot hide per-worker copies behind fork's
    copy-on-write sharing.  The in-memory backend ships every worker a
    pickle of the whole annotator (postings, pages and all) which each
    worker unpickles into a private heap copy; the frozen artifact
    pickles by *path*, so every worker maps the same physical file
    read-only and the OS page cache holds one copy for all of them.

    ``*_payload_bytes`` is the pickled annotator each pool shipped;
    ``*_attach_rss_kb`` / ``*_attach_seconds`` are per-worker means of
    the RSS grown and the wall-clock spent between worker entry and
    readiness (payload resolution + cache load);  ``*_peak_rss_kb`` is
    the per-worker mean of the highest RSS sampled over the whole run
    (entry, post-attach, after each task).  ``identical``
    asserts both pools reproduced the single-worker in-memory reference
    byte for byte.
    """

    n_tables: int
    n_rows: int
    n_cells: int
    workers: int
    n_pages: int
    artifact_bytes: int
    build_seconds: float
    memory_payload_bytes: int
    mmap_payload_bytes: int
    memory_attach_rss_kb: float
    mmap_attach_rss_kb: float
    memory_attach_seconds: float
    mmap_attach_seconds: float
    memory_peak_rss_kb: float
    mmap_peak_rss_kb: float
    memory_seconds: float
    mmap_seconds: float
    identical: bool

    @property
    def payload_fraction(self) -> float:
        """Mmap pool's pickled payload over the in-memory pool's."""
        if not self.memory_payload_bytes:
            return 0.0
        return self.mmap_payload_bytes / self.memory_payload_bytes

    @property
    def attach_rss_fraction(self) -> float:
        """Per-worker incremental RSS, mmap over in-memory."""
        if not self.memory_attach_rss_kb:
            return 0.0
        return self.mmap_attach_rss_kb / self.memory_attach_rss_kb

    @property
    def attach_speedup(self) -> float:
        """How much faster a worker becomes ready on the mmap backend."""
        if not self.mmap_attach_seconds:
            return 0.0
        return self.memory_attach_seconds / self.mmap_attach_seconds


@dataclass
class DiskCacheThroughput:
    """Sharded disk cache store versus the pickled-dict cache at workers=N.

    The storage claim of the pluggable cache backends (see
    :mod:`repro.persistence`), measured -- like the index-backend
    scenario -- under the ``spawn`` start method.  Both pools warm-start
    every worker from one shared cache directory seeded by the same cold
    run: the ``memory`` backend makes each worker load the whole pickled
    cache files into a private heap copy, while the ``disk`` backend
    attaches each worker to the sharded stores and reads only their
    manifests and append logs up front (entries stream in per probe, and
    the OS page cache holds one physical copy of the buckets for every
    process on the host).

    ``*_load_bytes`` is the per-worker mean cache payload read while
    becoming ready (:attr:`~repro.core.results.WorkerLoad.cache_load_bytes`);
    the delta fields describe the growth phase: after annotating
    *delta_tables* fresh tables against the warm store, compaction
    rewrote ``delta_buckets_rewritten`` of ``delta_buckets_total`` bucket
    files -- a grown corpus appends and folds, it does not rewrite the
    world.  ``identical`` asserts both warm pools reproduced the seeding
    run and the delta run reproduced a cold reference, byte for byte.
    """

    n_tables: int
    n_rows: int
    n_cells: int
    workers: int
    store_bytes: int
    memory_load_bytes: float
    disk_load_bytes: float
    memory_attach_seconds: float
    disk_attach_seconds: float
    memory_peak_rss_kb: float
    disk_peak_rss_kb: float
    memory_seconds: float
    disk_seconds: float
    delta_tables: int
    delta_buckets_rewritten: int
    delta_buckets_total: int
    identical: bool

    @property
    def load_fraction(self) -> float:
        """Disk pool's per-worker cache payload over the memory pool's."""
        if not self.memory_load_bytes:
            return 0.0
        return self.disk_load_bytes / self.memory_load_bytes

    @property
    def delta_fraction(self) -> float:
        """Bucket files the growth compaction rewrote, as a fraction."""
        if not self.delta_buckets_total:
            return 0.0
        return self.delta_buckets_rewritten / self.delta_buckets_total


def run_throughput(
    context: ExperimentContext,
    sizes: tuple[int, ...] = (100, 500, 1000, 2000),
    stream_length: int = 2,
    corpus_tables: int = 20,
    corpus_rows: int = 200,
    workers: int = 2,
    parallel_tables: int = 20,
    parallel_rows: int = 100,
    parallel_latency_seconds: float = 0.008,
    schedule: str = "stealing",
    chunk_cost_target: int = 0,
    split_giant_tables: bool = False,
    max_slice_cost: int = 0,
    skew_giant_rows: int = 2000,
    skew_small_tables: int = 19,
    skew_small_rows: int = 100,
    skew_latency_seconds: float = 0.005,
    service_clients: int = 8,
    service_rows: int = 60,
    service_window_ms: float = 250.0,
    flaky_tables: int = 8,
    flaky_rows: int = 50,
    flaky_failure_rate: float = 0.2,
    retries: int = 2,
    retry_backoff_ms: float = 200.0,
    breaker_threshold: int = 0,
    index_backend: str = "memory",
    mmap_tables: int = 6,
    mmap_rows: int = 50,
    cache_backend: str = "memory",
    cache_buckets: int = 64,
    disk_cache_tables: int = 6,
    disk_cache_rows: int = 50,
) -> ThroughputResult:
    """Measure real cells/second of the batched path against the per-cell path.

    Per size, a stream of ``1 + stream_length`` synthetic directory tables
    (same entity directory, entirely fresh cell strings each) is annotated:

    * the **batched** annotator pays its cold start on the first table and
      is then timed per table over the rest of the stream (steady state);
    * the **per-cell** annotator is timed over the same measured tables --
      it has no compute caches, so warm-up would not change it.

    Both paths must produce identical :class:`TableAnnotation` output for
    every measured table.  Wall-clock time comes from ``perf_counter``
    while the virtual clock keeps charging latencies unobserved.

    A corpus-level scenario follows (see :class:`CorpusThroughput`): a
    *corpus_tables*-table same-directory corpus annotated corpus-at-a-time
    versus the per-table loop, cold and warm-started from caches persisted
    with ``EntityAnnotator.save_caches``.

    Then the multi-worker scenario (see :class:`ParallelThroughput`):
    ``annotate_tables(workers=N)`` versus ``workers=1`` on a
    *parallel_tables*-table distinct-content corpus under real
    per-request engine latency, both runs sharing one cache directory
    (the multi-worker run uses *schedule* / *chunk_cost_target*).

    Then the skewed-corpus scenario (see :class:`SkewedThroughput`):
    one *skew_giant_rows*-row giant table plus *skew_small_tables* small
    tables annotated at ``workers=N`` under the static and the
    work-stealing scheduler, against the ``workers=1`` reference.

    Then the resident-service scenario (see :class:`ServiceThroughput`):
    *service_clients* concurrent clients against a live
    :class:`~repro.service.daemon.AnnotationDaemon` (micro-batching
    window *service_window_ms*), versus the same tables annotated by
    one-shot cold invocations.

    Then the flaky-engine scenario (see :class:`FlakyThroughput`): a
    *flaky_tables*-table distinct-content corpus annotated under
    deterministic failure injection at *flaky_failure_rate*, once with
    the seed's no-retry behaviour and once with *retries* /
    *retry_backoff_ms* / *breaker_threshold* -- both runs seeing
    identical first-attempt failures, so the coverage difference is
    purely what the resilience layer recovered.

    Last, the index-backend scenario (see :class:`MmapBackendThroughput`):
    a *mmap_tables*-table distinct-content corpus annotated at
    ``workers=N`` under the ``spawn`` start method, once over the
    in-memory index backend (the whole annotator pickled to every
    worker) and once over a frozen mmap artifact freshly built from the
    same index (workers receive the artifact *path* and share the file's
    pages read-only), with per-worker payload, attach time and
    incremental RSS compared.

    Last, the cache-backend scenario (see :class:`DiskCacheThroughput`):
    a *disk_cache_tables*-table distinct-content corpus whose warm state
    is seeded once, then re-annotated at ``workers=N`` under ``spawn``
    from a pickled-dict cache directory and from sharded on-disk stores
    (per-worker cache payload compared), followed by a corpus-growth
    phase whose delta compaction rewrites only the buckets the new
    entries touch.

    *index_backend* selects the storage backend every *other* scenario
    runs over: ``"memory"`` (the default) keeps the context's mutable
    :class:`~repro.web.index.InvertedIndex`; ``"mmap"`` freezes it into
    a temporary artifact first, so the whole benchmark -- per-cell,
    batched, multi-worker, service, flaky -- exercises (and, via each
    scenario's parity flag, verifies) the frozen backend end to end.
    The original backend is restored before returning.  *cache_backend*
    does the same for the cache layer: ``"disk"`` makes every
    cache-directory scenario (corpus warm starts, the multi-worker
    shared directory) persist through sharded disk stores with
    *cache_buckets* buckets instead of the pickled-dict files, verified
    by the same parity flags.
    """
    import os
    import pickle
    import shutil
    import tempfile
    import time
    from pathlib import Path

    if stream_length < 1:
        raise ValueError(f"stream_length must be >= 1, got {stream_length}")
    if index_backend not in INDEX_BACKENDS:
        raise ValueError(
            f"index_backend must be one of {INDEX_BACKENDS}, got {index_backend!r}"
        )
    if cache_backend not in CACHE_BACKENDS:
        raise ValueError(
            f"cache_backend must be one of {CACHE_BACKENDS}, got {cache_backend!r}"
        )
    engine = context.world.search_engine
    swapped_memory_index = None
    swap_dir = None
    if index_backend == "mmap" and engine.index.backend_name != "mmap":
        swap_dir = tempfile.mkdtemp(prefix="repro-throughput-index-")
        swapped_memory_index = engine.index
        engine.use_index_backend(
            ensure_index_artifact(
                swapped_memory_index, os.path.join(swap_dir, "index.reproidx")
            )
        )
    rows: list[ThroughputRow] = []
    for n_rows in sizes:
        # A true cold start per size: signature/result/window caches may
        # have been warmed by earlier sizes (or other experiments).
        context.world.search_engine.reset_compute_caches()
        config = AnnotatorConfig()
        batch_annotator = EntityAnnotator(
            context.classifiers["svm"], context.world.search_engine, config
        )
        per_cell_annotator = EntityAnnotator(
            context.classifiers["svm"], context.world.search_engine, config
        )
        stream = [
            _efficiency_table(context, n_rows, start=index * n_rows)
            for index in range(1 + stream_length)
        ]
        n_candidates = len(
            batch_annotator.preprocessor.candidate_cells(stream[0])
        )
        start = time.perf_counter()
        batch_annotator.annotate_table(stream[0], ALL_TYPE_KEYS)
        batch_cold_seconds = time.perf_counter() - start
        batch_results = []
        start = time.perf_counter()
        for table in stream[1:]:
            batch_results.append(batch_annotator.annotate_table(table, ALL_TYPE_KEYS))
        batch_steady_seconds = (time.perf_counter() - start) / stream_length
        per_cell_results = []
        start = time.perf_counter()
        for table in stream[1:]:
            per_cell_results.append(
                per_cell_annotator._annotate_table_per_cell(table, ALL_TYPE_KEYS)
            )
        per_cell_seconds = (time.perf_counter() - start) / stream_length
        rows.append(
            ThroughputRow(
                n_rows=n_rows,
                n_candidates=n_candidates,
                batch_cold_seconds=batch_cold_seconds,
                batch_steady_seconds=batch_steady_seconds,
                per_cell_seconds=per_cell_seconds,
                identical=batch_results == per_cell_results,
            )
        )

    # -- corpus-at-a-time scenario ------------------------------------------------------
    # From here on every scenario that persists caches runs over the
    # selected cache backend, so its parity flag verifies that backend.
    engine = context.world.search_engine
    config = AnnotatorConfig(
        cache_backend=cache_backend, cache_buckets=cache_buckets
    )
    corpus = _corpus_tables(context, corpus_tables, corpus_rows)

    engine.reset_compute_caches()
    cold_annotator = EntityAnnotator(context.classifiers["svm"], engine, config)
    start = time.perf_counter()
    cold_run = cold_annotator.annotate_tables(corpus, ALL_TYPE_KEYS)
    cold_seconds = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as cache_dir:
        cold_annotator.save_caches(cache_dir)

        def warm_run_of(method: str) -> tuple[float, AnnotationRun, bool, int]:
            """Best-of-2 warm timing of one corpus method under loaded caches."""
            best = float("inf")
            for _ in range(2):
                engine.reset_compute_caches()
                annotator = EntityAnnotator(
                    context.classifiers["svm"], engine, config
                )
                loaded = all(annotator.load_caches(cache_dir).values())
                start = time.perf_counter()
                run = getattr(annotator, method)(corpus, ALL_TYPE_KEYS)
                best = min(best, time.perf_counter() - start)
            return best, run, loaded, run.diagnostics.queries_issued

        per_table_seconds, per_table_run, loaded_a, per_table_queries = warm_run_of(
            "_annotate_tables_sequential"
        )
        corpus_seconds, corpus_run, loaded_b, corpus_queries = warm_run_of(
            "annotate_tables"
        )

    corpus_result = CorpusThroughput(
        n_tables=corpus_tables,
        n_rows=corpus_rows,
        n_cells=cold_run.diagnostics.n_cells,
        corpus_queries_issued=corpus_queries,
        per_table_queries_issued=per_table_queries,
        cold_seconds=cold_seconds,
        per_table_seconds=per_table_seconds,
        corpus_seconds=corpus_seconds,
        identical=cold_run == per_table_run == corpus_run,
        caches_loaded=loaded_a and loaded_b,
    )

    # -- multi-worker scenario ----------------------------------------------------------
    # A distinct-content corpus: every table is its own slice of the
    # directory (no query string repeats across tables), so sharding
    # splits the work cleanly and the single-worker run enjoys no
    # cross-table dedupe advantage.
    distinct_corpus = [
        _corpus_tables(context, 1, parallel_rows, start=index * parallel_rows)[0]
        for index in range(parallel_tables)
    ]
    with tempfile.TemporaryDirectory() as shared_cache_dir:
        # Untimed cold pass seeds the shared cache directory both timed
        # runs warm-start from.
        engine.reset_compute_caches()
        seed_annotator = EntityAnnotator(
            context.classifiers["svm"], engine, config
        )
        seed_run = seed_annotator.annotate_tables(
            distinct_corpus, ALL_TYPE_KEYS, cache_dir=shared_cache_dir
        )
        # The paper's regime: per-request latency is *slept* in real time,
        # which is what a worker pool overlaps.
        engine.real_latency_seconds = parallel_latency_seconds
        try:
            engine.reset_compute_caches()
            single_annotator = EntityAnnotator(
                context.classifiers["svm"], engine, config
            )
            start = time.perf_counter()
            single_run = single_annotator.annotate_tables(
                distinct_corpus, ALL_TYPE_KEYS, cache_dir=shared_cache_dir
            )
            single_seconds = time.perf_counter() - start

            engine.reset_compute_caches()
            multi_annotator = EntityAnnotator(
                context.classifiers["svm"],
                engine,
                AnnotatorConfig(
                    schedule=schedule,
                    chunk_cost_target=chunk_cost_target,
                    split_giant_tables=split_giant_tables,
                    max_slice_cost=max_slice_cost,
                ),
            )
            start = time.perf_counter()
            multi_run = multi_annotator.annotate_tables(
                distinct_corpus,
                ALL_TYPE_KEYS,
                workers=workers,
                cache_dir=shared_cache_dir,
            )
            multi_seconds = time.perf_counter() - start
        finally:
            engine.real_latency_seconds = 0.0

    parallel_result = ParallelThroughput(
        n_tables=parallel_tables,
        n_rows=parallel_rows,
        n_cells=seed_run.diagnostics.n_cells,
        workers=workers,
        queries_issued=multi_run.diagnostics.queries_issued,
        real_latency_seconds=parallel_latency_seconds,
        single_seconds=single_seconds,
        multi_seconds=multi_seconds,
        identical=seed_run == single_run == multi_run,
    )

    # The skewed arms measure a 0.25 s margin between the table-atomic
    # ceiling and the splitting asymptote, and every forked pool worker
    # pays copy-on-write for whatever the parent still references.  The
    # finished scenarios' corpora, runs and annotators (hundreds of MB
    # of tables and annotations; their results live on as scalars in the
    # dataclasses above) are dead weight for the arms to come -- release
    # them so the pool forks over a minimal heap.
    del stream, table, batch_results, per_cell_results, batch_annotator
    del per_cell_annotator, cold_annotator, cold_run, warm_run_of
    del per_table_run, corpus_run, corpus, distinct_corpus
    del seed_annotator, seed_run, single_annotator, single_run
    del multi_annotator, multi_run

    # -- skewed-corpus scenario ---------------------------------------------------------
    # The size mix real web-table corpora exhibit: one giant table next
    # to many small ones, all distinct-content.  The giant table leads,
    # so the static contiguous split hands shard 1 the giant plus half
    # the small tables -- the worst case work-stealing exists to fix.
    skew_base = parallel_tables * parallel_rows
    skew_corpus = [
        _corpus_tables(context, 1, skew_giant_rows, start=skew_base)[0]
    ]
    for index in range(skew_small_tables):
        skew_corpus.append(
            _corpus_tables(
                context,
                1,
                skew_small_rows,
                start=skew_base + skew_giant_rows + index * skew_small_rows,
            )[0]
        )
    # The untimed seed pass warms the engine's *in-memory* compute caches
    # (BM25 rankings, snippets, label memo); every timed arm -- and every
    # forked pool worker, copy-on-write -- inherits that warmth, and a
    # results-cache hit still sleeps its per-request latency (the remote
    # round-trip is what is being modelled, not the local ranking
    # arithmetic).  No cache *directory* is involved: per-worker cache
    # file loads and the end-of-run merge-save flush are fixed wall-clock
    # costs (~2 s here) that would dilute the scheduling ratios this
    # scenario exists to measure, whereas warm in-memory caches cost the
    # arms nothing and keep them byte-identical.
    engine.reset_compute_caches()
    skew_seed = EntityAnnotator(context.classifiers["svm"], engine, config)
    skew_seed_run = skew_seed.annotate_tables(skew_corpus, ALL_TYPE_KEYS)
    engine.real_latency_seconds = skew_latency_seconds
    try:
        # Each arm is compared against the seed and reduced to its
        # scalars immediately, so no arm's AnnotationRun (~4k cells)
        # stays on the parent heap while later arms fork their workers:
        # retained runs are pure copy-on-write / GC-scan overhead for
        # the arms still to come, and a bias that lands hardest on
        # whichever arm runs last.  gc.collect() before each timed run
        # keeps young-generation survivors from being rescanned (and
        # their pages rewritten) mid-measurement.
        import gc

        def skew_timed(
            run_config: AnnotatorConfig, run_workers: int
        ) -> tuple[float, bool, RunDiagnostics]:
            annotator = EntityAnnotator(
                context.classifiers["svm"], engine, run_config
            )
            gc.collect()
            start = time.perf_counter()
            run = annotator.annotate_tables(
                skew_corpus, ALL_TYPE_KEYS, workers=run_workers
            )
            seconds = time.perf_counter() - start
            return seconds, run == skew_seed_run, run.diagnostics

        skew_single_seconds, skew_single_identical, _ = skew_timed(
            config, 1
        )
        skew_static_seconds, skew_static_identical, skew_static_diag = (
            skew_timed(AnnotatorConfig(schedule="static"), workers)
        )
        (
            skew_stealing_seconds,
            skew_stealing_identical,
            skew_stealing_diag,
        ) = skew_timed(
            AnnotatorConfig(
                schedule="stealing", chunk_cost_target=chunk_cost_target
            ),
            workers,
        )
        # The fourth arm: the same stealing queue, but the giant
        # table no longer travels alone -- it is cut into row-range
        # slice tasks (reassembled byte-identically), so the giant
        # stops bounding the critical path.
        (
            skew_splitting_seconds,
            skew_splitting_identical,
            skew_splitting_diag,
        ) = skew_timed(
            AnnotatorConfig(
                schedule="stealing",
                chunk_cost_target=chunk_cost_target,
                split_giant_tables=True,
                max_slice_cost=max_slice_cost,
            ),
            workers,
        )
    finally:
        engine.real_latency_seconds = 0.0

    skewed_result = SkewedThroughput(
        n_tables=len(skew_corpus),
        giant_rows=skew_giant_rows,
        small_rows=skew_small_rows,
        n_cells=skew_seed_run.diagnostics.n_cells,
        workers=workers,
        real_latency_seconds=skew_latency_seconds,
        single_seconds=skew_single_seconds,
        static_seconds=skew_static_seconds,
        stealing_seconds=skew_stealing_seconds,
        splitting_seconds=skew_splitting_seconds,
        static_imbalance=skew_static_diag.imbalance_ratio,
        stealing_imbalance=skew_stealing_diag.imbalance_ratio,
        splitting_imbalance=skew_splitting_diag.imbalance_ratio,
        stealing_tasks=sum(
            load.n_tasks for load in skew_stealing_diag.worker_loads
        ),
        splitting_tasks=sum(
            load.n_tasks for load in skew_splitting_diag.worker_loads
        ),
        tables_split=skew_splitting_diag.tables_split,
        slice_cost=(
            max_slice_cost or skew_splitting_diag.effective_chunk_cost
        ),
        effective_chunk_cost=skew_splitting_diag.effective_chunk_cost,
        identical=(
            skew_single_identical
            and skew_static_identical
            and skew_stealing_identical
            and skew_splitting_identical
        ),
    )

    # -- resident-service scenario ------------------------------------------------------
    # N concurrent clients against a live daemon versus N one-shot cold
    # invocations of the same work.  Same-directory tables (every client's
    # table lists the same entity strings in its own order): exactly the
    # cross-client redundancy the micro-batcher's pooled passes dedupe.
    import os
    import threading

    from repro.core.annotation import SnippetCache
    from repro.service.client import ServiceClient
    from repro.service.daemon import AnnotationDaemon, ServiceConfig

    service_base = skew_base + skew_giant_rows + skew_small_tables * skew_small_rows
    service_corpus = _corpus_tables(
        context, service_clients, service_rows, start=service_base
    )

    # Baseline: one-shot invocations -- every table pays a cold engine
    # (compute caches reset) and a cold annotator, the per-process price
    # a separate CLI run pays before any disk cache can help.
    one_shot_results = []
    start = time.perf_counter()
    for table in service_corpus:
        engine.reset_compute_caches()
        one_shot_annotator = EntityAnnotator(
            context.classifiers["svm"], engine, config
        )
        one_shot_results.append(
            one_shot_annotator.annotate_table(table, ALL_TYPE_KEYS)
        )
    one_shot_seconds = time.perf_counter() - start

    engine.reset_compute_caches()
    service_annotator = EntityAnnotator(
        context.classifiers["svm"], engine, config, cache=SnippetCache()
    )
    responses: list = [None] * service_clients
    with tempfile.TemporaryDirectory() as socket_dir:
        socket_path = os.path.join(socket_dir, "service.sock")
        daemon = AnnotationDaemon(
            service_annotator,
            socket_path,
            ServiceConfig(
                batch_window_ms=service_window_ms,
                max_batch_tables=service_clients,
            ),
        )
        with daemon:
            clients = [
                ServiceClient(socket_path) for _ in range(service_clients)
            ]
            try:
                # Connections are established untimed (the CLI baseline's
                # process spawn is untimed too); the barrier releases every
                # client at once so the admission window sees genuinely
                # concurrent arrivals.
                barrier = threading.Barrier(service_clients + 1)

                def submit(index: int) -> None:
                    barrier.wait()
                    responses[index] = clients[index].annotate_table(
                        service_corpus[index], ALL_TYPE_KEYS
                    )

                threads = [
                    threading.Thread(target=submit, args=(index,))
                    for index in range(service_clients)
                ]
                for thread in threads:
                    thread.start()
                barrier.wait()
                start = time.perf_counter()
                for thread in threads:
                    thread.join()
                service_seconds = time.perf_counter() - start
                service_stats = clients[0].stats()
            finally:
                for client in clients:
                    client.close()

    service_result = ServiceThroughput(
        n_clients=service_clients,
        n_rows=service_rows,
        n_cells=service_stats["cells"],
        requests=service_stats["requests"],
        batches=service_stats["batches"],
        mean_batch_size=service_stats["mean_batch_size"],
        coalescing_ratio=service_stats["coalescing_ratio"],
        warm_hit_rate=service_stats["warm_hit_rate"],
        batch_window_ms=service_window_ms,
        one_shot_seconds=one_shot_seconds,
        service_seconds=service_seconds,
        identical=responses == one_shot_results,
    )
    # -- flaky-engine scenario ----------------------------------------------------------
    # Deterministic failure injection: the per-(seed, query, occurrence)
    # hash draws mean the no-retry baseline and the retrying run fail the
    # *same* first attempts (occurrence counters reset between runs), so
    # any coverage difference is exactly what retries + the repair pass
    # recovered.  Distinct-content tables keep the failure statistics
    # honest (no cross-table query dedupe hiding lost cells).
    flaky_base = service_base + service_rows
    flaky_corpus = [
        _corpus_tables(
            context, 1, flaky_rows, start=flaky_base + index * flaky_rows
        )[0]
        for index in range(flaky_tables)
    ]
    engine.failure_rate = flaky_failure_rate
    try:
        engine.reset_compute_caches()
        engine.reset_failure_injection()
        flaky_baseline = EntityAnnotator(
            context.classifiers["svm"], engine, config
        )
        start = time.perf_counter()
        flaky_baseline_run = flaky_baseline.annotate_tables(
            flaky_corpus, ALL_TYPE_KEYS
        )
        flaky_baseline_seconds = time.perf_counter() - start

        engine.reset_compute_caches()
        engine.reset_failure_injection()
        flaky_resilient = EntityAnnotator(
            context.classifiers["svm"],
            engine,
            AnnotatorConfig(
                retries=retries,
                retry_backoff_ms=retry_backoff_ms,
                breaker_threshold=breaker_threshold,
            ),
        )
        start = time.perf_counter()
        flaky_resilient_run = flaky_resilient.annotate_tables(
            flaky_corpus, ALL_TYPE_KEYS
        )
        flaky_resilient_seconds = time.perf_counter() - start
    finally:
        engine.failure_rate = 0.0
        engine.reset_failure_injection()
        engine.reset_compute_caches()

    flaky_result = FlakyThroughput(
        n_tables=flaky_tables,
        n_rows=flaky_rows,
        n_cells=flaky_baseline_run.diagnostics.n_cells,
        failure_rate=flaky_failure_rate,
        retries=retries,
        baseline_seconds=flaky_baseline_seconds,
        resilient_seconds=flaky_resilient_seconds,
        baseline_degraded=flaky_baseline_run.diagnostics.degraded_cells,
        resilient_degraded=flaky_resilient_run.diagnostics.degraded_cells,
        search_retries=flaky_resilient_run.diagnostics.search_retries,
        repaired_cells=flaky_resilient_run.diagnostics.repaired_cells,
        breaker_opens=flaky_resilient_run.diagnostics.breaker_opens,
    )

    # -- index-backend scenario ---------------------------------------------------------
    # Both arms run under ``spawn`` deliberately: under ``fork`` the
    # in-memory backend rides copy-on-write and its per-worker cost is
    # invisible until pages dirty, whereas ``spawn`` makes each pool pay
    # its true shipping bill -- a full annotator pickle per worker for
    # the in-memory backend, a path string for the frozen artifact.
    mmap_base = flaky_base + flaky_tables * flaky_rows
    mmap_corpus = [
        _corpus_tables(
            context, 1, mmap_rows, start=mmap_base + index * mmap_rows
        )[0]
        for index in range(mmap_tables)
    ]
    if engine.index.backend_name == "memory":
        memory_index = engine.index
    elif swapped_memory_index is not None:
        memory_index = swapped_memory_index
    else:
        # The context arrived already mmap-backed (CLI-built artifact):
        # reconstruct an in-memory twin from the shared page store so
        # the comparison still has its baseline arm.
        memory_index = InvertedIndex(title_boost=engine.index.title_boost)
        memory_index.add_many(
            engine.index.page(doc_id)
            for doc_id in range(engine.index.n_documents)
        )

    def _backend_arm(arm_engine):
        """One timed spawn-pool run over *arm_engine*'s index backend."""
        arm_engine.reset_compute_caches()
        annotator = EntityAnnotator(
            context.classifiers["svm"], arm_engine, config
        )
        payload_bytes = len(pickle.dumps(annotator, pickle.HIGHEST_PROTOCOL))
        start = time.perf_counter()
        run = annotate_tables_parallel(
            annotator,
            mmap_corpus,
            ALL_TYPE_KEYS,
            workers=workers,
            start_method="spawn",
        )
        seconds = time.perf_counter() - start
        loads = [load for load in run.diagnostics.worker_loads if load.n_tasks]
        return run, payload_bytes, seconds, loads

    def _mean(values) -> float:
        values = list(values)
        return sum(values) / len(values) if values else 0.0

    mmap_dir = tempfile.mkdtemp(prefix="repro-throughput-mmap-")
    try:
        artifact_path = os.path.join(mmap_dir, "index.reproidx")
        start = time.perf_counter()
        build_index_artifact(memory_index, artifact_path)
        build_seconds = time.perf_counter() - start
        artifact_bytes = os.stat(artifact_path).st_size
        frozen_index = FrozenMmapIndex.open(artifact_path)

        memory_engine = SearchEngine(
            clock=VirtualClock(),
            latency_seconds=engine.latency_seconds,
            parameters=engine.parameters,
            index=memory_index,
        )
        reference_run = EntityAnnotator(
            context.classifiers["svm"], memory_engine, config
        ).annotate_tables(mmap_corpus, ALL_TYPE_KEYS)

        memory_run, memory_payload, memory_seconds, memory_loads = _backend_arm(
            memory_engine
        )

        mmap_engine = SearchEngine(
            clock=VirtualClock(),
            latency_seconds=engine.latency_seconds,
            parameters=engine.parameters,
            index=frozen_index,
        )
        mmap_run, mmap_payload, mmap_seconds, mmap_loads = _backend_arm(
            mmap_engine
        )
    finally:
        shutil.rmtree(mmap_dir, ignore_errors=True)

    mmap_result = MmapBackendThroughput(
        n_tables=mmap_tables,
        n_rows=mmap_rows,
        n_cells=reference_run.diagnostics.n_cells,
        workers=workers,
        n_pages=memory_index.n_documents,
        artifact_bytes=artifact_bytes,
        build_seconds=build_seconds,
        memory_payload_bytes=memory_payload,
        mmap_payload_bytes=mmap_payload,
        memory_attach_rss_kb=_mean(load.attach_rss_kb for load in memory_loads),
        mmap_attach_rss_kb=_mean(load.attach_rss_kb for load in mmap_loads),
        memory_attach_seconds=_mean(load.attach_seconds for load in memory_loads),
        mmap_attach_seconds=_mean(load.attach_seconds for load in mmap_loads),
        memory_peak_rss_kb=_mean(load.peak_rss_kb for load in memory_loads),
        mmap_peak_rss_kb=_mean(load.peak_rss_kb for load in mmap_loads),
        memory_seconds=memory_seconds,
        mmap_seconds=mmap_seconds,
        identical=memory_run == reference_run and mmap_run == reference_run,
    )

    # -- cache-backend scenario ---------------------------------------------------------
    # Same spawn rationale as the index-backend scenario: under fork the
    # warm start can hide behind copy-on-write pages, whereas spawn
    # makes every worker pay its true cache-load bill -- whole pickled
    # files for the memory backend, store manifests plus append logs
    # for the sharded disk stores.  Both pools warm-start from state
    # seeded by one cold run.
    from repro.core.annotator import ENGINE_CACHE_FILE, LABEL_MEMO_FILE

    disk_base = mmap_base + mmap_tables * mmap_rows
    disk_corpus = [
        _corpus_tables(
            context, 1, disk_cache_rows, start=disk_base + index * disk_cache_rows
        )[0]
        for index in range(disk_cache_tables)
    ]
    memory_cache_config = AnnotatorConfig(cache_buckets=cache_buckets)
    disk_cache_config = AnnotatorConfig(
        cache_backend="disk", cache_buckets=cache_buckets
    )

    def _cold_engine() -> None:
        """Reset the shared engine to a cold, store-free state."""
        engine.reset_compute_caches()
        if engine.results_store is not None:
            engine.detach_results_store()

    def _cache_arm(arm_config, arm_cache_dir):
        """One timed spawn-pool warm start over *arm_config*'s backend."""
        _cold_engine()
        annotator = EntityAnnotator(
            context.classifiers["svm"], engine, arm_config
        )
        start = time.perf_counter()
        run = annotate_tables_parallel(
            annotator,
            disk_corpus,
            ALL_TYPE_KEYS,
            workers=workers,
            start_method="spawn",
            cache_dir=arm_cache_dir,
        )
        seconds = time.perf_counter() - start
        loads = [load for load in run.diagnostics.worker_loads if load.n_tasks]
        return run, seconds, loads

    def _bucket_mtimes(root) -> dict[str, int]:
        """Bucket file -> ``st_mtime_ns`` for every store under *root*."""
        return {
            str(path): os.stat(path).st_mtime_ns
            for store in sorted(Path(root).glob("*.cachestore"))
            for path in sorted(store.glob("bucket-*.reprocache"))
        }

    cache_scenario_dir = tempfile.mkdtemp(prefix="repro-throughput-diskcache-")
    try:
        legacy_dir = os.path.join(cache_scenario_dir, "memory")
        store_dir = os.path.join(cache_scenario_dir, "disk")
        os.makedirs(legacy_dir)
        os.makedirs(store_dir)

        # One cold seeding run populates both warm-start directories:
        # the sharded stores directly (flush, then delta compaction),
        # the legacy pickled-dict files from the same in-memory state.
        _cold_engine()
        seed_annotator = EntityAnnotator(
            context.classifiers["svm"], engine, disk_cache_config
        )
        cache_reference_run = seed_annotator.annotate_tables(
            disk_corpus, ALL_TYPE_KEYS, cache_dir=store_dir
        )
        seed_annotator.compact_caches()
        seed_annotator.engine.save_results_cache(
            os.path.join(legacy_dir, ENGINE_CACHE_FILE)
        )
        seed_annotator.cell_annotator.save_label_memo(
            os.path.join(legacy_dir, LABEL_MEMO_FILE)
        )
        store_bytes = sum(
            os.stat(os.path.join(dirpath, name)).st_size
            for dirpath, _dirnames, filenames in os.walk(store_dir)
            for name in filenames
        )

        memory_cache_run, memory_cache_seconds, memory_cache_loads = _cache_arm(
            memory_cache_config, legacy_dir
        )
        disk_cache_run, disk_cache_seconds, disk_cache_loads = _cache_arm(
            disk_cache_config, store_dir
        )

        # Growth phase: a grown corpus annotated against the warm store.
        # A fresh *start* alone shares query signatures with the seeded
        # corpus by design (see :func:`_corpus_tables`), so growth here
        # means wider tables drawing *new entities* from the directory:
        # their queries, windows and snippets are genuinely absent from
        # the store.  The flush appends those entries to the delta logs;
        # compaction folds the logs into only the buckets the new
        # entries hash to, leaving every other bucket file untouched.
        delta_tables = max(1, disk_cache_tables // 3)
        delta_rows = min(
            disk_cache_rows + max(2, disk_cache_rows // 5),
            len(context.world.table_entities("restaurant")),
        )
        delta_base = disk_base + disk_cache_tables * disk_cache_rows
        delta_corpus = [
            _corpus_tables(
                context,
                1,
                delta_rows,
                start=delta_base + index * delta_rows,
            )[0]
            for index in range(delta_tables)
        ]
        _cold_engine()
        delta_reference_run = EntityAnnotator(
            context.classifiers["svm"], engine, memory_cache_config
        ).annotate_tables(delta_corpus, ALL_TYPE_KEYS)
        _cold_engine()
        delta_annotator = EntityAnnotator(
            context.classifiers["svm"], engine, disk_cache_config
        )
        delta_run = delta_annotator.annotate_tables(
            delta_corpus, ALL_TYPE_KEYS, cache_dir=store_dir
        )
        before_mtimes = _bucket_mtimes(store_dir)
        delta_annotator.compact_caches()
        after_mtimes = _bucket_mtimes(store_dir)
        delta_rewritten = sum(
            1
            for path, mtime in after_mtimes.items()
            if before_mtimes.get(path) != mtime
        )
    finally:
        if engine.results_store is not None:
            engine.detach_results_store()
        shutil.rmtree(cache_scenario_dir, ignore_errors=True)

    disk_cache_result = DiskCacheThroughput(
        n_tables=disk_cache_tables,
        n_rows=disk_cache_rows,
        n_cells=cache_reference_run.diagnostics.n_cells,
        workers=workers,
        store_bytes=store_bytes,
        memory_load_bytes=_mean(
            load.cache_load_bytes for load in memory_cache_loads
        ),
        disk_load_bytes=_mean(
            load.cache_load_bytes for load in disk_cache_loads
        ),
        memory_attach_seconds=_mean(
            load.attach_seconds for load in memory_cache_loads
        ),
        disk_attach_seconds=_mean(
            load.attach_seconds for load in disk_cache_loads
        ),
        memory_peak_rss_kb=_mean(load.peak_rss_kb for load in memory_cache_loads),
        disk_peak_rss_kb=_mean(load.peak_rss_kb for load in disk_cache_loads),
        memory_seconds=memory_cache_seconds,
        disk_seconds=disk_cache_seconds,
        delta_tables=delta_tables,
        delta_buckets_rewritten=delta_rewritten,
        delta_buckets_total=len(after_mtimes),
        identical=(
            memory_cache_run == cache_reference_run
            and disk_cache_run == cache_reference_run
            and delta_run == delta_reference_run
        ),
    )

    if swapped_memory_index is not None:
        # Hand the context back the mutable backend it arrived with (the
        # digest check inside use_index_backend guarantees nothing
        # drifted) and drop the temporary artifact.
        engine.use_index_backend(swapped_memory_index)
        shutil.rmtree(swap_dir, ignore_errors=True)

    return ThroughputResult(
        rows=rows,
        tables_per_size=stream_length,
        corpus=corpus_result,
        parallel=parallel_result,
        skewed=skewed_result,
        service=service_result,
        flaky=flaky_result,
        mmap=mmap_result,
        disk_cache=disk_cache_result,
    )


# ======================================================================== X1


@dataclass
class CoverageResult:
    """Catalogue coverage of the table entities (the 22 % claim, §1)."""

    overall: float
    per_type: dict[str, float]

    def render(self) -> str:
        rows: list[list[object]] = [
            [spec.display, self.per_type.get(spec.key)] for spec in TYPE_SPECS
        ]
        rows.append(["OVERALL", self.overall])
        table = format_table(
            ["Type", "Coverage"],
            rows,
            title="Coverage of table entities in the open-data catalogue",
        )
        return f"{table}\n(the paper reports 22% across Yago/DBpedia/Freebase)"


def run_coverage(context: ExperimentContext) -> CoverageResult:
    """Measure how many table entities a pre-compiled catalogue knows."""
    catalogue = context.world.catalogue
    per_type = {}
    for spec in TYPE_SPECS:
        names = [e.table_name for e in context.world.table_entities(spec.key)]
        per_type[spec.key] = catalogue.coverage(names)
    overall = catalogue.coverage(context.world.all_table_entity_names())
    return CoverageResult(overall=overall, per_type=per_type)


# ======================================================================== Figure 6


@dataclass
class Figure6Result:
    """Category network excerpt and the pruning heuristic's effect."""

    root: str
    descendants: list[str]
    kept: list[str]
    dropped: list[str]
    n_positive_entities: int

    def render(self) -> str:
        lines = [f"Figure 6: category network rooted at {self.root!r}"]
        for name in self.descendants:
            marker = "+" if name in set(self.kept) else "x"
            lines.append(f"  [{marker}] {self.root} contains {name}")
        lines.append(
            f"kept {len(self.kept)}/{len(self.descendants)} subcategories, "
            f"{self.n_positive_entities} positive entities"
        )
        return "\n".join(lines)


def run_figure6(
    context: ExperimentContext, root: str = "Museums", type_word: str = "museum"
) -> Figure6Result:
    """Regenerate the Figure 6 artefact: the walk + heuristic under a root."""
    kb = context.world.kb
    descendants = kb.categories.descendants(root)
    kept = kb.categories.filter_by_type_name(descendants, type_word)
    dropped = [name for name in descendants if name not in set(kept)]
    entities = kb.positive_entities(root, type_word)
    return Figure6Result(
        root=root,
        descendants=descendants,
        kept=kept,
        dropped=dropped,
        n_positive_entities=len(entities),
    )


# ======================================================================== Figure 7


@dataclass
class Figure7Result:
    """Chosen interpretations and scores for the paper's Figure 7 example."""

    chosen: dict[tuple[int, int], str]
    scores: dict[tuple[int, int], dict[str, float]]
    iterations: int

    def render(self) -> str:
        lines = [
            "Figure 7: toponym disambiguation on the paper's example "
            f"(converged in {self.iterations} iterations)"
        ]
        for cell in sorted(self.chosen):
            lines.append(f"  T{cell} -> {self.chosen[cell]}")
            for name, score in sorted(
                self.scores[cell].items(), key=lambda item: -item[1]
            ):
                lines.append(f"      {score:.3f}  {name}")
        return "\n".join(lines)


FIGURE7_CELLS: dict[tuple[int, int], str] = {
    (12, 1): "1600 Pennsylvania Ave",
    (12, 2): "Washington",
    (13, 1): "Wofford Ln",
    (13, 2): "College Park",
    (20, 1): "Clarksville St",
    (20, 2): "Paris",
}


def run_figure7(context: ExperimentContext) -> Figure7Result:
    """Regenerate Figure 7: resolve the paper's six ambiguous cells."""
    from repro.core.disambiguation import ToponymDisambiguator

    geocoder = context.world.geocoder
    interpretations = {
        cell: geocoder.geocode(text) for cell, text in FIGURE7_CELLS.items()
    }
    outcome = ToponymDisambiguator().resolve(interpretations)
    chosen = {
        cell: location.full_name for cell, location in outcome.chosen.items()
    }
    return Figure7Result(
        chosen=chosen, scores=outcome.scores, iterations=outcome.iterations
    )
