"""Error analysis: where an annotation run loses precision and recall.

Turns a run + gold standard into actionable breakdowns:

* every gold reference is classified as **correct**, **wrong-type**
  (annotated with another type) or **missed** (not annotated at all);
* every false positive is recorded with its cell value and column, so
  systematic FP sources (a label column, a notes column) stand out;
* per-type summaries aggregate both views.

This is the tool one reaches for when a Table 1 number moves: it shows
*which cells* moved it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.results import AnnotationRun
from repro.eval.gold import GoldStandard
from repro.eval.reporting import format_table

CORRECT = "correct"
WRONG_TYPE = "wrong-type"
MISSED = "missed"


@dataclass(frozen=True)
class GoldOutcome:
    """What happened to one gold reference."""

    table_name: str
    row: int
    column: int
    gold_type: str
    cell_value: str
    outcome: str
    predicted_type: str | None = None


@dataclass(frozen=True)
class FalsePositive:
    """One annotation on a non-gold cell (or gold cell of another type)."""

    table_name: str
    row: int
    column: int
    predicted_type: str
    cell_value: str
    gold_type: str | None = None


@dataclass
class ErrorReport:
    """Full error breakdown of a run."""

    gold_outcomes: list[GoldOutcome] = field(default_factory=list)
    false_positives: list[FalsePositive] = field(default_factory=list)

    # -- aggregation ---------------------------------------------------------------

    def outcome_counts(self, type_key: str | None = None) -> dict[str, int]:
        """correct / wrong-type / missed counts, optionally for one type."""
        counts = {CORRECT: 0, WRONG_TYPE: 0, MISSED: 0}
        for outcome in self.gold_outcomes:
            if type_key is not None and outcome.gold_type != type_key:
                continue
            counts[outcome.outcome] += 1
        return counts

    def false_positives_of(self, type_key: str) -> list[FalsePositive]:
        return [fp for fp in self.false_positives if fp.predicted_type == type_key]

    def fp_columns(self, type_key: str) -> dict[tuple[str, int], int]:
        """(table, column) -> FP count; exposes systematic FP sources."""
        counts: dict[tuple[str, int], int] = {}
        for fp in self.false_positives_of(type_key):
            key = (fp.table_name, fp.column)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def misses(self, type_key: str) -> list[GoldOutcome]:
        return [
            o for o in self.gold_outcomes
            if o.gold_type == type_key and o.outcome == MISSED
        ]

    def confusions(self) -> dict[tuple[str, str], int]:
        """(gold type, predicted type) -> count for wrong-type outcomes."""
        counts: dict[tuple[str, str], int] = {}
        for outcome in self.gold_outcomes:
            if outcome.outcome == WRONG_TYPE and outcome.predicted_type:
                key = (outcome.gold_type, outcome.predicted_type)
                counts[key] = counts.get(key, 0) + 1
        return counts

    # -- rendering ------------------------------------------------------------------

    def render(self, type_keys: list[str] | None = None) -> str:
        if type_keys is None:
            type_keys = sorted({o.gold_type for o in self.gold_outcomes})
        rows = []
        for type_key in type_keys:
            counts = self.outcome_counts(type_key)
            rows.append(
                [
                    type_key,
                    counts[CORRECT],
                    counts[WRONG_TYPE],
                    counts[MISSED],
                    len(self.false_positives_of(type_key)),
                ]
            )
        table = format_table(
            ["Type", "Correct", "Wrong type", "Missed", "False positives"],
            rows,
            title="Error analysis",
        )
        confusions = self.confusions()
        if confusions:
            worst = sorted(confusions.items(), key=lambda kv: -kv[1])[:5]
            lines = [
                f"  {gold} -> {predicted}: {count}"
                for (gold, predicted), count in worst
            ]
            table += "\ntop confusions:\n" + "\n".join(lines)
        return table


def analyse_errors(run: AnnotationRun, gold: GoldStandard) -> ErrorReport:
    """Build the :class:`ErrorReport` for *run* against *gold*."""
    report = ErrorReport()
    annotated: dict[tuple[str, int, int], str] = {}
    for cell in run.all_cells():
        annotated[(cell.table_name, cell.row, cell.column)] = cell.type_key
    for reference in gold.references:
        key = (reference.table_name, reference.row, reference.column)
        predicted = annotated.get(key)
        if predicted is None:
            outcome = MISSED
        elif predicted == reference.type_key:
            outcome = CORRECT
        else:
            outcome = WRONG_TYPE
        report.gold_outcomes.append(
            GoldOutcome(
                table_name=reference.table_name,
                row=reference.row,
                column=reference.column,
                gold_type=reference.type_key,
                cell_value=reference.cell_value,
                outcome=outcome,
                predicted_type=predicted,
            )
        )
    for cell in run.all_cells():
        reference = gold.lookup(cell.table_name, cell.row, cell.column)
        if reference is None or reference.type_key != cell.type_key:
            report.false_positives.append(
                FalsePositive(
                    table_name=cell.table_name,
                    row=cell.row,
                    column=cell.column,
                    predicted_type=cell.type_key,
                    cell_value=cell.cell_value,
                    gold_type=reference.type_key if reference else None,
                )
            )
    return report
