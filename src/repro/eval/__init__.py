"""Evaluation: gold standards, scoring and the paper's experiments.

* :mod:`repro.eval.gold` -- gold-standard containers;
* :mod:`repro.eval.evaluator` -- P/R/F scoring of annotation runs
  (Section 6.2's definitions);
* :mod:`repro.eval.experiments` -- one callable per paper artefact
  (Tables 1-3, the Section 6.3 comparison, Section 6.4 efficiency,
  Figures 6-7, the 22 % coverage claim);
* :mod:`repro.eval.reporting` -- plain-text rendering of result tables.
"""

from repro.eval.error_analysis import ErrorReport, analyse_errors
from repro.eval.evaluator import EvaluationResult, evaluate_annotations
from repro.eval.gold import GoldEntityReference, GoldStandard
from repro.eval.significance import ConfidenceInterval, bootstrap_f1

__all__ = [
    "ConfidenceInterval",
    "ErrorReport",
    "EvaluationResult",
    "GoldEntityReference",
    "GoldStandard",
    "analyse_errors",
    "bootstrap_f1",
    "evaluate_annotations",
]
