"""Bootstrap confidence intervals for annotation F-measures.

The paper reports point estimates; a production evaluation should also say
how stable they are.  This module resamples the *gold references* with
replacement (the cell population defines both recall's denominator and the
matching precision hits) and recomputes P/R/F per resample, yielding
percentile confidence intervals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.classify.metrics import f_measure
from repro.core.results import AnnotationRun, CellAnnotation
from repro.eval.gold import GoldStandard


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided percentile interval around a point estimate."""

    point: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    def width(self) -> float:
        return self.high - self.low


def bootstrap_f1(
    annotations: AnnotationRun | list[CellAnnotation],
    gold: GoldStandard,
    type_key: str,
    n_resamples: int = 500,
    confidence: float = 0.95,
    seed: int = 13,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI for one type's F-measure.

    Resamples gold references of *type_key* with replacement; false
    positives (annotations on non-gold cells) are resampled as their own
    population, keeping precision honest.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 1:
        raise ValueError(f"n_resamples must be >= 1, got {n_resamples}")
    if isinstance(annotations, AnnotationRun):
        cells = list(annotations.all_cells())
    else:
        cells = list(annotations)
    predicted = [cell for cell in cells if cell.type_key == type_key]
    gold_refs = [ref for ref in gold.references if ref.type_key == type_key]
    gold_cells = {(ref.table_name, ref.row, ref.column) for ref in gold_refs}
    hits = {
        (ref.table_name, ref.row, ref.column): False for ref in gold_refs
    }
    false_positives = 0
    for cell in predicted:
        key = (cell.table_name, cell.row, cell.column)
        if key in gold_cells:
            hits[key] = True
        else:
            false_positives += 1
    point = _f_from_counts(
        sum(hits.values()), sum(hits.values()) + false_positives, len(gold_refs)
    )
    rng = random.Random(seed)
    hit_flags = [hits[(r.table_name, r.row, r.column)] for r in gold_refs]
    samples = []
    for _ in range(n_resamples):
        if hit_flags:
            resampled_hits = sum(
                hit_flags[rng.randrange(len(hit_flags))] for _ in hit_flags
            )
        else:
            resampled_hits = 0
        # False positives sit outside the gold population, so their count
        # stays fixed across resamples; only the hit/miss pattern over the
        # gold cells varies.
        samples.append(
            _f_from_counts(
                resampled_hits, resampled_hits + false_positives, len(hit_flags)
            )
        )
    samples.sort()
    alpha = (1.0 - confidence) / 2.0
    low_index = max(0, int(alpha * n_resamples) - 1)
    high_index = min(n_resamples - 1, int((1.0 - alpha) * n_resamples))
    return ConfidenceInterval(
        point=point,
        low=samples[low_index],
        high=samples[high_index],
        confidence=confidence,
    )


def _f_from_counts(n_correct: int, n_predicted: int, n_gold: int) -> float:
    precision = n_correct / n_predicted if n_predicted else 0.0
    recall = n_correct / n_gold if n_gold else 0.0
    return f_measure(precision, recall)
