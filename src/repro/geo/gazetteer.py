"""A world gazetteer: the name index behind the geocoder.

Holds countries, states, cities and streets, indexed by normalised name.
Ambiguity is first-class: ``find_cities("Paris")`` returns Paris TX, Paris
TN and Paris, France side by side, exactly the situation the Figure 7
disambiguation graph resolves.
"""

from __future__ import annotations

import re

from repro.geo.model import GeoLocation, LocationKind

_STREET_SUFFIX_ALIASES = {
    "ave": "avenue",
    "av": "avenue",
    "blvd": "boulevard",
    "dr": "drive",
    "ln": "lane",
    "rd": "road",
    "st": "street",
    "sq": "square",
}

_PUNCT_RE = re.compile(r"[^\w\s]")
_WHITESPACE_RE = re.compile(r"\s+")


def _normalize(name: str) -> str:
    lowered = _PUNCT_RE.sub(" ", name.lower())
    return _WHITESPACE_RE.sub(" ", lowered).strip()


def normalize_street_name(name: str) -> str:
    """Normalise a street name, expanding suffix abbreviations.

    >>> normalize_street_name("Pennsylvania Ave.")
    'pennsylvania avenue'
    """
    tokens = _normalize(name).split()
    if tokens and tokens[-1] in _STREET_SUFFIX_ALIASES:
        tokens[-1] = _STREET_SUFFIX_ALIASES[tokens[-1]]
    return " ".join(tokens)


class Gazetteer:
    """Registry of locations with ambiguous-name lookup."""

    def __init__(self) -> None:
        self._countries: dict[str, GeoLocation] = {}
        self._states: dict[str, list[GeoLocation]] = {}
        self._cities: dict[str, list[GeoLocation]] = {}
        self._streets: dict[str, list[GeoLocation]] = {}
        self._all: list[GeoLocation] = []

    # -- registration --------------------------------------------------------------

    def add_country(self, name: str) -> GeoLocation:
        """Register a country; duplicate names return the existing one."""
        key = _normalize(name)
        if key in self._countries:
            return self._countries[key]
        country = GeoLocation(name=name, kind=LocationKind.COUNTRY)
        self._countries[key] = country
        self._all.append(country)
        return country

    def add_state(self, name: str, country: GeoLocation) -> GeoLocation:
        """Register a state inside *country* (idempotent per pair)."""
        state = GeoLocation(name=name, kind=LocationKind.STATE, container=country)
        return self._register(self._states, _normalize(name), state)

    def add_city(self, name: str, state: GeoLocation) -> GeoLocation:
        """Register a city inside *state* (idempotent per pair)."""
        city = GeoLocation(name=name, kind=LocationKind.CITY, container=state)
        return self._register(self._cities, _normalize(name), city)

    def add_street(self, name: str, city: GeoLocation) -> GeoLocation:
        """Register a street inside *city* (idempotent per pair)."""
        street = GeoLocation(name=name, kind=LocationKind.STREET, container=city)
        return self._register(self._streets, normalize_street_name(name), street)

    def _register(
        self, index: dict[str, list[GeoLocation]], key: str, location: GeoLocation
    ) -> GeoLocation:
        bucket = index.setdefault(key, [])
        for existing in bucket:
            if existing == location:
                return existing
        bucket.append(location)
        self._all.append(location)
        return location

    # -- lookup ----------------------------------------------------------------------

    def find_country(self, name: str) -> GeoLocation | None:
        """Country by name, or ``None``."""
        return self._countries.get(_normalize(name))

    def find_states(self, name: str) -> list[GeoLocation]:
        """All states with this name (can be ambiguous across countries)."""
        return list(self._states.get(_normalize(name), []))

    def find_cities(self, name: str) -> list[GeoLocation]:
        """All cities with this name -- Paris TX / Paris TN / Paris, France."""
        return list(self._cities.get(_normalize(name), []))

    def find_streets(self, name: str) -> list[GeoLocation]:
        """All streets with this (suffix-normalised) name across all cities."""
        return list(self._streets.get(normalize_street_name(name), []))

    def locations(self) -> list[GeoLocation]:
        """Every registered location, in registration order."""
        return list(self._all)

    def __len__(self) -> int:
        return len(self._all)

    # -- statistics --------------------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Number of registered locations per kind."""
        result = {kind.value: 0 for kind in LocationKind}
        for location in self._all:
            result[location.kind.value] += 1
        return result
