"""The Google Geocoding API stand-in.

Given free-text spatial content from a table cell, the geocoder "parses an
address and breaks it down into different components, such as street, city,
state and country, each identifying a geographic location" (Section 5.2.2).
Crucially, a *partial* address returns **all** plausible interpretations --
the ambiguity the voting graph of Figure 7 resolves.

Each geocoding request charges its configured latency to a
:class:`~repro.clock.VirtualClock`, feeding the Section 6.4 efficiency
model.
"""

from __future__ import annotations

import re

from repro.clock import VirtualClock
from repro.geo.gazetteer import Gazetteer
from repro.geo.model import GeoLocation, LocationKind

_LEADING_NUMBER_RE = re.compile(r"^\s*\d+\s+")
_ZIP_RE = re.compile(r"\b\d{4,6}\b")

DEFAULT_GEOCODER_LATENCY = 0.2
"""Virtual seconds charged per geocoding request."""


class Geocoder:
    """Gazetteer-backed address resolution with ambiguity."""

    def __init__(
        self,
        gazetteer: Gazetteer,
        clock: VirtualClock | None = None,
        latency_seconds: float = DEFAULT_GEOCODER_LATENCY,
    ) -> None:
        self.gazetteer = gazetteer
        self.clock = clock or VirtualClock()
        self.latency_seconds = latency_seconds

    # -- public API -----------------------------------------------------------------

    def geocode(self, text: str) -> list[GeoLocation]:
        """All candidate interpretations of *text*, most specific kind first.

        Resolution strategy, mirroring the hierarchy of the real API:

        1. strip a leading street number and any zip code;
        2. split the remainder on commas into components;
        3. resolve the first component as street, then city, then state,
           then country -- first level with matches wins;
        4. remaining components, when present, filter the candidates by
           containment (a trailing "Washington, D.C." keeps only streets in
           that city).

        Returns an empty list when nothing matches.
        """
        self.clock.charge(self.latency_seconds)
        cleaned = _ZIP_RE.sub(" ", _LEADING_NUMBER_RE.sub("", text, count=1))
        components = [part.strip() for part in cleaned.split(",")]
        components = [part for part in components if part]
        if not components:
            return []
        head, *rest = components
        candidates = self._resolve_component(head)
        for component in rest:
            refined = self._filter_by_context(candidates, component)
            if refined:
                candidates = refined
        return candidates

    def resolve_city(self, text: str) -> list[GeoLocation]:
        """Interpretations of a city reference such as "Paris" or "Paris, TX"."""
        self.clock.charge(self.latency_seconds)
        components = [part.strip() for part in text.split(",") if part.strip()]
        if not components:
            return []
        head, *rest = components
        candidates = self.gazetteer.find_cities(head)
        for component in rest:
            refined = self._filter_by_context(candidates, component)
            if refined:
                candidates = refined
        return candidates

    # -- internals ---------------------------------------------------------------------

    def _resolve_component(self, component: str) -> list[GeoLocation]:
        streets = self.gazetteer.find_streets(component)
        if streets:
            return streets
        cities = self.gazetteer.find_cities(component)
        if cities:
            return cities
        states = self.gazetteer.find_states(component)
        if states:
            return states
        country = self.gazetteer.find_country(component)
        if country is not None:
            return [country]
        return []

    def _filter_by_context(
        self, candidates: list[GeoLocation], component: str
    ) -> list[GeoLocation]:
        """Keep candidates contained in any location named *component*."""
        context: list[GeoLocation] = []
        context.extend(self.gazetteer.find_cities(component))
        context.extend(self.gazetteer.find_states(component))
        country = self.gazetteer.find_country(component)
        if country is not None:
            context.append(country)
        if not context:
            return []
        filtered = [
            candidate
            for candidate in candidates
            if any(
                container.contains(candidate) or container == candidate
                for container in context
            )
        ]
        return filtered

    # -- convenience -------------------------------------------------------------------

    def city_of(self, location: GeoLocation) -> GeoLocation | None:
        """The city in *location*'s chain (itself when it is a city)."""
        if location.kind is LocationKind.CITY:
            return location
        for container in location.containers:
            if container.kind is LocationKind.CITY:
                return container
        return None
