"""Postal addresses: formatting and the partial forms found in tables.

The paper notes that "in many tables we came across, addresses are
incomplete, and just report the street number and name and, possibly, the
zip code", which is precisely what makes geocoding ambiguous.  ``Address``
can render itself at several levels of completeness so the synthetic table
generator can plant both full and partial addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.model import GeoLocation, LocationKind


@dataclass(frozen=True)
class Address:
    """A street-level postal address anchored to a gazetteer street."""

    street_number: int
    street: GeoLocation
    zip_code: str | None = None

    def __post_init__(self) -> None:
        if self.street.kind is not LocationKind.STREET:
            raise ValueError(
                f"Address needs a street location, got {self.street.kind.value}"
            )
        if self.street_number < 1:
            raise ValueError(f"street number must be >= 1, got {self.street_number}")

    @property
    def city(self) -> GeoLocation:
        """The city containing the street."""
        assert self.street.container is not None
        return self.street.container

    # -- rendering ------------------------------------------------------------------

    def partial(self) -> str:
        """Street number + name only: "1600 Pennsylvania Avenue"."""
        return f"{self.street_number} {self.street.name}"

    def partial_with_zip(self) -> str:
        """Street number + name + zip, still no city."""
        if self.zip_code is None:
            return self.partial()
        return f"{self.partial()} {self.zip_code}"

    def with_city(self) -> str:
        """Street number + name + city: enough to geocode unambiguously."""
        return f"{self.partial()}, {self.city.name}"

    def full(self) -> str:
        """Complete form including state and country."""
        chain = ", ".join(c.name for c in self.street.containers)
        text = f"{self.street_number} {self.street.name}, {chain}"
        if self.zip_code is not None:
            text = f"{text} {self.zip_code}"
        return text

    def __str__(self) -> str:
        return self.full()
