"""Geographic locations and their containment hierarchy.

The paper (Section 5.2.2): "Such geographic locations are in a containment
relationship ... streets are contained by cities, which are contained by
states which in turn are contained by countries.  Since the containment is a
hierarchical relationship, any geographic location has a direct or most
specific container and indirect or less specific containers."
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import cached_property


class LocationKind(Enum):
    """The four levels of the containment hierarchy."""

    COUNTRY = "country"
    STATE = "state"
    CITY = "city"
    STREET = "street"


_CONTAINER_KIND = {
    LocationKind.STREET: LocationKind.CITY,
    LocationKind.CITY: LocationKind.STATE,
    LocationKind.STATE: LocationKind.COUNTRY,
    LocationKind.COUNTRY: None,
}


@dataclass(frozen=True)
class GeoLocation:
    """One node of the containment hierarchy.

    ``container`` is the direct (most specific) container; transitive
    containers are reachable through it.  Countries have no container.
    """

    name: str
    kind: LocationKind
    container: "GeoLocation | None" = None

    def __post_init__(self) -> None:
        expected = _CONTAINER_KIND[self.kind]
        if expected is None:
            if self.container is not None:
                raise ValueError("a country cannot have a container")
        else:
            if self.container is None:
                raise ValueError(f"a {self.kind.value} needs a container")
            if self.container.kind is not expected:
                raise ValueError(
                    f"a {self.kind.value} must be contained by a "
                    f"{expected.value}, got {self.container.kind.value}"
                )

    @cached_property
    def containers(self) -> tuple["GeoLocation", ...]:
        """All containers, most specific first (city, state, country)."""
        chain = []
        current = self.container
        while current is not None:
            chain.append(current)
            current = current.container
        return tuple(chain)

    @property
    def full_name(self) -> str:
        """Display form: "Pennsylvania Avenue, Washington, D.C., USA"."""
        parts = [self.name, *(c.name for c in self.containers)]
        return ", ".join(parts)

    def contains(self, other: "GeoLocation") -> bool:
        """True when *self* is a (possibly indirect) container of *other*."""
        return self in other.containers

    def __str__(self) -> str:
        return self.full_name


def are_related(first: GeoLocation, second: GeoLocation) -> bool:
    """The edge condition of the Figure 7 voting graph.

    Two interpretations are related when they share the same direct
    geographic container, or when one *is* the direct container of the
    other.  The second clause covers the paper's own example: the street
    "Pennsylvania Ave, Washington, D.C." and the city "Washington, D.C."
    are said to "share the same geographic container, that is Washington,
    D.C." -- i.e. the city itself.
    """
    if first.container is not None and first.container == second.container:
        return True
    if first.container == second or second.container == first:
        return True
    return False
