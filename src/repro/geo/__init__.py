"""Geographic substrate: gazetteer, addresses and the geocoder stand-in.

Section 5.2.2 disambiguates search queries with spatial context obtained by
geocoding addresses found in the table.  The paper calls the Google
Geocoding API; we replace it with a gazetteer-backed
:class:`~repro.geo.geocoder.Geocoder` that reproduces the behaviour the
algorithm depends on: a partial address ("1600 Pennsylvania Avenue") maps to
*several* candidate interpretations whose containment chains (street < city
< state < country) feed the voting graph of Figure 7.
"""

from repro.geo.addresses import Address
from repro.geo.gazetteer import Gazetteer
from repro.geo.geocoder import Geocoder
from repro.geo.model import GeoLocation, LocationKind, are_related

__all__ = [
    "Address",
    "Gazetteer",
    "GeoLocation",
    "Geocoder",
    "LocationKind",
    "are_related",
]
