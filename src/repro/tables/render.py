"""Human-readable table rendering (plain text and Markdown).

Debugging the annotator means *looking at tables*: which cells were
annotated, what the gold says, where post-processing pruned.  These
renderers print a :class:`~repro.tables.model.Table` with optional per-cell
markers supplied by the caller.
"""

from __future__ import annotations

from typing import Callable

from repro.tables.model import Table

CellMarker = Callable[[int, int], str]
"""Given (row, column), return a marker suffix for the cell ('' for none)."""


def _marked_grid(table: Table, marker: CellMarker | None) -> list[list[str]]:
    grid = []
    for i, row in enumerate(table.rows):
        rendered_row = []
        for j, value in enumerate(row):
            suffix = marker(i, j) if marker is not None else ""
            rendered_row.append(f"{value}{suffix}")
        grid.append(rendered_row)
    return grid


def render_text(
    table: Table,
    marker: CellMarker | None = None,
    max_value_width: int = 28,
) -> str:
    """Fixed-width text rendering with typed headers.

    >>> from repro.tables.model import Column, Table
    >>> print(render_text(Table("t", [Column("A")], [["x"]])))
    t (1 x 1)
    A [Text]
    --------
    x
    """
    if max_value_width < 4:
        raise ValueError(f"max_value_width must be >= 4, got {max_value_width}")

    def clip(text: str) -> str:
        if len(text) <= max_value_width:
            return text
        return text[: max_value_width - 3] + "..."

    headers = [
        f"{column.name} [{column.column_type.value}]" for column in table.columns
    ]
    grid = [[clip(value) for value in row] for row in _marked_grid(table, marker)]
    widths = [len(header) for header in headers]
    for row in grid:
        for j, value in enumerate(row):
            widths[j] = max(widths[j], len(value))
    lines = [f"{table.name} ({table.n_rows} x {table.n_columns})"]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("-" * max(len(lines[-1]), 1))
    for row in grid:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def render_markdown(table: Table, marker: CellMarker | None = None) -> str:
    """GitHub-flavoured Markdown rendering.

    >>> from repro.tables.model import Column, Table
    >>> print(render_markdown(Table("t", [Column("A"), Column("B")], [["x", "y"]])))
    | A | B |
    | --- | --- |
    | x | y |
    """
    def escape(text: str) -> str:
        return text.replace("|", "\\|")

    lines = ["| " + " | ".join(escape(c.name) for c in table.columns) + " |"]
    lines.append("| " + " | ".join("---" for _ in table.columns) + " |")
    for row in _marked_grid(table, marker):
        lines.append("| " + " | ".join(escape(value) for value in row) + " |")
    return "\n".join(lines)


def annotation_marker(annotation) -> CellMarker:
    """A marker showing annotations: ``value <-type:score``.

    *annotation* is a :class:`~repro.core.results.TableAnnotation`.
    """
    index = {(cell.row, cell.column): cell for cell in annotation.cells}

    def marker(row: int, column: int) -> str:
        cell = index.get((row, column))
        if cell is None:
            return ""
        return f"  <-{cell.type_key}:{cell.score:.1f}"

    return marker
