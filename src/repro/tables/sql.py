"""A small SQL SELECT executor over in-memory tables.

Google Fusion Tables "provides an API that allows applications to query
tables by using SQL" (Section 3).  This module supports the subset the
paper's application needs::

    SELECT <columns | *> FROM <table-id>
        [WHERE <col> <op> <literal> [AND ...]]
        [LIMIT <n>]

with operators ``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=``, ``CONTAINS`` and
case-insensitive keywords.  Comparisons are numeric when both sides parse as
numbers, lexicographic otherwise -- the pragmatic behaviour of a typed but
string-backed store.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.tables.model import Table


class SqlError(ValueError):
    """Raised for malformed or unexecutable queries."""


@dataclass(frozen=True)
class Condition:
    """One WHERE clause: ``column op literal``."""

    column: str
    operator: str
    literal: str


@dataclass
class SelectQuery:
    """Parsed representation of a SELECT statement."""

    columns: list[str]  # empty list means '*'
    table_id: str
    conditions: list[Condition] = field(default_factory=list)
    limit: int | None = None


_SELECT_RE = re.compile(
    r"""
    ^\s*select\s+(?P<cols>.+?)
    \s+from\s+(?P<table>[\w.\-]+)
    (?:\s+where\s+(?P<where>.+?))?
    (?:\s+limit\s+(?P<limit>\d+))?
    \s*;?\s*$
    """,
    re.IGNORECASE | re.VERBOSE | re.DOTALL,
)

_CONDITION_RE = re.compile(
    r"""
    ^\s*(?P<col>'[^']+'|[\w\s]+?)
    \s*(?P<op>=|!=|<=|>=|<|>|contains)\s*
    (?P<lit>'[^']*'|[^\s]+)\s*$
    """,
    re.IGNORECASE | re.VERBOSE,
)

_OPERATORS = ("=", "!=", "<=", ">=", "<", ">", "contains")


def parse_select(sql: str) -> SelectQuery:
    """Parse *sql* into a :class:`SelectQuery`; raises :class:`SqlError`."""
    match = _SELECT_RE.match(sql)
    if match is None:
        raise SqlError(f"cannot parse query: {sql!r}")
    cols_text = match.group("cols").strip()
    if cols_text == "*":
        columns: list[str] = []
    else:
        columns = [_unquote(part.strip()) for part in cols_text.split(",")]
        if any(not column for column in columns):
            raise SqlError(f"empty column name in: {cols_text!r}")
    conditions = []
    where = match.group("where")
    if where:
        for clause in re.split(r"\s+and\s+", where, flags=re.IGNORECASE):
            cond_match = _CONDITION_RE.match(clause)
            if cond_match is None:
                raise SqlError(f"cannot parse WHERE clause: {clause!r}")
            operator = cond_match.group("op").lower()
            if operator not in _OPERATORS:
                raise SqlError(f"unsupported operator: {operator!r}")
            conditions.append(
                Condition(
                    column=_unquote(cond_match.group("col").strip()),
                    operator=operator,
                    literal=_unquote(cond_match.group("lit")),
                )
            )
    limit_text = match.group("limit")
    limit = int(limit_text) if limit_text else None
    return SelectQuery(
        columns=columns,
        table_id=match.group("table"),
        conditions=conditions,
        limit=limit,
    )


def _unquote(text: str) -> str:
    if len(text) >= 2 and text.startswith("'") and text.endswith("'"):
        return text[1:-1]
    return text


def _compare(left: str, operator: str, right: str) -> bool:
    if operator == "contains":
        return right.lower() in left.lower()
    left_num = _as_number(left)
    right_num = _as_number(right)
    if left_num is not None and right_num is not None:
        a, b = left_num, right_num
    else:
        a, b = left, right
    if operator == "=":
        return a == b
    if operator == "!=":
        return a != b
    if operator == "<":
        return a < b
    if operator == "<=":
        return a <= b
    if operator == ">":
        return a > b
    if operator == ">=":
        return a >= b
    raise SqlError(f"unsupported operator: {operator!r}")


def _as_number(text: str) -> float | None:
    try:
        return float(text)
    except ValueError:
        return None


def execute_sql(query: SelectQuery | str, table: Table) -> list[list[str]]:
    """Run a parsed or textual SELECT against *table*, returning result rows.

    The caller resolves ``query.table_id`` to *table*;
    :class:`~repro.tables.fusion.FusionTableService` does that resolution.
    """
    if isinstance(query, str):
        query = parse_select(query)
    if query.columns:
        indices = [table.column_index(name) for name in query.columns]
    else:
        indices = list(range(table.n_columns))
    condition_indices = [
        (table.column_index(cond.column), cond) for cond in query.conditions
    ]
    results: list[list[str]] = []
    for row in table.rows:
        if all(
            _compare(row[index], cond.operator, cond.literal)
            for index, cond in condition_indices
        ):
            results.append([row[index] for index in indices])
            if query.limit is not None and len(results) >= query.limit:
                break
    return results
