"""An in-memory Google Fusion Tables service.

Models the three GFT behaviours the paper exploits (Section 3): hosting
typed tables under stable identifiers, a keyword index that "favours the
retrieval of tables that contain information on specific types of POIs", and
the SQL query API.  The keyword index tokenises table names, column headers
and cell values, so a search for ``"restaurant"`` surfaces tables whose
content mentions restaurants even when the table name does not.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.tables.model import Table
from repro.tables.sql import SqlError, execute_sql, parse_select
from repro.text.tokenization import tokenize


@dataclass(frozen=True)
class HostedTable:
    """A table registered with the service, with its public identifier."""

    table_id: str
    table: Table


class FusionTableService:
    """Hosts tables, indexes their content, answers searches and SQL."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._keyword_index: dict[str, set[str]] = {}
        self._id_counter = itertools.count(1)

    # -- hosting -----------------------------------------------------------------

    def publish(self, table: Table) -> str:
        """Host *table* and return its assigned identifier (``gft-N``)."""
        table_id = f"gft-{next(self._id_counter)}"
        self._tables[table_id] = table
        self._index_table(table_id, table)
        return table_id

    def get(self, table_id: str) -> Table:
        """The table hosted under *table_id*; ``KeyError`` when unknown."""
        if table_id not in self._tables:
            raise KeyError(f"no table hosted under id {table_id!r}")
        return self._tables[table_id]

    def table_ids(self) -> list[str]:
        """All hosted identifiers, in publication order."""
        return sorted(self._tables, key=lambda tid: int(tid.split("-")[1]))

    def __len__(self) -> int:
        return len(self._tables)

    # -- keyword index --------------------------------------------------------------

    def _index_table(self, table_id: str, table: Table) -> None:
        tokens: set[str] = set(tokenize(table.name))
        for column in table.columns:
            tokens.update(tokenize(column.name))
        for row in table.rows:
            for value in row:
                tokens.update(tokenize(value))
        for token in tokens:
            self._keyword_index.setdefault(token, set()).add(table_id)

    def search(self, query: str) -> list[str]:
        """Identifiers of tables matching every keyword of *query*.

        Mirrors the GFT table-search box: conjunctive keyword match over
        table names, headers and cell content.  Results are returned in
        publication order for determinism.
        """
        keywords = tokenize(query)
        if not keywords:
            return []
        candidate_sets = [
            self._keyword_index.get(keyword, set()) for keyword in keywords
        ]
        matches = set.intersection(*candidate_sets) if candidate_sets else set()
        return sorted(matches, key=lambda tid: int(tid.split("-")[1]))

    # -- SQL API -----------------------------------------------------------------------

    def query(self, sql: str) -> list[list[str]]:
        """Execute a SELECT whose FROM clause names a hosted table id."""
        parsed = parse_select(sql)
        if parsed.table_id not in self._tables:
            raise SqlError(f"unknown table id in FROM clause: {parsed.table_id!r}")
        return execute_sql(parsed, self._tables[parsed.table_id])
