"""CSV and JSON serialisation for tables.

The CSV layout stores two header lines (column names, then GFT column
types), matching what a Fusion Tables export with explicit typing would
carry.  JSON stores the same information as a plain dictionary.  The
dictionary form is exposed directly (:func:`table_to_payload` /
:func:`table_from_payload`) so other JSON carriers -- the resident
service's wire protocol in :mod:`repro.service.protocol` -- embed tables
without double-encoding.
"""

from __future__ import annotations

import csv
import io
import json

from repro.tables.model import Column, ColumnType, Table


def table_to_csv(table: Table) -> str:
    """Serialise *table* to CSV text (names row, types row, then data)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(column.name for column in table.columns)
    writer.writerow(column.column_type.value for column in table.columns)
    for row in table.rows:
        writer.writerow(row)
    return buffer.getvalue()


def table_from_csv(text: str, name: str = "table") -> Table:
    """Parse the CSV layout produced by :func:`table_to_csv`."""
    reader = csv.reader(io.StringIO(text))
    try:
        names = next(reader)
        types = next(reader)
    except StopIteration as exc:
        raise ValueError("CSV table needs a names row and a types row") from exc
    if len(names) != len(types):
        raise ValueError(
            f"names row has {len(names)} fields but types row has {len(types)}"
        )
    columns = [
        Column(name=column_name, column_type=ColumnType.from_name(type_name))
        for column_name, type_name in zip(names, types)
    ]
    rows = [row for row in reader if row]
    return Table(name=name, columns=columns, rows=rows)


def table_to_payload(table: Table) -> dict:
    """*table* as a plain JSON-serialisable dictionary."""
    return {
        "name": table.name,
        "columns": [
            {"name": column.name, "type": column.column_type.value}
            for column in table.columns
        ],
        "rows": table.rows,
    }


def table_from_payload(payload: dict) -> Table:
    """Rebuild a table from the dictionary form of :func:`table_to_payload`."""
    if not isinstance(payload, dict):
        raise ValueError(f"table payload must be a dict, got {type(payload).__name__}")
    for key in ("name", "columns", "rows"):
        if key not in payload:
            raise ValueError(f"JSON table is missing the {key!r} key")
    columns = [
        Column(
            name=column["name"],
            column_type=ColumnType.from_name(column["type"]),
        )
        for column in payload["columns"]
    ]
    rows = [[str(value) for value in row] for row in payload["rows"]]
    return Table(name=payload["name"], columns=columns, rows=rows)


def table_to_json(table: Table) -> str:
    """Serialise *table* to a JSON document."""
    return json.dumps(table_to_payload(table), ensure_ascii=False, indent=2)


def table_from_json(text: str) -> Table:
    """Parse the JSON layout produced by :func:`table_to_json`."""
    return table_from_payload(json.loads(text))
