"""Google Fusion Tables substrate (Section 3).

The paper extracts from GFT three features its algorithm relies on:

* every column carries a **type** (Text, Number, Location, Date) that the
  pre-processing stage uses to skip cells;
* a **keyword index** lets the application retrieve candidate tables for a
  type of point of interest;
* a **SQL API** queries hosted tables.

This package provides all three over an in-memory table model:
:mod:`repro.tables.model` (tables and typed columns), :mod:`repro.tables.io`
(CSV / JSON round-trips), :mod:`repro.tables.fusion` (the hosted service) and
:mod:`repro.tables.sql` (a small SELECT executor).
"""

from repro.tables.fusion import FusionTableService
from repro.tables.io import (
    table_from_csv,
    table_from_json,
    table_to_csv,
    table_to_json,
)
from repro.tables.model import Cell, Column, ColumnType, Table
from repro.tables.render import render_markdown, render_text
from repro.tables.sql import SqlError, execute_sql, parse_select

__all__ = [
    "Cell",
    "Column",
    "ColumnType",
    "FusionTableService",
    "SqlError",
    "Table",
    "execute_sql",
    "parse_select",
    "render_markdown",
    "render_text",
    "table_from_csv",
    "table_from_json",
    "table_to_csv",
    "table_to_json",
]
