"""Table model with GFT-typed columns.

A table is a rectangular grid of string-valued cells (Section 4 models a
table as a bi-dimensional array, ruling out branching sub-columns).  Each
column carries one of the four Google Fusion Tables types: Text, Number,
Location or Date.  Cell addressing is zero-based ``(row, column)``; the
paper's ``T(i, j)`` with 1-based indices maps to ``table.cell(i - 1, j - 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Sequence


class ColumnType(Enum):
    """The four column types Google Fusion Tables assigns (Section 3)."""

    TEXT = "Text"
    NUMBER = "Number"
    LOCATION = "Location"
    DATE = "Date"

    @classmethod
    def from_name(cls, name: str) -> "ColumnType":
        """Parse a type from its GFT display name (case-insensitive)."""
        for member in cls:
            if member.value.lower() == name.lower():
                return member
        raise ValueError(f"unknown GFT column type: {name!r}")


@dataclass(frozen=True)
class Column:
    """A named, typed table column."""

    name: str
    column_type: ColumnType = ColumnType.TEXT


@dataclass(frozen=True)
class Cell:
    """A cell address plus its value; returned by table iteration helpers."""

    row: int
    column: int
    value: str


@dataclass
class Table:
    """An n x m grid of string cells with typed columns.

    Invariants (checked at construction and on mutation): every row has
    exactly ``len(columns)`` values; all values are strings.
    """

    name: str
    columns: list[Column]
    rows: list[list[str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("a table needs at least one column")
        for index, row in enumerate(self.rows):
            self._check_row(row, index)

    def _check_row(self, row: Sequence[str], index: int) -> None:
        if len(row) != len(self.columns):
            raise ValueError(
                f"row {index} has {len(row)} values, expected {len(self.columns)}"
            )
        for value in row:
            if not isinstance(value, str):
                raise TypeError(
                    f"row {index} contains non-string value {value!r}"
                )

    # -- shape ---------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def n_columns(self) -> int:
        return len(self.columns)

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, columns), numpy-style."""
        return self.n_rows, self.n_columns

    # -- access ---------------------------------------------------------------

    def cell(self, row: int, column: int) -> str:
        """Value at zero-based (row, column); raises ``IndexError`` if out of range."""
        if not 0 <= row < self.n_rows:
            raise IndexError(f"row {row} out of range [0, {self.n_rows})")
        if not 0 <= column < self.n_columns:
            raise IndexError(f"column {column} out of range [0, {self.n_columns})")
        return self.rows[row][column]

    def column_values(self, column: int) -> list[str]:
        """All values of one column, top to bottom."""
        if not 0 <= column < self.n_columns:
            raise IndexError(f"column {column} out of range [0, {self.n_columns})")
        return [row[column] for row in self.rows]

    def column_index(self, name: str) -> int:
        """Index of the column named *name* (exact match)."""
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise KeyError(f"no column named {name!r} in table {self.name!r}")

    def column_type(self, column: int) -> ColumnType:
        """GFT type of a column by index."""
        return self.columns[column].column_type

    def iter_cells(self) -> Iterator[Cell]:
        """Yield every cell in row-major order."""
        for i, row in enumerate(self.rows):
            for j, value in enumerate(row):
                yield Cell(row=i, column=j, value=value)

    def row(self, index: int) -> list[str]:
        """Copy of one row's values."""
        if not 0 <= index < self.n_rows:
            raise IndexError(f"row {index} out of range [0, {self.n_rows})")
        return list(self.rows[index])

    # -- mutation ---------------------------------------------------------------

    def append_row(self, values: Sequence[str]) -> None:
        """Add a row; validates width and value types."""
        row = list(values)
        self._check_row(row, self.n_rows)
        self.rows.append(row)

    # -- convenience ---------------------------------------------------------------

    def header(self) -> list[str]:
        """Column names, in order."""
        return [column.name for column in self.columns]

    def distinct_count(self, column: int) -> int:
        """Number of distinct values in a column (used by Eq. 2's 1/o factor)."""
        return len(set(self.column_values(column)))

    def value_occurrences(self, column: int) -> dict[str, int]:
        """Occurrence count of each value within a column (the ``o_ij`` of Eq. 2)."""
        counts: dict[str, int] = {}
        for value in self.column_values(column):
            counts[value] = counts.get(value, 0) + 1
        return counts

    def __repr__(self) -> str:
        return (
            f"Table(name={self.name!r}, shape={self.shape}, "
            f"columns={[c.name for c in self.columns]!r})"
        )
