"""English stopword list.

A curated list in the spirit of the classic SMART / snowball stopword lists,
restricted to high-frequency function words.  Domain words that carry signal
for entity typing (``museum``, ``street``, ``school`` ...) are deliberately
absent: the classifiers rely on them.
"""

from __future__ import annotations

ENGLISH_STOPWORDS: frozenset[str] = frozenset(
    """
    a about above after again against all am an and any are aren as at be
    because been before being below between both but by can cannot could
    couldn did didn do does doesn doing don down during each few for from
    further had hadn has hasn have haven having he her here hers herself him
    himself his how i if in into is isn it its itself just ll me mightn more
    most mustn my myself needn no nor not now o of off on once only or other
    our ours ourselves out over own re s same shan she should shouldn so some
    such t than that the their theirs them themselves then there these they
    this those through to too under until up ve very was wasn we were weren
    what when where which while who whom why will with won would wouldn you
    your yours yourself yourselves
    """.split()
)


def is_stopword(token: str) -> bool:
    """Return ``True`` when *token* (already lower-cased) is a stopword.

    >>> is_stopword("the")
    True
    >>> is_stopword("museum")
    False
    """
    return token in ENGLISH_STOPWORDS


def remove_stopwords(tokens: list[str]) -> list[str]:
    """Filter stopwords out of *tokens*, preserving order.

    >>> remove_stopwords(["the", "louvre", "is", "a", "museum"])
    ['louvre', 'museum']
    """
    return [token for token in tokens if token not in ENGLISH_STOPWORDS]
