"""Token-to-index vocabulary used to build feature matrices."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator


class Vocabulary:
    """A frozen-after-fit mapping from token to contiguous feature index.

    Tokens seen fewer than ``min_count`` times during :meth:`fit` are
    dropped; unseen tokens map to ``None`` via :meth:`index_of`.
    """

    def __init__(self, min_count: int = 1) -> None:
        if min_count < 1:
            raise ValueError(f"min_count must be >= 1, got {min_count}")
        self.min_count = min_count
        self._index: dict[str, int] = {}
        self._tokens: list[str] = []
        self._fitted = False

    # -- construction --------------------------------------------------------

    def fit(self, documents: Iterable[Iterable[str]]) -> "Vocabulary":
        """Build the index from an iterable of token sequences."""
        if self._fitted:
            raise RuntimeError("Vocabulary is already fitted")
        counts: Counter[str] = Counter()
        for tokens in documents:
            counts.update(tokens)
        for token in sorted(counts):
            if counts[token] >= self.min_count:
                self._index[token] = len(self._tokens)
                self._tokens.append(token)
        self._fitted = True
        return self

    @classmethod
    def from_tokens(cls, tokens: Iterable[str]) -> "Vocabulary":
        """Build a vocabulary treating *tokens* as one document."""
        return cls().fit([list(tokens)])

    # -- lookup ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self._tokens)

    def index_of(self, token: str) -> int | None:
        """Feature index of *token*, or ``None`` when out of vocabulary."""
        return self._index.get(token)

    def token_at(self, index: int) -> str:
        """Inverse lookup; raises ``IndexError`` for invalid indices."""
        return self._tokens[index]

    @property
    def fitted(self) -> bool:
        return self._fitted
