"""Text-processing substrate used by the snippet classifiers.

The paper (Section 5.2.1) lower-cases each snippet, tokenizes it, removes
English stopwords, stems the remaining tokens with the Porter algorithm and
associates each token with its normalised frequency (occurrences divided by
snippet length).  This package implements that exact pipeline from scratch:

* :mod:`repro.text.tokenization` -- lower-casing word tokenizer;
* :mod:`repro.text.stopwords` -- curated English stopword list;
* :mod:`repro.text.porter` -- the Porter (1980) stemming algorithm;
* :mod:`repro.text.pipeline` -- :class:`TextPipeline` tying the steps together;
* :mod:`repro.text.vocabulary` -- token-to-index mapping with frequency cuts;
* :mod:`repro.text.vectors` -- sparse feature-matrix construction helpers.
"""

from repro.text.language import detect_language, is_english
from repro.text.pipeline import TextPipeline
from repro.text.porter import PorterStemmer, stem
from repro.text.stopwords import ENGLISH_STOPWORDS, is_stopword
from repro.text.tokenization import tokenize
from repro.text.vectorizer import SnippetVectorizer
from repro.text.vocabulary import Vocabulary

__all__ = [
    "ENGLISH_STOPWORDS",
    "PorterStemmer",
    "SnippetVectorizer",
    "TextPipeline",
    "Vocabulary",
    "detect_language",
    "is_english",
    "is_stopword",
    "stem",
    "tokenize",
]
