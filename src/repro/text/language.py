"""Lightweight language identification (the §4 multilingualism future work).

Section 4: "We also assume that the content of the table is in English,
leaving the interesting problem of multilingualism in tables to future
work"; Section 5.2: "Only results in English are considered."  Our
synthetic pages carry explicit language metadata, but real snippets do
not -- this module provides the detector a real deployment would need:
stopword-profile scoring against small function-word inventories, the
classic cheap-and-robust approach for short texts.
"""

from __future__ import annotations

from repro.text.tokenization import tokenize

LANGUAGE_PROFILES: dict[str, frozenset[str]] = {
    "en": frozenset(
        "the of and to in a is that it for on with as was at by this "
        "from are be or an have not you his her they we".split()
    ),
    "fr": frozenset(
        "le la les de des du et un une est dans pour que qui sur avec "
        "au aux ce cette il elle nous vous sont pas plus".split()
    ),
    "de": frozenset(
        "der die das und ist in den von zu mit sich des auf nicht eine "
        "als auch es an werden aus bei nach wird".split()
    ),
    "it": frozenset(
        "il lo la gli le di che e un una per con del della nel sono "
        "si da come anche piu questo alla".split()
    ),
}

MIN_TOKENS = 3
"""Below this many tokens there is no evidence to score."""


def language_scores(text: str) -> dict[str, float]:
    """Fraction of tokens matching each language's function words.

    >>> language_scores("the museum of the city")["en"] > 0
    True
    """
    tokens = tokenize(text)
    if not tokens:
        return {language: 0.0 for language in LANGUAGE_PROFILES}
    return {
        language: sum(1 for token in tokens if token in profile) / len(tokens)
        for language, profile in LANGUAGE_PROFILES.items()
    }


def detect_language(text: str, default: str = "unknown") -> str:
    """Most likely language of *text*, or *default* when evidence is thin.

    A language wins when it has the strictly highest function-word share
    and that share is non-zero; very short or function-word-free texts
    (entity names, numbers) return *default*, which is the right answer
    for table cells -- a proper name is not "in" any language.

    >>> detect_language("le musee de la ville est dans le centre")
    'fr'
    >>> detect_language("Louvre")
    'unknown'
    """
    tokens = tokenize(text)
    if len(tokens) < MIN_TOKENS:
        return default
    scores = language_scores(text)
    best = max(scores.values())
    if best == 0.0:
        return default
    winners = [lang for lang, score in scores.items() if score == best]
    if len(winners) > 1:
        return default
    return winners[0]


def is_english(text: str, permissive: bool = True) -> bool:
    """English check for snippet filtering.

    ``permissive=True`` treats undecidable texts (names, short cells) as
    English, matching how a search-language filter should behave on
    entity-name queries.
    """
    language = detect_language(text)
    if language == "unknown":
        return permissive
    return language == "en"
