"""Word tokenization for snippets and cell values.

The paper's pipeline (Section 5.2.1) converts text to lower case and splits
it into tokens "corresponding to a word in the English dictionary".  We use a
pragmatic reading: a token is a maximal run of letters (apostrophes inside a
word are allowed, so ``"simpson's"`` yields ``simpson's`` before stopword
filtering strips the possessive).  Digits and punctuation separate tokens and
are never part of one, because numeric content is handled by the
pre-processing stage of the annotator, not the classifier.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

_WORD_RE = re.compile(r"[a-z]+(?:'[a-z]+)?")

_FINDALL = _WORD_RE.findall
"""Hoisted bound method: ``tokenize`` sits on the hottest path of the
whole pipeline (every snippet, every cell value, every indexed page goes
through it), so even the attribute lookups are paid once, not per call."""


def tokenize(text: str) -> list[str]:
    """Split *text* into lower-case word tokens.

    >>> tokenize("The Louvre Museum, Paris (France)!")
    ['the', 'louvre', 'museum', 'paris', 'france']
    >>> tokenize("Simpson's episodes (1989)")
    ['simpson', 'episodes']
    """
    tokens = _FINDALL(text.lower())
    if "'" in text:
        # Possessive stripping.  The word pattern cannot match a trailing
        # bare apostrophe (it requires a letter after one), so ``'s`` is
        # the only strippable suffix a token can carry, and the strip can
        # never empty a token (the pattern requires letters before it).
        return [
            token[:-2] if token.endswith("'s") else token for token in tokens
        ]
    return tokens


def iter_tokens(texts: Iterable[str]) -> Iterator[str]:
    """Yield tokens from every text in *texts*, in order."""
    for text in texts:
        yield from tokenize(text)


def token_count(text: str) -> int:
    """Number of word tokens in *text* (used by the long-value filter)."""
    return len(tokenize(text))
