"""Snippet vectorizer: texts -> scipy CSR feature matrices.

Combines :class:`~repro.text.pipeline.TextPipeline` (normalised-frequency
features) with a :class:`~repro.text.vocabulary.Vocabulary` to produce the
sparse matrices consumed by the classifiers in :mod:`repro.classify`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
from scipy import sparse

from repro.text.pipeline import TextPipeline
from repro.text.vocabulary import Vocabulary


class SnippetVectorizer:
    """Fit a vocabulary over snippets, then transform snippets to CSR rows.

    >>> vec = SnippetVectorizer()
    >>> X = vec.fit_transform(["the louvre museum", "a fine museum"])
    >>> X.shape[0]
    2
    """

    def __init__(self, pipeline: TextPipeline | None = None, min_count: int = 1) -> None:
        self.pipeline = pipeline or TextPipeline()
        self.vocabulary = Vocabulary(min_count=min_count)

    # -- fitting ---------------------------------------------------------------

    def fit(self, texts: Iterable[str]) -> "SnippetVectorizer":
        """Build the vocabulary from *texts*."""
        self.vocabulary.fit(self.pipeline.tokens(text) for text in texts)
        return self

    def fit_transform(self, texts: Sequence[str]) -> sparse.csr_matrix:
        """Fit on *texts* and return their feature matrix."""
        self.fit(texts)
        return self.transform(texts)

    # -- transformation ----------------------------------------------------------

    def transform(self, texts: Sequence[str]) -> sparse.csr_matrix:
        """Vectorize *texts* into an ``(len(texts), len(vocabulary))`` CSR matrix.

        Out-of-vocabulary tokens are dropped, mirroring a classifier that has
        never seen a feature.  Rows of snippets with no in-vocabulary token
        are all-zero.

        Assembly is flat: per text the (index, value) pairs are appended
        unsorted (a feature dict never repeats a token, so no duplicates
        need summing) and the matrix is canonicalised once with
        ``sort_indices`` -- no per-row dict or Python sort, so transforming
        thousands of pooled snippets is a single pass.
        """
        if not self.vocabulary.fitted:
            raise RuntimeError("SnippetVectorizer must be fitted before transform")
        features_of = self.pipeline.features
        index_of = self.vocabulary.index_of
        indptr = np.zeros(len(texts) + 1, dtype=np.int64)
        indices: list[int] = []
        data: list[float] = []
        for position, text in enumerate(texts):
            for token, value in features_of(text).items():
                index = index_of(token)
                if index is not None:
                    indices.append(index)
                    data.append(value)
            indptr[position + 1] = len(indices)
        matrix = sparse.csr_matrix(
            (
                np.asarray(data, dtype=np.float64),
                np.asarray(indices, dtype=np.int64),
                indptr,
            ),
            shape=(len(texts), len(self.vocabulary)),
        )
        matrix.sort_indices()
        return matrix

    def transform_one(self, text: str) -> sparse.csr_matrix:
        """Vectorize a single snippet into a ``(1, |V|)`` CSR matrix."""
        return self.transform([text])
