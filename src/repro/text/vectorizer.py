"""Snippet vectorizer: texts -> scipy CSR feature matrices.

Combines :class:`~repro.text.pipeline.TextPipeline` (normalised-frequency
features) with a :class:`~repro.text.vocabulary.Vocabulary` to produce the
sparse matrices consumed by the classifiers in :mod:`repro.classify`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
from scipy import sparse

from repro.text.pipeline import TextPipeline
from repro.text.vocabulary import Vocabulary


class SnippetVectorizer:
    """Fit a vocabulary over snippets, then transform snippets to CSR rows.

    >>> vec = SnippetVectorizer()
    >>> X = vec.fit_transform(["the louvre museum", "a fine museum"])
    >>> X.shape[0]
    2
    """

    def __init__(self, pipeline: TextPipeline | None = None, min_count: int = 1) -> None:
        self.pipeline = pipeline or TextPipeline()
        self.vocabulary = Vocabulary(min_count=min_count)

    # -- fitting ---------------------------------------------------------------

    def fit(self, texts: Iterable[str]) -> "SnippetVectorizer":
        """Build the vocabulary from *texts*."""
        self.vocabulary.fit(self.pipeline.tokens(text) for text in texts)
        return self

    def fit_transform(self, texts: Sequence[str]) -> sparse.csr_matrix:
        """Fit on *texts* and return their feature matrix."""
        self.fit(texts)
        return self.transform(texts)

    # -- transformation ----------------------------------------------------------

    def transform(self, texts: Sequence[str]) -> sparse.csr_matrix:
        """Vectorize *texts* into an ``(len(texts), len(vocabulary))`` CSR matrix.

        Out-of-vocabulary tokens are dropped, mirroring a classifier that has
        never seen a feature.  Rows of snippets with no in-vocabulary token
        are all-zero.
        """
        if not self.vocabulary.fitted:
            raise RuntimeError("SnippetVectorizer must be fitted before transform")
        indptr = [0]
        indices: list[int] = []
        data: list[float] = []
        for text in texts:
            features = self.pipeline.features(text)
            row = {}
            for token, value in features.items():
                index = self.vocabulary.index_of(token)
                if index is not None:
                    row[index] = value
            for index in sorted(row):
                indices.append(index)
                data.append(row[index])
            indptr.append(len(indices))
        return sparse.csr_matrix(
            (np.asarray(data, dtype=np.float64), indices, indptr),
            shape=(len(texts), len(self.vocabulary)),
        )

    def transform_one(self, text: str) -> sparse.csr_matrix:
        """Vectorize a single snippet into a ``(1, |V|)`` CSR matrix."""
        return self.transform([text])
