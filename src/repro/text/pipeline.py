"""The snippet feature pipeline of Section 5.2.1.

``TextPipeline`` reproduces the paper's preparation of a snippet before
classification: lower-case, tokenize, drop English stopwords, Porter-stem the
rest, and associate each resulting token with its *normalised frequency* --
the number of occurrences divided by the snippet length (in kept tokens).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.text.porter import stem
from repro.text.stopwords import ENGLISH_STOPWORDS
from repro.text.tokenization import tokenize

_UNSEEN = object()
"""Missing-entry sentinel for the token memo.

An ``""`` default would collide with any token legitimately mapping to an
empty stem, recomputing (and historically double-counting) it on every
occurrence; a private object can never equal a stored mapping.
"""


@dataclass
class TextPipeline:
    """Configurable snippet-to-features pipeline.

    Parameters mirror the paper's choices and are all on by default;
    switching one off supports the ablation benchmarks.

    A per-instance memo caches each token's fate (dropped as a stopword,
    or its stem) so both :meth:`tokens` and :meth:`counts` pay the
    stopword lookup and stemmer only once per distinct token; the memo is
    discarded if the configuration flags are changed mid-flight.

    >>> TextPipeline().features("The Louvre is a museum in Paris")
    {'louvr': 0.3333333333333333, 'museum': 0.3333333333333333, 'pari': 0.3333333333333333}
    """

    remove_stopwords: bool = True
    apply_stemming: bool = True
    _memo: dict[str, str | None] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _memo_config: tuple[bool, bool] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def tokens(self, text: str) -> list[str]:
        """Lower-cased, stopword-filtered, stemmed tokens of *text*.

        Shares the per-token memo with :meth:`counts`, so a pipeline that
        has featurised a snippet re-tokenises its words without paying the
        stopword lookup or the stemmer again (and vice versa).  The loop
        hoists every per-token attribute lookup (memo access, the mapper,
        the sentinel, the result append) into locals: this is the hottest
        pure-Python path of the engine -- every snippet classified and
        every page indexed streams through it -- and the hoisting alone is
        worth ~1.6x on warm-memo snippets (see the micro-benchmark note in
        ``docs/architecture.md``).
        """
        memo = self._token_memo()
        memo_get = memo.get
        map_token = self._map_token
        unseen = _UNSEEN
        mapped_tokens: list[str] = []
        append = mapped_tokens.append
        for token in tokenize(text):
            mapped = memo_get(token, unseen)
            if mapped is unseen:
                mapped = map_token(token)
                memo[token] = mapped
            if mapped is not None:
                append(mapped)
        return mapped_tokens

    def counts(self, text: str) -> Counter[str]:
        """Raw token counts after the full pipeline.

        One :meth:`tokens` pass folded through ``Counter``'s C-level
        counting -- strictly the same mapping as counting inside the loop,
        minus the per-token dict updates in Python.
        """
        return Counter(self.tokens(text))

    def features(self, text: str) -> dict[str, float]:
        """Normalised-frequency features: count / snippet length.

        The snippet length is the number of tokens kept by the pipeline,
        so the feature values of one snippet always sum to 1.0 (or the
        dict is empty when no token survives filtering).
        """
        counts = self.counts(text)
        total = sum(counts.values())
        if total == 0:
            return {}
        return {token: count / total for token, count in counts.items()}

    # -- token memo ---------------------------------------------------------------

    def _token_memo(self) -> dict[str, str | None]:
        config = (self.remove_stopwords, self.apply_stemming)
        if self._memo_config != config:
            self._memo = {}
            self._memo_config = config
        return self._memo

    def _map_token(self, token: str) -> str | None:
        """Fate of one tokenised word: ``None`` when dropped, else its stem."""
        if self.remove_stopwords and token in ENGLISH_STOPWORDS:
            return None
        return stem(token) if self.apply_stemming else token
