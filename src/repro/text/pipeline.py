"""The snippet feature pipeline of Section 5.2.1.

``TextPipeline`` reproduces the paper's preparation of a snippet before
classification: lower-case, tokenize, drop English stopwords, Porter-stem the
rest, and associate each resulting token with its *normalised frequency* --
the number of occurrences divided by the snippet length (in kept tokens).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.text.porter import stem
from repro.text.stopwords import ENGLISH_STOPWORDS
from repro.text.tokenization import tokenize


@dataclass
class TextPipeline:
    """Configurable snippet-to-features pipeline.

    Parameters mirror the paper's choices and are all on by default;
    switching one off supports the ablation benchmarks.

    >>> TextPipeline().features("The Louvre is a museum in Paris")
    {'louvr': 0.3333333333333333, 'museum': 0.3333333333333333, 'pari': 0.3333333333333333}
    """

    remove_stopwords: bool = True
    apply_stemming: bool = True

    def tokens(self, text: str) -> list[str]:
        """Lower-cased, stopword-filtered, stemmed tokens of *text*."""
        tokens = tokenize(text)
        if self.remove_stopwords:
            tokens = [t for t in tokens if t not in ENGLISH_STOPWORDS]
        if self.apply_stemming:
            tokens = [stem(t) for t in tokens]
        return tokens

    def counts(self, text: str) -> Counter[str]:
        """Raw token counts after the full pipeline."""
        return Counter(self.tokens(text))

    def features(self, text: str) -> dict[str, float]:
        """Normalised-frequency features: count / snippet length.

        The snippet length is the number of tokens kept by the pipeline,
        so the feature values of one snippet always sum to 1.0 (or the
        dict is empty when no token survives filtering).
        """
        counts = self.counts(text)
        total = sum(counts.values())
        if total == 0:
            return {}
        return {token: count / total for token, count in counts.items()}
