"""The Porter stemming algorithm (Porter, 1980), implemented from scratch.

This is the stemmer the paper uses on snippet tokens (Section 5.2.1, citing
van Rijsbergen, Robertson & Porter 1980).  The implementation follows the
original five-step description.  Words of length <= 2 are returned unchanged,
as in the reference implementation.

Measure notation: a word has the form ``[C](VC)^m[V]`` where ``C`` is a run
of consonants and ``V`` a run of vowels; ``m`` is the *measure* used by most
rule conditions.
"""

from __future__ import annotations

from functools import lru_cache

_VOWELS = frozenset("aeiou")


class PorterStemmer:
    """Stateless Porter stemmer; use :meth:`stem` on lower-case words."""

    def stem(self, word: str) -> str:
        """Return the Porter stem of *word*.

        >>> PorterStemmer().stem("caresses")
        'caress'
        >>> PorterStemmer().stem("relational")
        'relat'
        """
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    # -- character classification -------------------------------------------

    def _is_consonant(self, word: str, i: int) -> bool:
        char = word[i]
        if char in _VOWELS:
            return False
        if char == "y":
            return i == 0 or not self._is_consonant(word, i - 1)
        return True

    def _measure(self, stem: str) -> int:
        """Number of VC sequences in *stem* (the ``m`` of the paper)."""
        m = 0
        previous_was_vowel = False
        for i in range(len(stem)):
            is_vowel = not self._is_consonant(stem, i)
            if previous_was_vowel and not is_vowel:
                m += 1
            previous_was_vowel = is_vowel
        return m

    def _contains_vowel(self, stem: str) -> bool:
        return any(not self._is_consonant(stem, i) for i in range(len(stem)))

    def _ends_double_consonant(self, word: str) -> bool:
        return (
            len(word) >= 2
            and word[-1] == word[-2]
            and self._is_consonant(word, len(word) - 1)
        )

    def _ends_cvc(self, word: str) -> bool:
        """*o* condition: stem ends consonant-vowel-consonant, last not w/x/y."""
        if len(word) < 3:
            return False
        return (
            self._is_consonant(word, len(word) - 3)
            and not self._is_consonant(word, len(word) - 2)
            and self._is_consonant(word, len(word) - 1)
            and word[-1] not in "wxy"
        )

    # -- rule application ----------------------------------------------------

    def _replace(self, word: str, suffix: str, replacement: str, m_min: int) -> str | None:
        """Apply ``(m > m_min) suffix -> replacement``; None when not applied."""
        if not word.endswith(suffix):
            return None
        stem = word[: len(word) - len(suffix)]
        if self._measure(stem) > m_min:
            return stem + replacement
        return word  # suffix matched but condition failed: rule consumed

    def _step1a(self, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            stem = word[:-3]
            if self._measure(stem) > 0:
                return word[:-1]
            return word
        applied = False
        if word.endswith("ed"):
            stem = word[:-2]
            if self._contains_vowel(stem):
                word = stem
                applied = True
        elif word.endswith("ing"):
            stem = word[:-3]
            if self._contains_vowel(stem):
                word = stem
                applied = True
        if applied:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if self._ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if self._measure(word) == 1 and self._ends_cvc(word):
                return word + "e"
        return word

    def _step1c(self, word: str) -> str:
        if word.endswith("y") and self._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_RULES = (
        ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
        ("anci", "ance"), ("izer", "ize"), ("abli", "able"), ("alli", "al"),
        ("entli", "ent"), ("eli", "e"), ("ousli", "ous"), ("ization", "ize"),
        ("ation", "ate"), ("ator", "ate"), ("alism", "al"), ("iveness", "ive"),
        ("fulness", "ful"), ("ousness", "ous"), ("aliti", "al"),
        ("iviti", "ive"), ("biliti", "ble"),
    )

    def _step2(self, word: str) -> str:
        for suffix, replacement in self._STEP2_RULES:
            result = self._replace(word, suffix, replacement, 0)
            if result is not None:
                return result
        return word

    _STEP3_RULES = (
        ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
        ("ical", "ic"), ("ful", ""), ("ness", ""),
    )

    def _step3(self, word: str) -> str:
        for suffix, replacement in self._STEP3_RULES:
            result = self._replace(word, suffix, replacement, 0)
            if result is not None:
                return result
        return word

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )

    def _step4(self, word: str) -> str:
        if word.endswith("ion"):
            stem = word[:-3]
            if stem and stem[-1] in "st" and self._measure(stem) > 1:
                return stem
            # 'ion' handled exclusively here; fall through only if unmatched
            if stem and stem[-1] in "st":
                return word
        for suffix in self._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: len(word) - len(suffix)]
                if self._measure(stem) > 1:
                    return stem
                return word
        return word

    def _step5a(self, word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            m = self._measure(stem)
            if m > 1 or (m == 1 and not self._ends_cvc(stem)):
                return stem
        return word

    def _step5b(self, word: str) -> str:
        if (
            word.endswith("ll")
            and self._measure(word[:-1]) > 1
        ):
            return word[:-1]
        return word


_DEFAULT_STEMMER = PorterStemmer()


@lru_cache(maxsize=65536)
def stem(word: str) -> str:
    """Stem *word* with a shared, memoised :class:`PorterStemmer`.

    The cache matters: the corpus pipelines stem millions of tokens drawn
    from a vocabulary of a few thousand distinct words.

    >>> stem("annotations")
    'annot'
    >>> stem("museums")
    'museum'
    """
    return _DEFAULT_STEMMER.stem(word)
