"""Resident annotation service: a long-lived daemon over the warm engine.

The batch reproduction pays its cold start (world context, classifier,
ranking/snippet caches) once per *process*; this package keeps one warm
:class:`~repro.core.annotator.EntityAnnotator` resident behind a local
socket so it is paid once per *deployment*.  Concurrently-arriving
requests are coalesced by a micro-batching admission layer into pooled
corpus passes (:meth:`~repro.core.annotator.EntityAnnotator.annotate_batch`),
so independent clients share the search/classify/vote economics of
corpus-at-a-time annotation.

* :mod:`repro.service.protocol` -- the versioned line-delimited JSON wire
  schema (requests, responses, table and annotation payloads);
* :mod:`repro.service.daemon` -- the server: request queue, micro-batcher,
  per-request demux, periodic + shutdown cache flush;
* :mod:`repro.service.client` -- the blocking client
  (``annotate_table`` / ``annotate_cells`` / ``ping`` / ``stats`` /
  ``shutdown``).

CLI: ``python -m repro.cli serve --socket /tmp/repro.sock --small`` starts
a daemon; ``python -m repro.cli client ping --socket /tmp/repro.sock``
talks to it.  See the "Resident service" section of
``docs/architecture.md`` for the lifecycle.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import (
    AnnotationDaemon,
    AnnotationService,
    ServiceConfig,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    Response,
)

__all__ = [
    "AnnotationDaemon",
    "AnnotationService",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "Response",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
]
