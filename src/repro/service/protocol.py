"""Wire schema of the resident annotation service.

One JSON object per line (UTF-8, ``\\n``-terminated), in both directions.
Every message carries the protocol version; the daemon rejects versions it
does not speak rather than guessing at field semantics.  Table payloads
reuse the dictionary layout of :mod:`repro.tables.io`
(:func:`~repro.tables.io.table_to_payload`), annotation payloads mirror
:class:`~repro.core.results.TableAnnotation` /
:class:`~repro.core.results.CellAnnotation` field for field, so a
round-tripped annotation compares equal to the in-process original --
the service parity contract.

Operations:

``ping``
    liveness + version handshake;
``stats``
    a :class:`~repro.core.results.ServiceStats` snapshot;
``metrics``
    the daemon's process-wide metrics registry rendered as
    Prometheus-style text exposition (``{"exposition": "..."}``) for a
    fleet scraper to poll;
``annotate_table``
    payload ``{"table": <table payload>, "type_keys": [...]}``, answered
    with ``{"annotation": <annotation payload>}``;
``annotate_cells``
    payload ``{"values": [...], "type_keys": [...], "name": ...}`` --
    sugar for a one-column Text table (one row per value) through the
    same three-stage pipeline; answered with ``{"annotation": ...,
    "cells": [<decision or null per value>]}``;
``shutdown``
    flush caches and stop serving.

>>> request = annotate_cells_request(["Louvre"], ["museum"], request_id="1")
>>> decode_request(encode_request(request)) == request
True
>>> table_for_request(request).rows
[['Louvre']]
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.results import CellAnnotation, DegradedCell, TableAnnotation
from repro.tables.model import Column, ColumnType, Table
from repro.tables.io import table_from_payload, table_to_payload

PROTOCOL_VERSION = 1
"""Bumped whenever a message's field semantics change; the daemon answers
a foreign version with an error instead of misreading it."""

OPS = ("ping", "stats", "metrics", "annotate_table", "annotate_cells", "shutdown")
"""Every operation the daemon understands."""

ANNOTATE_OPS = ("annotate_table", "annotate_cells")
"""The operations that enter the micro-batching queue (the rest are
answered immediately by the connection handler)."""

CELLS_COLUMN = "Value"
"""Column name of the synthetic one-column table an ``annotate_cells``
request is wrapped into."""


class ProtocolError(ValueError):
    """A message that cannot be parsed into a valid request/response."""


@dataclass(frozen=True)
class Request:
    """One client request (see the module docstring for the operations)."""

    op: str
    payload: dict = field(default_factory=dict)
    request_id: str = ""
    version: int = PROTOCOL_VERSION
    trace_id: str | None = None
    """Caller-minted trace identifier.  Optional and omitted from the
    wire when absent, so untraced clients produce byte-identical lines
    to the pre-observability format."""


@dataclass(frozen=True)
class Response:
    """The daemon's answer to one request, matched by ``request_id``."""

    ok: bool
    request_id: str = ""
    result: dict | None = None
    error: str | None = None
    version: int = PROTOCOL_VERSION


# -- line codec --------------------------------------------------------------------------


def encode_request(request: Request) -> bytes:
    """*request* as one newline-terminated JSON line."""
    blob: dict = {
        "v": request.version,
        "id": request.request_id,
        "op": request.op,
        "payload": request.payload,
    }
    if request.trace_id is not None:
        blob["trace_id"] = request.trace_id
    return json.dumps(blob, ensure_ascii=False).encode("utf-8") + b"\n"


def decode_request(line: bytes | str) -> Request:
    """Parse one request line; raises :class:`ProtocolError` on anything
    malformed, version-foreign or operation-unknown."""
    blob = _decode_line(line)
    version = blob.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version!r} not supported "
            f"(this daemon speaks {PROTOCOL_VERSION})"
        )
    op = blob.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown operation {op!r} (know {', '.join(OPS)})")
    payload = blob.get("payload", {})
    if not isinstance(payload, dict):
        raise ProtocolError("request payload must be an object")
    trace_id = blob.get("trace_id")
    if trace_id is not None and not isinstance(trace_id, str):
        raise ProtocolError("trace_id must be a string when present")
    return Request(
        op=op,
        payload=payload,
        request_id=str(blob.get("id", "")),
        version=version,
        trace_id=trace_id,
    )


def encode_response(response: Response) -> bytes:
    """*response* as one newline-terminated JSON line."""
    blob: dict = {
        "v": response.version,
        "id": response.request_id,
        "ok": response.ok,
    }
    if response.result is not None:
        blob["result"] = response.result
    if response.error is not None:
        blob["error"] = response.error
    return json.dumps(blob, ensure_ascii=False).encode("utf-8") + b"\n"


def decode_response(line: bytes | str) -> Response:
    """Parse one response line (client side)."""
    blob = _decode_line(line)
    version = blob.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version!r} not supported "
            f"(this client speaks {PROTOCOL_VERSION})"
        )
    if not isinstance(blob.get("ok"), bool):
        raise ProtocolError("response is missing the boolean 'ok' field")
    return Response(
        ok=blob["ok"],
        request_id=str(blob.get("id", "")),
        result=blob.get("result"),
        error=blob.get("error"),
        version=version,
    )


def _decode_line(line: bytes | str) -> dict:
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        blob = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"message is not valid JSON: {error}") from error
    if not isinstance(blob, dict):
        raise ProtocolError("message must be a JSON object")
    return blob


# -- request builders --------------------------------------------------------------------


def ping_request(request_id: str = "") -> Request:
    return Request(op="ping", request_id=request_id)


def stats_request(request_id: str = "") -> Request:
    return Request(op="stats", request_id=request_id)


def metrics_request(request_id: str = "") -> Request:
    return Request(op="metrics", request_id=request_id)


def shutdown_request(request_id: str = "") -> Request:
    return Request(op="shutdown", request_id=request_id)


def annotate_table_request(
    table: Table,
    type_keys: list[str],
    request_id: str = "",
    trace_id: str | None = None,
) -> Request:
    """An ``annotate_table`` request carrying *table* by value."""
    return Request(
        op="annotate_table",
        payload={
            "table": table_to_payload(table),
            "type_keys": list(type_keys),
        },
        request_id=request_id,
        trace_id=trace_id,
    )


def annotate_cells_request(
    values: list[str],
    type_keys: list[str],
    request_id: str = "",
    name: str = "cells",
    trace_id: str | None = None,
) -> Request:
    """An ``annotate_cells`` request: bare cell values, no table framing."""
    return Request(
        op="annotate_cells",
        payload={
            "values": [str(value) for value in values],
            "type_keys": list(type_keys),
            "name": name,
        },
        request_id=request_id,
        trace_id=trace_id,
    )


# -- payload (de)serialisation -----------------------------------------------------------


def request_type_keys(request: Request) -> tuple[str, ...]:
    """The validated ``type_keys`` of an annotation request."""
    type_keys = request.payload.get("type_keys")
    if (
        not isinstance(type_keys, list)
        or not type_keys
        or not all(isinstance(key, str) for key in type_keys)
    ):
        raise ProtocolError(
            "annotation requests need a non-empty 'type_keys' string list"
        )
    return tuple(type_keys)


def table_for_request(request: Request) -> Table:
    """The table an annotation request asks about.

    ``annotate_table`` ships one by value; ``annotate_cells`` is wrapped
    into a synthetic one-column Text table (one row per value), so both
    request kinds pool into the same corpus pass and share the pipeline's
    semantics -- including pre- and post-processing -- exactly as if the
    caller had framed the values as a table themselves.
    """
    if request.op == "annotate_table":
        try:
            return table_from_payload(request.payload.get("table"))
        except (ValueError, KeyError, TypeError) as error:
            raise ProtocolError(f"bad table payload: {error}") from error
    if request.op == "annotate_cells":
        values = request.payload.get("values")
        if not isinstance(values, list) or not all(
            isinstance(value, str) for value in values
        ):
            raise ProtocolError(
                "annotate_cells needs a 'values' list of strings"
            )
        table = Table(
            name=str(request.payload.get("name", "cells")),
            columns=[Column(CELLS_COLUMN, ColumnType.TEXT)],
        )
        for value in values:
            table.append_row([value])
        return table
    raise ProtocolError(f"{request.op!r} does not carry a table")


def annotation_to_payload(annotation: TableAnnotation) -> dict:
    """*annotation* as a plain JSON-serialisable dictionary.

    The ``degraded`` key (cells the resilience layer abandoned) is only
    present when non-empty, keeping healthy-run payloads byte-identical
    to the pre-resilience wire format.
    """
    payload = {
        "table": annotation.table_name,
        "cells": [
            {
                "row": cell.row,
                "column": cell.column,
                "type_key": cell.type_key,
                "score": cell.score,
                "value": cell.cell_value,
            }
            for cell in annotation.cells
        ],
    }
    if annotation.degraded:
        payload["degraded"] = [
            {
                "row": cell.row,
                "column": cell.column,
                "value": cell.cell_value,
                "query": cell.query,
                "reason": cell.reason,
            }
            for cell in annotation.degraded
        ]
    return payload


def annotation_from_payload(payload: dict) -> TableAnnotation:
    """Rebuild a :class:`TableAnnotation`; equality with the daemon-side
    original is exact (scores survive the JSON float round-trip)."""
    if not isinstance(payload, dict) or "table" not in payload:
        raise ProtocolError("annotation payload needs a 'table' name")
    annotation = TableAnnotation(table_name=payload["table"])
    for cell in payload.get("cells", []):
        annotation.add(
            CellAnnotation(
                table_name=payload["table"],
                row=int(cell["row"]),
                column=int(cell["column"]),
                type_key=cell["type_key"],
                score=float(cell["score"]),
                cell_value=cell.get("value", ""),
            )
        )
    for cell in payload.get("degraded", []):
        annotation.degraded.append(
            DegradedCell(
                table_name=payload["table"],
                row=int(cell["row"]),
                column=int(cell["column"]),
                cell_value=cell.get("value", ""),
                query=cell.get("query", ""),
                reason=cell.get("reason", "search-failure"),
            )
        )
    return annotation


def cell_decisions(annotation: TableAnnotation, n_values: int) -> list[dict | None]:
    """Per-value decisions of an ``annotate_cells`` answer.

    Element *i* describes value *i* (row *i* of the synthetic table):
    ``{"value", "type_key", "score"}`` when annotated, ``None`` when the
    pipeline rejected or could not decide it.
    """
    by_row = {cell.row: cell for cell in annotation.cells}
    decisions: list[dict | None] = []
    for row in range(n_values):
        cell = by_row.get(row)
        decisions.append(
            None
            if cell is None
            else {
                "value": cell.cell_value,
                "type_key": cell.type_key,
                "score": cell.score,
            }
        )
    return decisions
