"""The resident annotation daemon: queue -> batcher -> corpus pass -> demux -> flush.

Two layers:

:class:`AnnotationService`
    The socket-free core: a request queue, the **micro-batching admission
    layer**, lifetime :class:`~repro.core.results.ServiceStats`, and the
    cache-flush lifecycle.  Concurrently-arriving ``annotate_table`` /
    ``annotate_cells`` requests are coalesced -- first arrival opens a
    batching window of ``batch_window_ms``, everything that lands before
    it closes (up to ``max_batch_tables``) joins the same pooled
    :meth:`~repro.core.annotator.EntityAnnotator.annotate_batch` pass --
    then each request gets exactly its own slice of the merged result
    back.  Requests with different ``type_keys`` never share a pass (the
    Equation 1 vote is computed *over the requested types*, so pooling
    them would change answers); within a tick they form one sub-batch per
    distinct key set.

:class:`AnnotationDaemon`
    The socket layer: a threading Unix-domain stream server speaking the
    line protocol of :mod:`repro.service.protocol`, one handler thread
    per connection, all of them feeding the one shared service.  The
    batching window is what turns N concurrent clients into one corpus
    pass -- the pooled search/classify/vote economics measured in
    ``benchmarks/output/BENCH_throughput.json`` (scenario ``service``).

Warmth lifecycle: the service warm-starts from ``cache_dir`` when given,
flushes back periodically (:class:`repro.persistence.PeriodicFlusher`)
and always once on shutdown -- the same merge-on-save advisory-locked
path CLI runs and pool workers use, so a daemon and a concurrent CLI run
can share one cache directory without losing entries (a lock timeout
degrades to a skipped save, never a hang).
"""

from __future__ import annotations

import os
import queue
import socket
import socketserver
import threading
import time
from dataclasses import dataclass

from repro.core.annotator import EntityAnnotator
from repro.core.results import ServiceStats, TableAnnotation
from repro.observability import metrics as obs_metrics
from repro.observability import tracing
from repro.observability.tracing import span
from repro.persistence import PeriodicFlusher
from repro.service import protocol
from repro.service.protocol import (
    ANNOTATE_OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    Response,
)
from repro.tables.model import Table

HAVE_UNIX_SOCKETS = hasattr(socket, "AF_UNIX")
"""Unix-domain sockets are the daemon's transport; platforms without them
can still use :class:`AnnotationService` in process."""


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the resident service."""

    batch_window_ms: float = 25.0
    """How long the batcher holds the first request of a tick open for
    late arrivals to coalesce with.  The window is latency deliberately
    spent to buy pooled-economics throughput; 0 disables coalescing
    (every request is its own pass)."""

    max_batch_tables: int = 32
    """Upper bound on requests pooled into one tick (the window closes
    early once reached), bounding per-pass memory and demux latency."""

    workers: int = 1
    """Worker processes for each pooled pass, forwarded to
    ``annotate_batch``; 1 (default) annotates in-process -- a process
    pool per tick only pays off for very large batches."""

    cache_dir: str | None = None
    """Warm-start source and flush target for the engine caches; ``None``
    keeps all warmth in memory."""

    flush_interval_seconds: float = 0.0
    """Periodic cache-flush interval while serving (0 = flush only on
    shutdown).  Needs *cache_dir*."""

    request_timeout_seconds: float = 300.0
    """How long a submitted request waits for its batch to complete
    before the service answers with an error (a liveness backstop, not a
    deadline the batcher aims for)."""

    def __post_init__(self) -> None:
        if self.batch_window_ms < 0:
            raise ValueError(
                f"batch_window_ms must be >= 0, got {self.batch_window_ms}"
            )
        if self.max_batch_tables < 1:
            raise ValueError(
                f"max_batch_tables must be >= 1, got {self.max_batch_tables}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.flush_interval_seconds < 0:
            raise ValueError(
                "flush_interval_seconds must be >= 0, got "
                f"{self.flush_interval_seconds}"
            )


class _Pending:
    """One queued annotation request and the slot its answer lands in."""

    __slots__ = ("request", "table", "type_keys", "response", "done", "abandoned")

    def __init__(
        self, request: Request, table: Table, type_keys: tuple[str, ...]
    ) -> None:
        self.request = request
        self.table = table
        self.type_keys = type_keys
        self.response: Response | None = None
        self.done = threading.Event()
        self.abandoned = False
        """Set when the submitter gave up waiting (request timeout): the
        batcher drops abandoned entries at batch-assembly time instead of
        paying a pooled pass for an answer nobody will read."""

    def resolve(self, response: Response) -> None:
        self.response = response
        self.done.set()


class AnnotationService:
    """The daemon's core: micro-batching over one warm annotator.

    Thread-safe: any number of threads may :meth:`submit` concurrently;
    one batcher thread executes the pooled passes (the annotator and its
    engine are single-threaded by design), and the flush path serialises
    against it on the annotator lock.
    """

    def __init__(
        self, annotator: EntityAnnotator, config: ServiceConfig | None = None
    ) -> None:
        self.annotator = annotator
        self.config = config or ServiceConfig()
        self.stats = ServiceStats()
        self.started_at = time.monotonic()
        self._queue: queue.Queue[_Pending] = queue.Queue()
        self._pending_count = 0
        self._pending_lock = threading.Lock()
        self._running = threading.Event()
        self._draining = False
        self._stats_lock = threading.Lock()
        self._annotator_lock = threading.Lock()
        self._batcher: threading.Thread | None = None
        self._flusher: PeriodicFlusher | None = None

    # -- lifecycle ----------------------------------------------------------------------

    def start(self) -> "AnnotationService":
        """Warm-start from the cache dir and start the batcher thread."""
        if self._batcher is not None:
            raise RuntimeError("service already started")
        if self.config.cache_dir is not None:
            # The warm-start happens before the first pass, so per-pass
            # diagnostics never see it; fold the attach-time loads into
            # the lifetime stats directly, as the pool workers do.
            load_before = self.annotator.cache_load_bytes
            loaded = self.annotator.load_caches(self.config.cache_dir)
            with self._stats_lock:
                self.stats.cache_loads += sum(
                    1 for warm in loaded.values() if warm
                )
                self.stats.cache_load_bytes += max(
                    0, self.annotator.cache_load_bytes - load_before
                )
            if self.config.flush_interval_seconds > 0:
                self._flusher = PeriodicFlusher(
                    self.flush, self.config.flush_interval_seconds
                ).start()
        self._running.set()
        self._batcher = threading.Thread(
            target=self._batch_loop, name="annotation-batcher", daemon=True
        )
        self._batcher.start()
        return self

    def stop(self) -> None:
        """Stop the batcher, fail whatever is still queued, flush caches.

        The shutdown flush is the same merge-on-save path a graceful
        ``KeyboardInterrupt`` takes through the CLI and the parallel
        driver: whatever warmth this process accumulated is persisted
        (best-effort -- a lock timeout skips, never hangs).
        """
        if not self._running.is_set() and self._batcher is None:
            return
        self._draining = True
        self._running.clear()
        if self._batcher is not None:
            self._batcher.join(timeout=60.0)
            self._batcher = None
        while True:
            try:
                pending = self._queue.get_nowait()
            except queue.Empty:
                break
            pending.resolve(
                Response(
                    ok=False,
                    request_id=pending.request.request_id,
                    error="service is shutting down",
                )
            )
        if self._flusher is not None:
            self._flusher.stop(final_flush=False)
            self._flusher = None
        if self.config.cache_dir is not None:
            self.flush()

    def flush(self) -> dict[str, bool]:
        """Merge-save the annotator's caches to the cache dir, now."""
        if self.config.cache_dir is None:
            return {}
        with self._annotator_lock:
            saved = self.annotator.save_caches(self.config.cache_dir)
        with self._stats_lock:
            self.stats.flushes += 1
        return saved

    # -- request admission --------------------------------------------------------------

    def submit(self, request: Request) -> Response:
        """Answer one request (blocking; annotation ops wait for their batch).

        Every request is measured into the process-wide metrics registry
        (a counter per op plus latency histograms -- the surface the
        ``metrics`` op exposes) and, when tracing is enabled, wrapped in a
        ``service.request`` span tagged with the caller's ``trace_id``.
        """
        t0 = time.perf_counter()
        if request.trace_id is not None:
            tracing.set_trace_id(request.trace_id)
        try:
            with span(
                "service.request", op=request.op, request_id=request.request_id
            ):
                response = self._submit(request)
        finally:
            if request.trace_id is not None:
                tracing.set_trace_id(None)
        elapsed = time.perf_counter() - t0
        registry = obs_metrics.get_registry()
        registry.inc("service.requests")
        registry.inc(f"service.requests.{request.op}")
        if not response.ok:
            registry.inc("service.request_errors")
        registry.observe("service.request_latency_seconds", elapsed)
        if request.op in ANNOTATE_OPS:
            registry.observe("service.annotate_latency_seconds", elapsed)
        return response

    def _submit(self, request: Request) -> Response:
        handler = {
            "ping": self._ping,
            "stats": self._stats_snapshot,
            "metrics": self._metrics,
            "shutdown": self._shutdown,
        }.get(request.op)
        if handler is not None:
            return handler(request)
        if request.op not in ANNOTATE_OPS:
            return Response(
                ok=False,
                request_id=request.request_id,
                error=f"unknown operation {request.op!r}",
            )
        if self._draining or not self._running.is_set():
            return Response(
                ok=False,
                request_id=request.request_id,
                error="service is shutting down",
            )
        try:
            pending = _Pending(
                request,
                protocol.table_for_request(request),
                protocol.request_type_keys(request),
            )
        except ProtocolError as error:
            return Response(
                ok=False, request_id=request.request_id, error=str(error)
            )
        with self._pending_lock:
            self._pending_count += 1
        try:
            self._queue.put(pending)
            if not pending.done.wait(
                timeout=self.config.request_timeout_seconds
            ):
                pending.abandoned = True
                return Response(
                    ok=False,
                    request_id=request.request_id,
                    error=(
                        "request timed out after "
                        f"{self.config.request_timeout_seconds:.0f}s"
                    ),
                )
        finally:
            with self._pending_lock:
                self._pending_count -= 1
        assert pending.response is not None
        return pending.response

    def _ping(self, request: Request) -> Response:
        return Response(
            ok=True,
            request_id=request.request_id,
            result={
                "version": PROTOCOL_VERSION,
                "pid": os.getpid(),
                "uptime_seconds": time.monotonic() - self.started_at,
            },
        )

    def _stats_snapshot(self, request: Request) -> Response:
        with self._stats_lock:
            payload = self.stats.to_payload()
        payload["uptime_seconds"] = time.monotonic() - self.started_at
        payload["batch_window_ms"] = self.config.batch_window_ms
        payload["max_batch_tables"] = self.config.max_batch_tables
        # Which index storage backend this daemon serves from ("memory":
        # a private in-process copy; "mmap": a frozen artifact shared
        # zero-copy with every other process that opened it).
        payload["index_backend"] = self.annotator.engine.index.backend_name
        # And which cache storage backend its warm state persists through
        # ("memory": private pickled-dict files; "disk": sharded stores
        # shared with every worker and daemon on the host).
        payload["cache_backend"] = self.annotator.config.cache_backend
        return Response(ok=True, request_id=request.request_id, result=payload)

    def _metrics(self, request: Request) -> Response:
        """The process-wide registry as Prometheus text exposition."""
        with self._pending_lock:
            depth = self._pending_count
        registry = obs_metrics.get_registry()
        registry.set_gauge("service.pending_requests", depth)
        registry.set_gauge(
            "service.uptime_seconds", time.monotonic() - self.started_at
        )
        return Response(
            ok=True,
            request_id=request.request_id,
            result={"exposition": registry.render_prometheus()},
        )

    def _shutdown(self, request: Request) -> Response:
        """Drain the queue, flush, and confirm -- the daemon closes after."""
        self._draining = True
        deadline = time.monotonic() + 60.0
        while self._pending_count and time.monotonic() < deadline:
            time.sleep(0.02)
        saved = self.flush() if self.config.cache_dir is not None else {}
        with self._stats_lock:
            stats = self.stats.to_payload()
        return Response(
            ok=True,
            request_id=request.request_id,
            result={"saved": {k: bool(v) for k, v in saved.items()}, "stats": stats},
        )

    # -- the micro-batcher --------------------------------------------------------------

    def _batch_loop(self) -> None:
        """Collect a tick's worth of requests, run the pooled pass, demux."""
        window = self.config.batch_window_ms / 1000.0
        while self._running.is_set():
            try:
                first = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            batch = [first]
            deadline = time.monotonic() + window
            while len(batch) < self.config.max_batch_tables:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    batch.append(self._queue.get(timeout=remaining))
                except queue.Empty:
                    break
            self._process(batch)

    def _process(self, batch: list[_Pending]) -> None:
        """One tick: one pooled pass per distinct ``type_keys`` group."""
        # A submitter that timed out already returned an error; paying a
        # corpus pass (and counting a request in the stats) for it would
        # only delay the live requests behind the annotator lock.
        batch = [pending for pending in batch if not pending.abandoned]
        groups: dict[tuple[str, ...], list[_Pending]] = {}
        for pending in batch:
            groups.setdefault(pending.type_keys, []).append(pending)
        for type_keys, group in groups.items():
            self._annotate_group(group, list(type_keys))

    def _annotate_group(
        self,
        group: list[_Pending],
        type_keys: list[str],
        bisect_depth: int = 0,
    ) -> None:
        """One pooled pass, with batch-poison isolation on failure.

        Micro-batching's sharp edge: one malformed request pooled with
        nine healthy ones must not fail all ten.  When a pooled pass
        raises, the group is bisected and each half retried, recursively,
        until the offending request is alone -- *it* gets a structured
        error response (and counts as ``poisoned_requests``), everyone
        else is served by the successful sub-passes.  A healthy batch
        costs zero extra passes; a single poison among N costs
        O(log N) extra pooled passes.

        With tracing enabled, each pooled pass is one ``service.batch``
        span tagged with every coalesced request's ``trace_id`` -- the
        bisection retries show up as further ``service.batch`` spans with
        increasing ``bisect_depth``, so a poisoned batch's recovery path
        is visible as linked retry spans in the exported trace.
        """
        trace_ids = [
            pending.request.trace_id
            for pending in group
            if pending.request.trace_id
        ]
        registry = obs_metrics.get_registry()
        tracing.set_trace_id(trace_ids[0] if trace_ids else None)
        batch_t0 = time.perf_counter()
        try:
            with span(
                "service.batch",
                n_requests=len(group),
                type_keys=list(type_keys),
                trace_ids=trace_ids,
                bisect_depth=bisect_depth,
            ):
                with self._annotator_lock:
                    result = self.annotator.annotate_batch(
                        [pending.table for pending in group],
                        type_keys,
                        workers=self.config.workers,
                    )
        except Exception as error:  # answer, never kill the batcher
            registry.inc("service.batch_failures")
            if len(group) == 1:
                pending = group[0]
                with self._stats_lock:
                    self.stats.poisoned_requests += 1
                registry.inc("service.poisoned_requests")
                pending.resolve(
                    Response(
                        ok=False,
                        request_id=pending.request.request_id,
                        error=f"annotation failed: {error}",
                    )
                )
                return
            middle = len(group) // 2
            self._annotate_group(group[:middle], type_keys, bisect_depth + 1)
            self._annotate_group(group[middle:], type_keys, bisect_depth + 1)
            return
        finally:
            tracing.set_trace_id(None)
        registry.inc("service.batches")
        registry.inc("service.batched_requests", len(group))
        registry.observe(
            "service.batch_latency_seconds", time.perf_counter() - batch_t0
        )
        with self._stats_lock:
            self.stats.record_batch(len(group), result.diagnostics)
        for pending, annotation in zip(group, result.annotations):
            pending.resolve(self._respond(pending, annotation))

    def _respond(
        self, pending: _Pending, annotation: TableAnnotation
    ) -> Response:
        result: dict = {
            "annotation": protocol.annotation_to_payload(annotation)
        }
        if pending.request.op == "annotate_cells":
            result["cells"] = protocol.cell_decisions(
                annotation, pending.table.n_rows
            )
        return Response(
            ok=True, request_id=pending.request.request_id, result=result
        )


if HAVE_UNIX_SOCKETS:

    class _UnixServer(socketserver.ThreadingUnixStreamServer):
        daemon_threads = True
        request_queue_size = 128  # a burst of clients must not hit EAGAIN
        service: AnnotationService

        def initiate_shutdown(self) -> None:
            """Stop ``serve_forever`` without blocking the calling handler."""
            threading.Thread(target=self.shutdown, daemon=True).start()


class _ConnectionHandler(socketserver.StreamRequestHandler):
    """One client connection: line in, line out, any number of requests."""

    def handle(self) -> None:
        try:
            while True:
                line = self.rfile.readline()
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                try:
                    request = protocol.decode_request(line)
                except ProtocolError as error:
                    # Malformed line (bad JSON, missing op, oversized):
                    # structured error back, connection stays usable.
                    self._write(Response(ok=False, error=str(error)))
                    continue
                response = self.server.service.submit(request)  # type: ignore[attr-defined]
                self._write(response)
                if request.op == "shutdown" and response.ok:
                    self.server.initiate_shutdown()  # type: ignore[attr-defined]
                    return
        except (ConnectionError, socket.timeout):
            # A client that vanished mid-request (reset, broken pipe)
            # takes down its own handler thread only -- the daemon and
            # every other connection keep serving.
            return

    def _write(self, response: Response) -> None:
        try:
            self.wfile.write(protocol.encode_response(response))
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass


class AnnotationDaemon:
    """The socket daemon: one warm annotator served over a Unix socket.

    Construction binds the socket (stale socket files are replaced), so a
    client may connect the moment the constructor returns;
    :meth:`serve_forever` blocks in the accept loop,
    :meth:`start_background` runs it on a thread (tests, benchmarks, and
    in-process embedding).  Shutdown -- via a client ``shutdown`` request,
    :meth:`close`, or ``KeyboardInterrupt`` in the serving thread --
    always runs the service's drain-and-flush path before the socket file
    is removed.
    """

    def __init__(
        self,
        annotator: EntityAnnotator,
        socket_path,
        config: ServiceConfig | None = None,
    ) -> None:
        if not HAVE_UNIX_SOCKETS:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError(
                "AnnotationDaemon needs Unix-domain sockets; use "
                "AnnotationService in-process instead"
            )
        self.socket_path = str(socket_path)
        self.service = AnnotationService(annotator, config)
        self._replace_stale_socket()
        self.server = _UnixServer(self.socket_path, _ConnectionHandler)
        self.server.service = self.service
        try:
            self._socket_inode = os.stat(self.socket_path).st_ino
        except OSError:  # pragma: no cover - raced removal
            self._socket_inode = None
        self._thread: threading.Thread | None = None

    def _replace_stale_socket(self) -> None:
        """Unlink a *stale* socket file; refuse to steal a live daemon's.

        A previous daemon that crashed leaves its socket file behind
        (connecting is refused) -- replace it.  A file another daemon is
        actively serving on must not be silently unlinked: that would
        split clients between two daemons and let this one's teardown
        delete the other's socket.
        """
        if not os.path.exists(self.socket_path):
            return
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            probe.settimeout(1.0)
            try:
                probe.connect(self.socket_path)
            except OSError:
                os.unlink(self.socket_path)  # stale: nobody is serving
                return
        finally:
            probe.close()
        raise RuntimeError(
            f"a daemon is already serving on {self.socket_path}; "
            "shut it down first or pick another --socket path"
        )

    def serve_forever(self) -> None:
        """Serve until a shutdown request or :meth:`close` (blocking)."""
        self.service.start()
        try:
            self.server.serve_forever(poll_interval=0.1)
        finally:
            self._teardown()

    def start_background(self) -> "AnnotationDaemon":
        """Serve on a daemon thread; returns once requests can be answered."""
        if self._thread is not None:
            raise RuntimeError("daemon already started")
        self.service.start()
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="annotation-daemon",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving (idempotent): drain, flush, remove the socket file."""
        if self._thread is not None:
            self.server.shutdown()
            self._thread.join(timeout=30.0)
            self._thread = None
        self._teardown()

    def _teardown(self) -> None:
        self.service.stop()
        self.server.server_close()
        try:
            # Remove only *our own* socket file: if another process has
            # since replaced it (a hijack we could not prevent, or an
            # operator cleaning up by hand), the inode no longer matches
            # and the file is theirs to manage.
            if os.stat(self.socket_path).st_ino == self._socket_inode:
                os.unlink(self.socket_path)
        except OSError:  # pragma: no cover - already removed
            pass

    def __enter__(self) -> "AnnotationDaemon":
        return self.start_background()

    def __exit__(self, *exc_info) -> None:
        self.close()
