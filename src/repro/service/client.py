"""Blocking client for the resident annotation daemon.

One connection, any number of requests, strict request/response pairing
over the line protocol of :mod:`repro.service.protocol`:

    with ServiceClient("/tmp/repro.sock") as client:
        client.ping()
        annotation = client.annotate_table(table, ["museum", "restaurant"])
        decisions = client.annotate_cells(["Louvre"], ["museum"])
        client.stats()

The client is deliberately dumb: no pooling, no retries, no pipelining --
it exists so tests, the CLI ``client`` subcommand, the benchmark's
concurrent-clients scenario and user scripts all speak the wire format
through one implementation.  A :class:`ServiceError` carries the daemon's
error string; transport problems raise the underlying ``OSError``.
"""

from __future__ import annotations

import socket

from repro.core.results import TableAnnotation
from repro.observability import tracing
from repro.service import protocol
from repro.service.protocol import ProtocolError, Request
from repro.tables.model import Table


class ServiceError(RuntimeError):
    """The daemon answered, but with an error."""


class ServiceClient:
    """A blocking line-protocol client over a Unix-domain socket."""

    def __init__(self, socket_path, timeout: float = 300.0) -> None:
        self.socket_path = str(socket_path)
        self._socket = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._socket.settimeout(timeout)
        self._socket.connect(self.socket_path)
        self._reader = self._socket.makefile("rb")
        self._writer = self._socket.makefile("wb")
        self._next_id = 0

    # -- transport ----------------------------------------------------------------------

    def _request(self, request: Request) -> dict:
        """Send one request, read its response, return the result dict."""
        self._writer.write(protocol.encode_request(request))
        self._writer.flush()
        line = self._reader.readline()
        if not line:
            raise ConnectionError(
                f"daemon at {self.socket_path} closed the connection"
            )
        response = protocol.decode_response(line)
        if response.request_id != request.request_id:
            raise ProtocolError(
                f"response id {response.request_id!r} does not match "
                f"request id {request.request_id!r}"
            )
        if not response.ok:
            raise ServiceError(response.error or "unknown service error")
        return response.result or {}

    def _id(self) -> str:
        self._next_id += 1
        return str(self._next_id)

    # -- operations ---------------------------------------------------------------------

    def ping(self) -> dict:
        """Liveness check; returns version, pid and uptime."""
        return self._request(protocol.ping_request(self._id()))

    def stats(self) -> dict:
        """The daemon's lifetime :class:`~repro.core.results.ServiceStats`
        snapshot (plus uptime and batching configuration)."""
        return self._request(protocol.stats_request(self._id()))

    def metrics(self) -> str:
        """The daemon's metrics registry as Prometheus text exposition."""
        result = self._request(protocol.metrics_request(self._id()))
        return result.get("exposition", "")

    def annotate_table(
        self,
        table: Table,
        type_keys: list[str],
        trace_id: str | None = None,
    ) -> TableAnnotation:
        """Annotate *table*; returns the same :class:`TableAnnotation` an
        in-process ``annotate_table`` call would (byte-identical).

        *trace_id* (default: the caller's active trace, if tracing is on)
        rides the wire so the daemon's admission/batch spans link back to
        this client's trace.
        """
        result = self._request(
            protocol.annotate_table_request(
                table, type_keys, self._id(), trace_id=self._trace_id(trace_id)
            )
        )
        return protocol.annotation_from_payload(result["annotation"])

    def annotate_cells(
        self,
        values: list[str],
        type_keys: list[str],
        name: str = "cells",
        trace_id: str | None = None,
    ) -> list[dict | None]:
        """Annotate bare cell *values*; element *i* of the answer is the
        decision for value *i* (``None`` when unannotated)."""
        result = self._request(
            protocol.annotate_cells_request(
                values,
                type_keys,
                self._id(),
                name,
                trace_id=self._trace_id(trace_id),
            )
        )
        return result["cells"]

    @staticmethod
    def _trace_id(explicit: str | None) -> str | None:
        if explicit is not None:
            return explicit
        if tracing.tracing_enabled():
            return tracing.current_trace_id()
        return None

    def shutdown(self) -> dict:
        """Ask the daemon to drain, flush its caches and exit."""
        return self._request(protocol.shutdown_request(self._id()))

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        for closable in (self._reader, self._writer, self._socket):
            try:
                closable.close()
            except OSError:  # pragma: no cover - already torn down
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
