"""Baseline annotators evaluated against the algorithm (Sections 6.2-6.3).

* :mod:`repro.baselines.type_in_name` -- TIN: annotate a cell iff it
  literally contains the type name;
* :mod:`repro.baselines.type_in_snippet` -- TIS: annotate iff the majority
  of retrieved snippets contain the type name;
* :mod:`repro.baselines.limaye` -- a catalogue-based collective annotator
  standing in for Limaye et al. (2010), the comparison of Section 6.3.
"""

from repro.baselines.giuliano import GiulianoAnnotator
from repro.baselines.limaye import LimayeAnnotator
from repro.baselines.type_in_name import TypeInNameAnnotator
from repro.baselines.type_in_snippet import TypeInSnippetAnnotator

__all__ = [
    "GiulianoAnnotator",
    "LimayeAnnotator",
    "TypeInNameAnnotator",
    "TypeInSnippetAnnotator",
]
