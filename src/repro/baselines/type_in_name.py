"""The TypeInName (TIN) baseline (Section 6.2).

"TIN annotates a cell T(i, j) with type t, and sets the score S_ij to 1.0
only if T(i, j) contains the name of type t (e.g. 'restaurant')."

The containment check is token-level and case-insensitive, with a light
singular/plural stem match so "Restaurants" matches type word "restaurant".
TIN issues no search queries; it is the zero-cost baseline.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.config import AnnotatorConfig
from repro.core.preprocessing import Preprocessor
from repro.core.results import AnnotationRun, CellAnnotation, TableAnnotation
from repro.synth.types import type_spec
from repro.tables.model import Table
from repro.text.porter import stem
from repro.text.tokenization import tokenize


class TypeInNameAnnotator:
    """Annotates cells whose text contains the type word."""

    def __init__(self, config: AnnotatorConfig | None = None) -> None:
        self.config = config or AnnotatorConfig()
        self.preprocessor = Preprocessor(self.config)

    @staticmethod
    def cell_matches(value: str, type_word: str) -> bool:
        """True when *value* contains *type_word* (stem-tolerant).

        >>> TypeInNameAnnotator.cell_matches("Louvre Museum", "museum")
        True
        >>> TypeInNameAnnotator.cell_matches("Melisse", "restaurant")
        False
        """
        needle = stem(type_word.lower())
        return any(stem(token) == needle for token in tokenize(value))

    def annotate_table(self, table: Table, type_keys: Sequence[str]) -> TableAnnotation:
        """Annotate one table; first matching type wins per cell."""
        annotation = TableAnnotation(table_name=table.name)
        for candidate in self.preprocessor.candidate_cells(table):
            for type_key in type_keys:
                type_word = type_spec(type_key).type_word
                if self.cell_matches(candidate.value, type_word):
                    annotation.add(
                        CellAnnotation(
                            table_name=table.name,
                            row=candidate.row,
                            column=candidate.column,
                            type_key=type_key,
                            score=1.0,
                            cell_value=candidate.value,
                        )
                    )
                    break
        return annotation

    def annotate_tables(
        self, tables: Iterable[Table], type_keys: Sequence[str]
    ) -> AnnotationRun:
        """Annotate a corpus."""
        run = AnnotationRun()
        for table in tables:
            run.tables[table.name] = self.annotate_table(table, type_keys)
        return run
