"""A catalogue-based collective annotator standing in for Limaye et al.

Limaye, Sarawagi & Chakrabarti (VLDB 2010) annotate cells, columns and
relations jointly against a catalogue (YAGO in their paper).  For the
Section 6.3 comparison only entity annotation accuracy matters, so this
baseline reproduces the essential mechanism -- catalogue lookup combined
with column-level collective inference:

1. every cell is looked up in the catalogue; a cell contributes one vote to
   each of its candidate types;
2. each column is assigned the type with the most votes (column coherence,
   the joint-inference ingredient);
3. a cell is annotated with its column's type iff the catalogue supports
   that type for the cell's value.

By construction the baseline can only annotate *known* entities -- the
paper's central criticism -- which the coverage experiment (X1) quantifies.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.config import AnnotatorConfig
from repro.core.preprocessing import Preprocessor
from repro.core.results import AnnotationRun, CellAnnotation, TableAnnotation
from repro.kb.catalogue import Catalogue
from repro.tables.model import Table


class LimayeAnnotator:
    """Catalogue lookup + column-majority collective assignment."""

    def __init__(
        self, catalogue: Catalogue, config: AnnotatorConfig | None = None
    ) -> None:
        self.catalogue = catalogue
        self.config = config or AnnotatorConfig()
        self.preprocessor = Preprocessor(self.config)

    def annotate_table(self, table: Table, type_keys: Sequence[str]) -> TableAnnotation:
        """Annotate one table against the catalogue."""
        wanted = set(type_keys)
        annotation = TableAnnotation(table_name=table.name)
        candidates = self.preprocessor.candidate_cells(table)
        # Step 1: per-column type votes from catalogue lookups.
        votes: dict[int, dict[str, int]] = {}
        cell_types: dict[tuple[int, int], set[str]] = {}
        for candidate in candidates:
            types = self.catalogue.types_of(candidate.value) & wanted
            if not types:
                continue
            cell_types[(candidate.row, candidate.column)] = types
            column_votes = votes.setdefault(candidate.column, {})
            for type_key in types:
                column_votes[type_key] = column_votes.get(type_key, 0) + 1
        # Step 2: column-majority type (ties resolved alphabetically).
        column_type: dict[int, str] = {}
        for column, column_votes in votes.items():
            best = max(column_votes.values())
            column_type[column] = min(
                t for t, count in column_votes.items() if count == best
            )
        # Step 3: annotate supported cells with their column's type.
        for candidate in candidates:
            key = (candidate.row, candidate.column)
            if key not in cell_types:
                continue
            assigned = column_type.get(candidate.column)
            if assigned is not None and assigned in cell_types[key]:
                annotation.add(
                    CellAnnotation(
                        table_name=table.name,
                        row=candidate.row,
                        column=candidate.column,
                        type_key=assigned,
                        score=1.0,
                        cell_value=candidate.value,
                    )
                )
        return annotation

    def annotate_tables(
        self, tables: Iterable[Table], type_keys: Sequence[str]
    ) -> AnnotationRun:
        """Annotate a corpus."""
        run = AnnotationRun()
        for table in tables:
            run.tables[table.name] = self.annotate_table(table, type_keys)
        return run
