"""The TypeInSnippet (TIS) baseline (Section 6.2).

"TIS annotates a cell T(i, j) with type t if the majority of the snippets
retrieved by querying Bing contains the name of type t.  The score S_ij is
set as in Equation 1."

TIS needs the search engine but no classifier: it simply greps the type
word (stem-tolerant) in each snippet.  It shares the snippet cache with the
main algorithm, since both issue the same per-cell queries.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.annotation import SnippetCache
from repro.core.config import AnnotatorConfig
from repro.core.preprocessing import Preprocessor
from repro.core.results import AnnotationRun, CellAnnotation, TableAnnotation
from repro.synth.types import type_spec
from repro.tables.model import Table
from repro.text.porter import stem
from repro.text.tokenization import tokenize
from repro.web.search import SearchEngine, SearchEngineUnavailable


class TypeInSnippetAnnotator:
    """Annotates cells whose snippets mostly contain the type word."""

    def __init__(
        self,
        engine: SearchEngine,
        config: AnnotatorConfig | None = None,
        cache: SnippetCache | None = None,
    ) -> None:
        self.engine = engine
        self.config = config or AnnotatorConfig()
        self.preprocessor = Preprocessor(self.config)
        self.cache = cache

    @staticmethod
    def snippet_matches(snippet: str, type_word: str) -> bool:
        """True when the snippet contains the type word (stem-tolerant)."""
        needle = stem(type_word.lower())
        return any(stem(token) == needle for token in tokenize(snippet))

    def _snippets(self, query: str) -> list[str] | None:
        k = self.config.top_k
        if self.cache is not None:
            cached = self.cache.get(query, k)
            if cached is not None:
                return cached
        try:
            results = self.engine.search(query, k=k)
        except SearchEngineUnavailable:
            return None
        snippets = [result.snippet for result in results]
        if self.cache is not None:
            self.cache.put(query, k, snippets)
        return snippets

    def annotate_table(self, table: Table, type_keys: Sequence[str]) -> TableAnnotation:
        """Annotate one table; the best majority type wins per cell."""
        annotation = TableAnnotation(table_name=table.name)
        k = self.config.top_k
        for candidate in self.preprocessor.candidate_cells(table):
            snippets = self._snippets(candidate.value)
            if not snippets:
                continue
            best_type: str | None = None
            best_count = 0
            for type_key in type_keys:
                type_word = type_spec(type_key).type_word
                count = sum(
                    1 for snippet in snippets if self.snippet_matches(snippet, type_word)
                )
                if count > best_count:
                    best_count = count
                    best_type = type_key
            if best_type is not None and best_count > self.config.majority_count:
                annotation.add(
                    CellAnnotation(
                        table_name=table.name,
                        row=candidate.row,
                        column=candidate.column,
                        type_key=best_type,
                        score=best_count / k,
                        cell_value=candidate.value,
                    )
                )
        return annotation

    def annotate_tables(
        self, tables: Iterable[Table], type_keys: Sequence[str]
    ) -> AnnotationRun:
        """Annotate a corpus."""
        run = AnnotationRun()
        for table in tables:
            run.tables[table.name] = self.annotate_table(table, type_keys)
        return run
