"""A Giuliano-style similarity annotator (the approach §5.2.1 critiques).

Giuliano (CoNLL 2009) classifies an entity by comparing the snippets
retrieved for it with the snippets retrieved for entities of known type.
The paper adopts search-and-snippets from this idea but replaces the
similarity comparison with a trained text classifier, arguing that
similarity cannot tell an entity from *text about* the entity: "chances
are that a review of a restaurant is classified as a reference to an
entity of type restaurant".

This baseline implements the similarity variant so the critique is
measurable: per-type centroids are built from the same training snippets
the classifier uses; a cell is annotated with the nearest centroid's type
when the average cosine similarity of its snippets clears a threshold.
The expected failure mode -- precision loss on review-like cells -- is
asserted by its benchmark.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.classify.dataset import TextDataset
from repro.core.annotation import SnippetCache
from repro.core.clustering import cosine_similarity
from repro.core.config import AnnotatorConfig
from repro.core.preprocessing import Preprocessor
from repro.core.results import AnnotationRun, CellAnnotation, TableAnnotation
from repro.tables.model import Table
from repro.text.pipeline import TextPipeline
from repro.web.search import SearchEngine, SearchEngineUnavailable


class GiulianoAnnotator:
    """Nearest-centroid snippet similarity annotation."""

    def __init__(
        self,
        engine: SearchEngine,
        config: AnnotatorConfig | None = None,
        similarity_threshold: float = 0.12,
        cache: SnippetCache | None = None,
    ) -> None:
        if not 0.0 < similarity_threshold < 1.0:
            raise ValueError(
                f"similarity_threshold must be in (0, 1), got {similarity_threshold}"
            )
        self.engine = engine
        self.config = config or AnnotatorConfig()
        self.similarity_threshold = similarity_threshold
        self.cache = cache
        self.preprocessor = Preprocessor(self.config)
        self.pipeline = TextPipeline()
        self.centroids_: dict[str, dict[str, float]] = {}

    # -- training --------------------------------------------------------------------

    def fit(self, dataset: TextDataset) -> "GiulianoAnnotator":
        """Build one centroid per label from labelled snippets."""
        sums: dict[str, dict[str, float]] = {}
        counts: dict[str, int] = {}
        for text, label in dataset:
            vector = self.pipeline.features(text)
            centroid = sums.setdefault(label, {})
            for token, value in vector.items():
                centroid[token] = centroid.get(token, 0.0) + value
            counts[label] = counts.get(label, 0) + 1
        self.centroids_ = {
            label: {t: v / counts[label] for t, v in centroid.items()}
            for label, centroid in sums.items()
        }
        return self

    # -- inference --------------------------------------------------------------------

    def type_of_snippets(
        self, snippets: Sequence[str], type_keys: Sequence[str]
    ) -> tuple[str | None, float]:
        """(best type, average similarity) over *snippets*."""
        if not self.centroids_:
            raise RuntimeError("GiulianoAnnotator is not fitted")
        if not snippets:
            return None, 0.0
        best_type: str | None = None
        best_similarity = self.similarity_threshold
        for type_key in type_keys:
            centroid = self.centroids_.get(type_key)
            if centroid is None:
                continue
            total = sum(
                cosine_similarity(self.pipeline.features(snippet), centroid)
                for snippet in snippets
            )
            average = total / len(snippets)
            if average > best_similarity:
                best_similarity = average
                best_type = type_key
        if best_type is None:
            return None, 0.0
        return best_type, best_similarity

    def _snippets(self, query: str) -> list[str] | None:
        k = self.config.top_k
        if self.cache is not None:
            cached = self.cache.get(query, k)
            if cached is not None:
                return cached
        try:
            results = self.engine.search(query, k=k)
        except SearchEngineUnavailable:
            return None
        snippets = [result.snippet for result in results]
        if self.cache is not None:
            self.cache.put(query, k, snippets)
        return snippets

    def annotate_table(self, table: Table, type_keys: Sequence[str]) -> TableAnnotation:
        """Annotate one table by snippet-centroid similarity."""
        annotation = TableAnnotation(table_name=table.name)
        for candidate in self.preprocessor.candidate_cells(table):
            snippets = self._snippets(candidate.value)
            if not snippets:
                continue
            type_key, similarity = self.type_of_snippets(snippets, type_keys)
            if type_key is not None:
                annotation.add(
                    CellAnnotation(
                        table_name=table.name,
                        row=candidate.row,
                        column=candidate.column,
                        type_key=type_key,
                        score=min(1.0, similarity),
                        cell_value=candidate.value,
                    )
                )
        return annotation

    def annotate_tables(
        self, tables: Iterable[Table], type_keys: Sequence[str]
    ) -> AnnotationRun:
        """Annotate a corpus."""
        run = AnnotationRun()
        for table in tables:
            run.tables[table.name] = self.annotate_table(table, type_keys)
        return run
