"""Versioned on-disk persistence for the pipeline's amortisation caches.

The batched annotation engine earns most of its speed from caches that are
pure functions of immutable inputs: the search engine's token-signature ->
ranked-results cache (valid for one exact corpus and one BM25
parametrisation) and the annotator's snippet -> label memo (valid for one
fitted classifier).  This module gives both a common durable format so a
second process -- or a second CLI invocation -- starts warm instead of
recomputing them.

Every file carries three guards checked on load:

``format_version``
    bumped whenever the payload layout changes; old files are ignored;
``kind``
    what the payload is (``"search-results"``, ``"label-memo"``), so a
    file can never be loaded into the wrong cache;
``fingerprint``
    the producer's identity token (corpus content digest + BM25 parameters
    for the engine, a classifier weight digest for the memo).  A mismatch
    means the world changed -- corpus grew, classifier retrained -- and
    the cache is silently treated as cold, mirroring the in-memory
    invalidation hooks (``SearchEngine._validate_caches`` drops ranking
    caches whenever the corpus grows).

Concurrency
-----------
A cache directory may be shared by several worker processes (the
``annotate_tables(workers=N)`` execution layer).  Two mechanisms make that
safe:

* **advisory file locking** -- every save takes an exclusive ``flock`` on
  a ``<name>.lock`` sidecar, every load a shared one, so a read never
  observes a half-finished merge and two writers serialise.  Lock waits
  are bounded (:data:`DEFAULT_LOCK_TIMEOUT`); on timeout a load reports a
  cold start (``None``) and a save is skipped (``False``) rather than
  deadlocking -- persistence is an optimisation, never a correctness
  dependency.  On platforms without ``fcntl`` locking degrades to
  best-effort unlocked operation (writes stay atomic either way).
* **merge-on-save** -- a saver may pass a ``merge`` hook; under the
  exclusive lock the existing payload (same version, kind and
  fingerprint) is loaded and merged with the fresh one before the
  replace, so a worker's save never discards entries another worker
  persisted in the meantime.  Without a hook the historical
  last-writer-wins replace is kept.

Writes go through a temporary file and ``os.replace`` so a crashed writer
never leaves a truncated cache behind; the temporary file is unlinked even
when serialisation fails (disk full, unpicklable payload).  Loads treat
*any* unreadable file as a cold start rather than an error.
"""

from __future__ import annotations

import os
import pickle
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable

try:  # POSIX advisory locking; degrade gracefully elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

CACHE_FORMAT_VERSION = 1
"""Bump when the persisted payload layout changes; old files are ignored."""

DEFAULT_LOCK_TIMEOUT = 10.0
"""Seconds a save/load waits for the advisory lock before giving up."""

_LOCK_POLL_SECONDS = 0.02
"""Interval between non-blocking lock attempts while waiting."""


class CacheLockTimeout(Exception):
    """Internal: the advisory lock could not be acquired in time."""


def lock_path_for(path) -> Path:
    """The sidecar lock file guarding *path* (kept separate from the
    payload so ``os.replace`` never swaps the inode a lock lives on)."""
    path = Path(path)
    return path.with_name(path.name + ".lock")


@contextmanager
def _locked(path: Path, exclusive: bool, timeout: float):
    """Advisory lock on *path*'s sidecar; raises :class:`CacheLockTimeout`.

    No-op (still yields) when ``fcntl`` is unavailable.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX platforms
        yield
        return
    lock_file = lock_path_for(path)
    lock_file.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(lock_file, os.O_RDWR | os.O_CREAT, 0o644)
    try:
        operation = (fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH) | fcntl.LOCK_NB
        deadline = time.monotonic() + max(timeout, 0.0)
        while True:
            try:
                fcntl.flock(fd, operation)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise CacheLockTimeout(
                        f"could not lock {lock_file} within {timeout:.1f}s"
                    ) from None
                time.sleep(_LOCK_POLL_SECONDS)
        try:
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
    finally:
        os.close(fd)


def _read_blob(path) -> dict | None:
    """The raw guarded blob at *path*, or ``None`` for anything unreadable."""
    try:
        with open(path, "rb") as handle:
            blob = pickle.load(handle)
    except Exception:
        # Unpickling a foreign file can raise nearly anything -- missing
        # modules or attributes from an old layout, truncation, corruption.
        # Every failure mode means the same thing here: start cold.
        return None
    return blob if isinstance(blob, dict) else None


def _payload_of(blob: dict | None, kind: str, fingerprint: Any) -> Any | None:
    """Extract the payload of a guarded blob iff every guard matches."""
    if blob is None:
        return None
    if blob.get("format_version") != CACHE_FORMAT_VERSION:
        return None
    if blob.get("kind") != kind:
        return None
    if blob.get("fingerprint") != fingerprint:
        return None
    return blob.get("payload")


def save_cache_payload(
    path,
    kind: str,
    fingerprint: Any,
    payload: Any,
    merge: Callable[[Any, Any], Any] | None = None,
    lock_timeout: float = DEFAULT_LOCK_TIMEOUT,
) -> bool:
    """Atomically write *payload* with version/kind/fingerprint guards.

    With a *merge* hook, the write is load-merge-replace under an
    exclusive advisory lock: an existing compatible payload (same format
    version, kind and fingerprint) is combined via ``merge(existing,
    payload)`` first, so concurrent savers sharing one cache directory
    union their entries instead of clobbering each other.  An existing
    *incompatible* file (stale fingerprint, other kind) is simply
    replaced.

    Returns ``True`` when the file was written; ``False`` when the lock
    could not be acquired within *lock_timeout* and the save was skipped
    (the cache on disk is then simply missing this process's entries --
    an optimisation lost, never a correctness problem).  Serialisation
    errors (unpicklable payload, disk full) still propagate, but never
    leave a ``*.tmp.<pid>`` file behind.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        with _locked(path, exclusive=True, timeout=lock_timeout):
            if merge is not None:
                existing = _payload_of(_read_blob(path), kind, fingerprint)
                if existing is not None:
                    payload = merge(existing, payload)
            blob = {
                "format_version": CACHE_FORMAT_VERSION,
                "kind": kind,
                "fingerprint": fingerprint,
                "payload": payload,
            }
            tmp_path = path.with_name(f"{path.name}.tmp.{os.getpid()}")
            try:
                with open(tmp_path, "wb") as handle:
                    pickle.dump(blob, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_path, path)
            finally:
                # pickle.dump may have raised (disk full, unpicklable
                # payload) before the replace: never leak the temp file.
                if tmp_path.exists():
                    try:
                        tmp_path.unlink()
                    except OSError:  # pragma: no cover - racing unlink
                        pass
    except CacheLockTimeout:
        return False
    return True


def load_cache_payload(
    path,
    kind: str,
    fingerprint: Any,
    lock_timeout: float = DEFAULT_LOCK_TIMEOUT,
) -> Any | None:
    """Read a payload saved by :func:`save_cache_payload`, or ``None``.

    ``None`` means "start cold": the file is missing, unreadable, from a
    different format version, of a different kind, was produced against a
    different fingerprint (the corpus grew, the classifier was retrained,
    the parameters changed) -- or the shared advisory lock could not be
    acquired within *lock_timeout* (another process is mid-merge and
    stuck; cold-starting beats crashing or hanging).
    """
    try:
        with _locked(Path(path), exclusive=False, timeout=lock_timeout):
            blob = _read_blob(path)
    except CacheLockTimeout:
        return None
    return _payload_of(blob, kind, fingerprint)
