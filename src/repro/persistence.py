"""Versioned on-disk persistence for the pipeline's amortisation caches.

The batched annotation engine earns most of its speed from caches that are
pure functions of immutable inputs: the search engine's token-signature ->
ranked-results cache (valid for one exact corpus and one BM25
parametrisation) and the annotator's snippet -> label memo (valid for one
fitted classifier).  This module gives both a common durable format so a
second process -- or a second CLI invocation -- starts warm instead of
recomputing them.

Every file carries three guards checked on load:

``format_version``
    bumped whenever the payload layout changes; old files are ignored;
``kind``
    what the payload is (``"search-results"``, ``"label-memo"``), so a
    file can never be loaded into the wrong cache;
``fingerprint``
    the producer's identity token (corpus content digest + BM25 parameters
    for the engine, a classifier weight digest for the memo).  A mismatch
    means the world changed -- corpus grew, classifier retrained -- and
    the cache is silently treated as cold, mirroring the in-memory
    invalidation hooks (``SearchEngine._validate_caches`` drops ranking
    caches whenever the corpus grows).

Concurrency
-----------
A cache directory may be shared by several worker processes (the
``annotate_tables(workers=N)`` execution layer).  Two mechanisms make that
safe:

* **advisory file locking** -- every save takes an exclusive ``flock`` on
  a ``<name>.lock`` sidecar, every load a shared one, so a read never
  observes a half-finished merge and two writers serialise.  Lock waits
  are bounded (:data:`DEFAULT_LOCK_TIMEOUT`); on timeout a load reports a
  cold start (``None``) and a save is skipped (``False``) rather than
  deadlocking -- persistence is an optimisation, never a correctness
  dependency.  On platforms without ``fcntl`` locking degrades to
  best-effort unlocked operation (writes stay atomic either way).
* **merge-on-save** -- a saver may pass a ``merge`` hook; under the
  exclusive lock the existing payload (same version, kind and
  fingerprint) is loaded and merged with the fresh one before the
  replace, so a worker's save never discards entries another worker
  persisted in the meantime.  Without a hook the historical
  last-writer-wins replace is kept.

Writes go through a temporary file and ``os.replace`` so a crashed writer
never leaves a truncated cache behind; the temporary file is unlinked even
when serialisation fails (disk full, unpicklable payload).  Loads treat
*any* unreadable file as a cold start rather than an error.
"""

from __future__ import annotations

import json
import logging
import os
import pickle
import struct
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Mapping

import numpy as np

logger = logging.getLogger(__name__)

try:  # POSIX advisory locking; degrade gracefully elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

CACHE_FORMAT_VERSION = 1
"""Bump when the persisted payload layout changes; old files are ignored."""

DEFAULT_LOCK_TIMEOUT = 10.0
"""Seconds a save/load waits for the advisory lock before giving up.

Resolved at *call* time when ``lock_timeout`` is left ``None``, so a
long-lived process (the resident annotation service) -- or a test -- can
tighten every subsequent save/load by rebinding this module attribute."""

_LOCK_POLL_SECONDS = 0.02
"""Interval between non-blocking lock attempts while waiting."""


class CacheLockTimeout(Exception):
    """Internal: the advisory lock could not be acquired in time."""


def lock_path_for(path) -> Path:
    """The sidecar lock file guarding *path* (kept separate from the
    payload so ``os.replace`` never swaps the inode a lock lives on)."""
    path = Path(path)
    return path.with_name(path.name + ".lock")


@contextmanager
def _locked(path: Path, exclusive: bool, timeout: float):
    """Advisory lock on *path*'s sidecar; raises :class:`CacheLockTimeout`.

    No-op (still yields) when ``fcntl`` is unavailable.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX platforms
        yield
        return
    lock_file = lock_path_for(path)
    lock_file.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(lock_file, os.O_RDWR | os.O_CREAT, 0o644)
    try:
        operation = (fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH) | fcntl.LOCK_NB
        deadline = time.monotonic() + max(timeout, 0.0)
        while True:
            try:
                fcntl.flock(fd, operation)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise CacheLockTimeout(
                        f"could not lock {lock_file} within {timeout:.1f}s"
                    ) from None
                time.sleep(_LOCK_POLL_SECONDS)
        try:
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
    finally:
        os.close(fd)


def _read_blob(path) -> dict | None:
    """The raw guarded blob at *path*, or ``None`` for anything unreadable.

    A missing file is the normal cold start and stays silent; a file that
    *exists* but cannot be unpickled (truncated by a crashed writer on a
    pre-atomic layout, bit rot, a foreign file dropped into the cache
    dir) is worth a warning -- the operator should know warmth was lost
    and why -- but still only means "start cold", never an exception.
    """
    try:
        with open(path, "rb") as handle:
            blob = pickle.load(handle)
    except FileNotFoundError:
        return None
    except Exception as error:
        # Unpickling a foreign file can raise nearly anything -- missing
        # modules or attributes from an old layout, truncation, corruption.
        # Every failure mode means the same thing here: start cold.
        logger.warning(
            "cache file %s is unreadable (%s: %s); starting cold",
            path,
            type(error).__name__,
            error,
        )
        return None
    if not isinstance(blob, dict):
        logger.warning(
            "cache file %s holds a %s, not a guarded blob; starting cold",
            path,
            type(blob).__name__,
        )
        return None
    return blob


def _payload_of(blob: dict | None, kind: str, fingerprint: Any) -> Any | None:
    """Extract the payload of a guarded blob iff every guard matches."""
    if blob is None:
        return None
    if blob.get("format_version") != CACHE_FORMAT_VERSION:
        return None
    if blob.get("kind") != kind:
        return None
    if blob.get("fingerprint") != fingerprint:
        return None
    return blob.get("payload")


def save_cache_payload(
    path,
    kind: str,
    fingerprint: Any,
    payload: Any,
    merge: Callable[[Any, Any], Any] | None = None,
    lock_timeout: float | None = None,
) -> bool:
    """Atomically write *payload* with version/kind/fingerprint guards.

    With a *merge* hook, the write is load-merge-replace under an
    exclusive advisory lock: an existing compatible payload (same format
    version, kind and fingerprint) is combined via ``merge(existing,
    payload)`` first, so concurrent savers sharing one cache directory
    union their entries instead of clobbering each other.  An existing
    *incompatible* file (stale fingerprint, other kind) is simply
    replaced.

    Returns ``True`` when the file was written; ``False`` when the lock
    could not be acquired within *lock_timeout* and the save was skipped
    (the cache on disk is then simply missing this process's entries --
    an optimisation lost, never a correctness problem).  Serialisation
    errors (unpicklable payload, disk full) still propagate, but never
    leave a ``*.tmp.<pid>`` file behind.
    """
    if lock_timeout is None:
        lock_timeout = DEFAULT_LOCK_TIMEOUT
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        with _locked(path, exclusive=True, timeout=lock_timeout):
            if merge is not None:
                existing = _payload_of(_read_blob(path), kind, fingerprint)
                if existing is not None:
                    payload = merge(existing, payload)
            blob = {
                "format_version": CACHE_FORMAT_VERSION,
                "kind": kind,
                "fingerprint": fingerprint,
                "payload": payload,
            }
            tmp_path = path.with_name(f"{path.name}.tmp.{os.getpid()}")
            try:
                with open(tmp_path, "wb") as handle:
                    pickle.dump(blob, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_path, path)
            finally:
                # pickle.dump may have raised (disk full, unpicklable
                # payload) before the replace: never leak the temp file.
                if tmp_path.exists():
                    try:
                        tmp_path.unlink()
                    except OSError:  # pragma: no cover - racing unlink
                        pass
    except CacheLockTimeout:
        return False
    return True


def load_cache_payload(
    path,
    kind: str,
    fingerprint: Any,
    lock_timeout: float | None = None,
) -> Any | None:
    """Read a payload saved by :func:`save_cache_payload`, or ``None``.

    ``None`` means "start cold": the file is missing, unreadable, from a
    different format version, of a different kind, was produced against a
    different fingerprint (the corpus grew, the classifier was retrained,
    the parameters changed) -- or the shared advisory lock could not be
    acquired within *lock_timeout* (another process is mid-merge and
    stuck; cold-starting beats crashing or hanging).
    """
    if lock_timeout is None:
        lock_timeout = DEFAULT_LOCK_TIMEOUT
    try:
        with _locked(Path(path), exclusive=False, timeout=lock_timeout):
            blob = _read_blob(path)
    except CacheLockTimeout:
        return None
    return _payload_of(blob, kind, fingerprint)


# -- flat array artifacts --------------------------------------------------------------
#
# The frozen index backend (repro.web.backends) persists compacted numpy
# sections in a single file so N processes can ``np.memmap`` it and the OS
# page cache holds exactly one physical copy.  The container is deliberately
# generic -- named 1-D/2-D sections plus a JSON header -- and reuses the
# cache conventions above: the same advisory sidecar lock, the same
# format_version/kind guards, and the same tmp-file + ``os.replace`` atomic
# write (single file rather than a directory precisely so the replace is
# atomic and a reader never sees half an artifact).

ARTIFACT_MAGIC = b"REPROART"
"""Leading bytes of every array artifact file."""

ARTIFACT_FORMAT_VERSION = 1
"""Bump when the container layout changes; old artifacts are rejected."""

_ARTIFACT_ALIGNMENT = 64
"""Section byte alignment (cache-line sized, safe for any numpy dtype)."""


class ArtifactError(Exception):
    """An array artifact is missing, corrupt, or of the wrong kind/version."""


def _aligned(offset: int) -> int:
    remainder = offset % _ARTIFACT_ALIGNMENT
    return offset if remainder == 0 else offset + _ARTIFACT_ALIGNMENT - remainder


def save_array_artifact(
    path,
    kind: str,
    header: Mapping[str, Any],
    sections: Mapping[str, np.ndarray],
    lock_timeout: float | None = None,
) -> bool:
    """Atomically write named numpy *sections* plus a JSON *header*.

    Layout: ``ARTIFACT_MAGIC``, a little-endian ``uint64`` metadata
    length, the JSON metadata (container version, kind, caller header,
    per-section offset/dtype/shape), then the raw array bytes, each
    section aligned to :data:`_ARTIFACT_ALIGNMENT` relative to the first
    data byte.  *header* must be JSON-serialisable.

    Returns ``True`` when the artifact was written; ``False`` when the
    exclusive advisory lock could not be acquired within *lock_timeout*
    (mirroring :func:`save_cache_payload`).
    """
    if lock_timeout is None:
        lock_timeout = DEFAULT_LOCK_TIMEOUT
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    section_meta: dict[str, dict[str, Any]] = {}
    offset = 0
    for name, array in sections.items():
        array = np.ascontiguousarray(array)
        offset = _aligned(offset)
        section_meta[name] = {
            "offset": offset,
            "dtype": str(array.dtype),
            "shape": list(array.shape),
        }
        arrays[name] = array
        offset += array.nbytes
    metadata = json.dumps(
        {
            "format_version": ARTIFACT_FORMAT_VERSION,
            "kind": kind,
            "header": dict(header),
            "sections": section_meta,
        },
        sort_keys=True,
    ).encode("utf-8")
    try:
        with _locked(path, exclusive=True, timeout=lock_timeout):
            tmp_path = path.with_name(f"{path.name}.tmp.{os.getpid()}")
            try:
                with open(tmp_path, "wb") as handle:
                    handle.write(ARTIFACT_MAGIC)
                    handle.write(struct.pack("<Q", len(metadata)))
                    handle.write(metadata)
                    data_start = _aligned(handle.tell())
                    for name, array in arrays.items():
                        # seek leaves alignment gaps zero-filled.
                        handle.seek(data_start + section_meta[name]["offset"])
                        if array.size:
                            handle.write(memoryview(array))
                os.replace(tmp_path, path)
            finally:
                if tmp_path.exists():
                    try:
                        tmp_path.unlink()
                    except OSError:  # pragma: no cover - racing unlink
                        pass
    except CacheLockTimeout:
        return False
    return True


def open_array_artifact(
    path,
    kind: str,
    lock_timeout: float | None = None,
) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
    """Open an artifact written by :func:`save_array_artifact` read-only.

    Returns ``(header, sections)`` where each non-empty section is a
    read-only ``np.memmap`` view into the file -- no bytes are copied,
    and every process opening the same artifact shares one physical copy
    through the OS page cache.  Empty sections come back as ordinary
    empty arrays (``mmap`` cannot map zero bytes).

    Unlike cache loads, a bad artifact raises :class:`ArtifactError`
    (missing file, wrong magic/kind/version, truncation, lock timeout):
    a caller asked for *this* artifact by path, so silently serving
    nothing would be wrong.
    """
    if lock_timeout is None:
        lock_timeout = DEFAULT_LOCK_TIMEOUT
    path = Path(path)
    try:
        with _locked(path, exclusive=False, timeout=lock_timeout):
            try:
                handle = open(path, "rb")
            except FileNotFoundError:
                raise ArtifactError(f"no artifact at {path}") from None
            with handle:
                magic = handle.read(len(ARTIFACT_MAGIC))
                if magic != ARTIFACT_MAGIC:
                    raise ArtifactError(f"{path} is not an array artifact")
                try:
                    (metadata_length,) = struct.unpack("<Q", handle.read(8))
                    metadata = json.loads(
                        handle.read(metadata_length).decode("utf-8")
                    )
                except (struct.error, ValueError, UnicodeDecodeError) as error:
                    raise ArtifactError(
                        f"{path} has a corrupt artifact header: {error}"
                    ) from None
                if metadata.get("format_version") != ARTIFACT_FORMAT_VERSION:
                    raise ArtifactError(
                        f"{path} uses artifact format "
                        f"{metadata.get('format_version')!r}, expected "
                        f"{ARTIFACT_FORMAT_VERSION}"
                    )
                if metadata.get("kind") != kind:
                    raise ArtifactError(
                        f"{path} holds {metadata.get('kind')!r}, "
                        f"expected {kind!r}"
                    )
                data_start = _aligned(
                    len(ARTIFACT_MAGIC) + 8 + metadata_length
                )
                arrays: dict[str, np.ndarray] = {}
                try:
                    for name, spec in metadata["sections"].items():
                        shape = tuple(int(n) for n in spec["shape"])
                        dtype = np.dtype(spec["dtype"])
                        if int(np.prod(shape)) == 0:
                            arrays[name] = np.empty(shape, dtype=dtype)
                        else:
                            arrays[name] = np.memmap(
                                handle,
                                dtype=dtype,
                                mode="r",
                                offset=data_start + int(spec["offset"]),
                                shape=shape,
                            )
                except (KeyError, TypeError, ValueError) as error:
                    raise ArtifactError(
                        f"{path} has corrupt sections: {error}"
                    ) from None
    except CacheLockTimeout as error:
        raise ArtifactError(str(error)) from None
    return dict(metadata["header"]), arrays


class PeriodicFlusher:
    """Run a flush callback every *interval_seconds* from a daemon thread.

    The flush-on-interval hook a long-lived process hangs its cache
    persistence on: the resident annotation service registers
    ``annotator.save_caches`` here so the warmth it accumulates while
    serving survives a crash, instead of existing only in memory until a
    clean shutdown.  The callback must be safe to call from another
    thread (the service wraps it in its annotator lock).

    A failing flush never kills the thread: the exception is kept on
    :attr:`last_error` and the next interval tries again -- persistence
    stays an optimisation, not a liveness dependency.  :meth:`stop` joins
    the thread and (by default) performs one final flush, which is the
    same path a graceful shutdown takes.
    """

    def __init__(
        self, flush: Callable[[], Any], interval_seconds: float
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be > 0, got {interval_seconds}"
            )
        self._flush = flush
        self.interval_seconds = interval_seconds
        self.flush_count = 0
        self.last_error: BaseException | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "PeriodicFlusher":
        if self._thread is not None:
            raise RuntimeError("flusher already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="cache-flusher", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            self._flush_once()

    def _flush_once(self) -> None:
        try:
            self._flush()
            self.flush_count += 1
            self.last_error = None
        except Exception as error:  # flushing must never kill the loop
            self.last_error = error

    def stop(self, final_flush: bool = True) -> None:
        """Stop the thread; *final_flush* runs the callback one last time."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        if final_flush:
            self._flush_once()

    def __enter__(self) -> "PeriodicFlusher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
