"""Versioned on-disk persistence for the pipeline's amortisation caches.

The batched annotation engine earns most of its speed from caches that are
pure functions of immutable inputs: the search engine's token-signature ->
ranked-results cache (valid for one exact corpus and one BM25
parametrisation) and the annotator's snippet -> label memo (valid for one
fitted classifier).  This module gives both a common durable format so a
second process -- or a second CLI invocation -- starts warm instead of
recomputing them.

Every file carries three guards checked on load:

``format_version``
    bumped whenever the payload layout changes; old files are ignored;
``kind``
    what the payload is (``"search-results"``, ``"label-memo"``), so a
    file can never be loaded into the wrong cache;
``fingerprint``
    the producer's identity token (corpus content digest + BM25 parameters
    for the engine, a classifier weight digest for the memo).  A mismatch
    means the world changed -- corpus grew, classifier retrained -- and
    the cache is silently treated as cold, mirroring the in-memory
    invalidation hooks (``SearchEngine._validate_caches`` drops ranking
    caches whenever the corpus grows).

Concurrency
-----------
A cache directory may be shared by several worker processes (the
``annotate_tables(workers=N)`` execution layer).  Two mechanisms make that
safe:

* **advisory file locking** -- every save takes an exclusive ``flock`` on
  a ``<name>.lock`` sidecar, every load a shared one, so a read never
  observes a half-finished merge and two writers serialise.  Lock waits
  are bounded (:data:`DEFAULT_LOCK_TIMEOUT`); on timeout a load reports a
  cold start (``None``) and a save is skipped (``False``) rather than
  deadlocking -- persistence is an optimisation, never a correctness
  dependency.  On platforms without ``fcntl`` locking degrades to
  best-effort unlocked operation (writes stay atomic either way).
* **merge-on-save** -- a saver may pass a ``merge`` hook; under the
  exclusive lock the existing payload (same version, kind and
  fingerprint) is loaded and merged with the fresh one before the
  replace, so a worker's save never discards entries another worker
  persisted in the meantime.  Without a hook the historical
  last-writer-wins replace is kept.

Writes go through a temporary file and ``os.replace`` so a crashed writer
never leaves a truncated cache behind; the temporary file is unlinked even
when serialisation fails (disk full, unpicklable payload).  Loads treat
*any* unreadable file as a cold start rather than an error.
"""

from __future__ import annotations

import logging
import os
import pickle
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable

logger = logging.getLogger(__name__)

try:  # POSIX advisory locking; degrade gracefully elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

CACHE_FORMAT_VERSION = 1
"""Bump when the persisted payload layout changes; old files are ignored."""

DEFAULT_LOCK_TIMEOUT = 10.0
"""Seconds a save/load waits for the advisory lock before giving up.

Resolved at *call* time when ``lock_timeout`` is left ``None``, so a
long-lived process (the resident annotation service) -- or a test -- can
tighten every subsequent save/load by rebinding this module attribute."""

_LOCK_POLL_SECONDS = 0.02
"""Interval between non-blocking lock attempts while waiting."""


class CacheLockTimeout(Exception):
    """Internal: the advisory lock could not be acquired in time."""


def lock_path_for(path) -> Path:
    """The sidecar lock file guarding *path* (kept separate from the
    payload so ``os.replace`` never swaps the inode a lock lives on)."""
    path = Path(path)
    return path.with_name(path.name + ".lock")


@contextmanager
def _locked(path: Path, exclusive: bool, timeout: float):
    """Advisory lock on *path*'s sidecar; raises :class:`CacheLockTimeout`.

    No-op (still yields) when ``fcntl`` is unavailable.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX platforms
        yield
        return
    lock_file = lock_path_for(path)
    lock_file.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(lock_file, os.O_RDWR | os.O_CREAT, 0o644)
    try:
        operation = (fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH) | fcntl.LOCK_NB
        deadline = time.monotonic() + max(timeout, 0.0)
        while True:
            try:
                fcntl.flock(fd, operation)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise CacheLockTimeout(
                        f"could not lock {lock_file} within {timeout:.1f}s"
                    ) from None
                time.sleep(_LOCK_POLL_SECONDS)
        try:
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
    finally:
        os.close(fd)


def _read_blob(path) -> dict | None:
    """The raw guarded blob at *path*, or ``None`` for anything unreadable.

    A missing file is the normal cold start and stays silent; a file that
    *exists* but cannot be unpickled (truncated by a crashed writer on a
    pre-atomic layout, bit rot, a foreign file dropped into the cache
    dir) is worth a warning -- the operator should know warmth was lost
    and why -- but still only means "start cold", never an exception.
    """
    try:
        with open(path, "rb") as handle:
            blob = pickle.load(handle)
    except FileNotFoundError:
        return None
    except Exception as error:
        # Unpickling a foreign file can raise nearly anything -- missing
        # modules or attributes from an old layout, truncation, corruption.
        # Every failure mode means the same thing here: start cold.
        logger.warning(
            "cache file %s is unreadable (%s: %s); starting cold",
            path,
            type(error).__name__,
            error,
        )
        return None
    if not isinstance(blob, dict):
        logger.warning(
            "cache file %s holds a %s, not a guarded blob; starting cold",
            path,
            type(blob).__name__,
        )
        return None
    return blob


def _payload_of(blob: dict | None, kind: str, fingerprint: Any) -> Any | None:
    """Extract the payload of a guarded blob iff every guard matches."""
    if blob is None:
        return None
    if blob.get("format_version") != CACHE_FORMAT_VERSION:
        return None
    if blob.get("kind") != kind:
        return None
    if blob.get("fingerprint") != fingerprint:
        return None
    return blob.get("payload")


def save_cache_payload(
    path,
    kind: str,
    fingerprint: Any,
    payload: Any,
    merge: Callable[[Any, Any], Any] | None = None,
    lock_timeout: float | None = None,
) -> bool:
    """Atomically write *payload* with version/kind/fingerprint guards.

    With a *merge* hook, the write is load-merge-replace under an
    exclusive advisory lock: an existing compatible payload (same format
    version, kind and fingerprint) is combined via ``merge(existing,
    payload)`` first, so concurrent savers sharing one cache directory
    union their entries instead of clobbering each other.  An existing
    *incompatible* file (stale fingerprint, other kind) is simply
    replaced.

    Returns ``True`` when the file was written; ``False`` when the lock
    could not be acquired within *lock_timeout* and the save was skipped
    (the cache on disk is then simply missing this process's entries --
    an optimisation lost, never a correctness problem).  Serialisation
    errors (unpicklable payload, disk full) still propagate, but never
    leave a ``*.tmp.<pid>`` file behind.
    """
    if lock_timeout is None:
        lock_timeout = DEFAULT_LOCK_TIMEOUT
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        with _locked(path, exclusive=True, timeout=lock_timeout):
            if merge is not None:
                existing = _payload_of(_read_blob(path), kind, fingerprint)
                if existing is not None:
                    payload = merge(existing, payload)
            blob = {
                "format_version": CACHE_FORMAT_VERSION,
                "kind": kind,
                "fingerprint": fingerprint,
                "payload": payload,
            }
            tmp_path = path.with_name(f"{path.name}.tmp.{os.getpid()}")
            try:
                with open(tmp_path, "wb") as handle:
                    pickle.dump(blob, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_path, path)
            finally:
                # pickle.dump may have raised (disk full, unpicklable
                # payload) before the replace: never leak the temp file.
                if tmp_path.exists():
                    try:
                        tmp_path.unlink()
                    except OSError:  # pragma: no cover - racing unlink
                        pass
    except CacheLockTimeout:
        return False
    return True


def load_cache_payload(
    path,
    kind: str,
    fingerprint: Any,
    lock_timeout: float | None = None,
) -> Any | None:
    """Read a payload saved by :func:`save_cache_payload`, or ``None``.

    ``None`` means "start cold": the file is missing, unreadable, from a
    different format version, of a different kind, was produced against a
    different fingerprint (the corpus grew, the classifier was retrained,
    the parameters changed) -- or the shared advisory lock could not be
    acquired within *lock_timeout* (another process is mid-merge and
    stuck; cold-starting beats crashing or hanging).
    """
    if lock_timeout is None:
        lock_timeout = DEFAULT_LOCK_TIMEOUT
    try:
        with _locked(Path(path), exclusive=False, timeout=lock_timeout):
            blob = _read_blob(path)
    except CacheLockTimeout:
        return None
    return _payload_of(blob, kind, fingerprint)


class PeriodicFlusher:
    """Run a flush callback every *interval_seconds* from a daemon thread.

    The flush-on-interval hook a long-lived process hangs its cache
    persistence on: the resident annotation service registers
    ``annotator.save_caches`` here so the warmth it accumulates while
    serving survives a crash, instead of existing only in memory until a
    clean shutdown.  The callback must be safe to call from another
    thread (the service wraps it in its annotator lock).

    A failing flush never kills the thread: the exception is kept on
    :attr:`last_error` and the next interval tries again -- persistence
    stays an optimisation, not a liveness dependency.  :meth:`stop` joins
    the thread and (by default) performs one final flush, which is the
    same path a graceful shutdown takes.
    """

    def __init__(
        self, flush: Callable[[], Any], interval_seconds: float
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be > 0, got {interval_seconds}"
            )
        self._flush = flush
        self.interval_seconds = interval_seconds
        self.flush_count = 0
        self.last_error: BaseException | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "PeriodicFlusher":
        if self._thread is not None:
            raise RuntimeError("flusher already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="cache-flusher", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            self._flush_once()

    def _flush_once(self) -> None:
        try:
            self._flush()
            self.flush_count += 1
            self.last_error = None
        except Exception as error:  # flushing must never kill the loop
            self.last_error = error

    def stop(self, final_flush: bool = True) -> None:
        """Stop the thread; *final_flush* runs the callback one last time."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        if final_flush:
            self._flush_once()

    def __enter__(self) -> "PeriodicFlusher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
