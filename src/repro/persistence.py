"""Versioned on-disk persistence for the pipeline's amortisation caches.

The batched annotation engine earns most of its speed from caches that are
pure functions of immutable inputs: the search engine's token-signature ->
ranked-results cache (valid for one exact corpus and one BM25
parametrisation) and the annotator's snippet -> label memo (valid for one
fitted classifier).  This module gives both a common durable format so a
second process -- or a second CLI invocation -- starts warm instead of
recomputing them.

Every file carries three guards checked on load:

``format_version``
    bumped whenever the payload layout changes; old files are ignored;
``kind``
    what the payload is (``"search-results"``, ``"label-memo"``), so a
    file can never be loaded into the wrong cache;
``fingerprint``
    the producer's identity token (corpus content digest + BM25 parameters
    for the engine, a classifier weight digest for the memo).  A mismatch
    means the world changed -- corpus grew, classifier retrained -- and
    the cache is silently treated as cold, mirroring the in-memory
    invalidation hooks (``SearchEngine._validate_caches`` drops ranking
    caches whenever the corpus grows).

Concurrency
-----------
A cache directory may be shared by several worker processes (the
``annotate_tables(workers=N)`` execution layer).  Two mechanisms make that
safe:

* **advisory file locking** -- every save takes an exclusive ``flock`` on
  a ``<name>.lock`` sidecar, every load a shared one, so a read never
  observes a half-finished merge and two writers serialise.  Lock waits
  are bounded (:data:`DEFAULT_LOCK_TIMEOUT`); on timeout a load reports a
  cold start (``None``) and a save is skipped (``False``) rather than
  deadlocking -- persistence is an optimisation, never a correctness
  dependency.  On platforms without ``fcntl`` locking degrades to
  best-effort unlocked operation (writes stay atomic either way).
* **merge-on-save** -- a saver may pass a ``merge`` hook; under the
  exclusive lock the existing payload (same version, kind and
  fingerprint) is loaded and merged with the fresh one before the
  replace, so a worker's save never discards entries another worker
  persisted in the meantime.  Without a hook the historical
  last-writer-wins replace is kept.

Writes go through a temporary file and ``os.replace`` so a crashed writer
never leaves a truncated cache behind; the temporary file is unlinked even
when serialisation fails (disk full, unpicklable payload).  Loads treat
*any* unreadable file as a cold start rather than an error.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import random
import struct
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Mapping, Protocol, runtime_checkable

import numpy as np

from repro.observability import metrics as obs_metrics
from repro.observability import tracing
from repro.observability.log import get_logger

logger = get_logger(__name__)

try:  # POSIX advisory locking; degrade gracefully elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

CACHE_FORMAT_VERSION = 1
"""Bump when the persisted payload layout changes; old files are ignored."""

DEFAULT_LOCK_TIMEOUT = 10.0
"""Seconds a save/load waits for the advisory lock before giving up.

Resolved at *call* time when ``lock_timeout`` is left ``None``, so a
long-lived process (the resident annotation service) -- or a test -- can
tighten every subsequent save/load by rebinding this module attribute."""

_LOCK_POLL_SECONDS = 0.02
"""Base interval between non-blocking lock attempts while waiting."""

_LOCK_POLL_MAX_SECONDS = 0.25
"""Cap on the exponential backoff between lock attempts."""

_lock_wait_guard = threading.Lock()
_lock_wait_total = 0.0


def _record_lock_wait(seconds: float) -> None:
    global _lock_wait_total
    with _lock_wait_guard:
        _lock_wait_total += seconds
    # Contended locks are a throughput signal: surface them on the
    # metrics registry and (when tracing) as a span.  Only ever called
    # on the contended path, so the fast path stays untouched.
    obs_metrics.get_registry().observe("cache.lock_wait_seconds", seconds)
    tracing.record_span("cache.lock_wait", seconds)


def lock_wait_seconds() -> float:
    """Cumulative seconds this process has spent waiting on advisory locks.

    Monotonically increasing and thread-safe; diagnostics snapshot it
    before and after a run and report the delta (contended locks are a
    throughput signal, so they belong in the run record next to cache
    load/save accounting).
    """
    with _lock_wait_guard:
        return _lock_wait_total


class CacheLockTimeout(Exception):
    """Internal: the advisory lock could not be acquired in time."""


def lock_path_for(path) -> Path:
    """The sidecar lock file guarding *path* (kept separate from the
    payload so ``os.replace`` never swaps the inode a lock lives on)."""
    path = Path(path)
    return path.with_name(path.name + ".lock")


@contextmanager
def _locked(path: Path, exclusive: bool, timeout: float):
    """Advisory lock on *path*'s sidecar; raises :class:`CacheLockTimeout`.

    No-op (still yields) when ``fcntl`` is unavailable.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX platforms
        yield
        return
    lock_file = lock_path_for(path)
    lock_file.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(lock_file, os.O_RDWR | os.O_CREAT, 0o644)
    try:
        operation = (fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH) | fcntl.LOCK_NB
        started = time.monotonic()
        deadline = started + max(timeout, 0.0)
        # Jittered exponential backoff between attempts: a fixed poll
        # interval makes N waiters retry in lockstep (thundering herd on
        # the same flock the instant it frees); doubling with a random
        # 0.5x-1.5x factor spreads the retries out.
        delay = _LOCK_POLL_SECONDS
        waited = False
        while True:
            try:
                fcntl.flock(fd, operation)
                break
            except OSError:
                now = time.monotonic()
                if now >= deadline:
                    _record_lock_wait(now - started)
                    raise CacheLockTimeout(
                        f"could not lock {lock_file} within {timeout:.1f}s"
                    ) from None
                waited = True
                time.sleep(
                    min(delay * (0.5 + random.random()), deadline - now)
                )
                delay = min(delay * 2.0, _LOCK_POLL_MAX_SECONDS)
        if waited:
            _record_lock_wait(time.monotonic() - started)
        try:
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
    finally:
        os.close(fd)


def _read_blob(path) -> dict | None:
    """The raw guarded blob at *path*, or ``None`` for anything unreadable.

    A missing file is the normal cold start and stays silent; a file that
    *exists* but cannot be unpickled (truncated by a crashed writer on a
    pre-atomic layout, bit rot, a foreign file dropped into the cache
    dir) is worth a warning -- the operator should know warmth was lost
    and why -- but still only means "start cold", never an exception.
    """
    try:
        with open(path, "rb") as handle:
            blob = pickle.load(handle)
    except FileNotFoundError:
        return None
    except Exception as error:
        # Unpickling a foreign file can raise nearly anything -- missing
        # modules or attributes from an old layout, truncation, corruption.
        # Every failure mode means the same thing here: start cold.
        logger.warning(
            "cache.file_unreadable",
            path=str(path),
            error=f"{type(error).__name__}: {error}",
            outcome="starting cold",
        )
        return None
    if not isinstance(blob, dict):
        logger.warning(
            "cache.file_foreign",
            path=str(path),
            found=type(blob).__name__,
            outcome="starting cold",
        )
        return None
    return blob


def _payload_of(blob: dict | None, kind: str, fingerprint: Any) -> Any | None:
    """Extract the payload of a guarded blob iff every guard matches."""
    if blob is None:
        return None
    if blob.get("format_version") != CACHE_FORMAT_VERSION:
        return None
    if blob.get("kind") != kind:
        return None
    if blob.get("fingerprint") != fingerprint:
        return None
    return blob.get("payload")


def save_cache_payload(
    path,
    kind: str,
    fingerprint: Any,
    payload: Any,
    merge: Callable[[Any, Any], Any] | None = None,
    lock_timeout: float | None = None,
) -> bool:
    """Atomically write *payload* with version/kind/fingerprint guards.

    With a *merge* hook, the write is load-merge-replace under an
    exclusive advisory lock: an existing compatible payload (same format
    version, kind and fingerprint) is combined via ``merge(existing,
    payload)`` first, so concurrent savers sharing one cache directory
    union their entries instead of clobbering each other.  An existing
    *incompatible* file (stale fingerprint, other kind) is simply
    replaced.

    Returns ``True`` when the file was written; ``False`` when the lock
    could not be acquired within *lock_timeout* and the save was skipped
    (the cache on disk is then simply missing this process's entries --
    an optimisation lost, never a correctness problem).  Serialisation
    errors (unpicklable payload, disk full) still propagate, but never
    leave a ``*.tmp.<pid>`` file behind.
    """
    if lock_timeout is None:
        lock_timeout = DEFAULT_LOCK_TIMEOUT
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        with _locked(path, exclusive=True, timeout=lock_timeout):
            if merge is not None:
                existing = _payload_of(_read_blob(path), kind, fingerprint)
                if existing is not None:
                    payload = merge(existing, payload)
            blob = {
                "format_version": CACHE_FORMAT_VERSION,
                "kind": kind,
                "fingerprint": fingerprint,
                "payload": payload,
            }
            tmp_path = path.with_name(f"{path.name}.tmp.{os.getpid()}")
            try:
                with open(tmp_path, "wb") as handle:
                    pickle.dump(blob, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_path, path)
            finally:
                # pickle.dump may have raised (disk full, unpicklable
                # payload) before the replace: never leak the temp file.
                if tmp_path.exists():
                    try:
                        tmp_path.unlink()
                    except OSError:  # pragma: no cover - racing unlink
                        pass
    except CacheLockTimeout:
        return False
    return True


def load_cache_payload(
    path,
    kind: str,
    fingerprint: Any,
    lock_timeout: float | None = None,
) -> Any | None:
    """Read a payload saved by :func:`save_cache_payload`, or ``None``.

    ``None`` means "start cold": the file is missing, unreadable, from a
    different format version, of a different kind, was produced against a
    different fingerprint (the corpus grew, the classifier was retrained,
    the parameters changed) -- or the shared advisory lock could not be
    acquired within *lock_timeout* (another process is mid-merge and
    stuck; cold-starting beats crashing or hanging).
    """
    if lock_timeout is None:
        lock_timeout = DEFAULT_LOCK_TIMEOUT
    try:
        with _locked(Path(path), exclusive=False, timeout=lock_timeout):
            blob = _read_blob(path)
    except CacheLockTimeout:
        return None
    return _payload_of(blob, kind, fingerprint)


# -- flat array artifacts --------------------------------------------------------------
#
# The frozen index backend (repro.web.backends) persists compacted numpy
# sections in a single file so N processes can ``np.memmap`` it and the OS
# page cache holds exactly one physical copy.  The container is deliberately
# generic -- named 1-D/2-D sections plus a JSON header -- and reuses the
# cache conventions above: the same advisory sidecar lock, the same
# format_version/kind guards, and the same tmp-file + ``os.replace`` atomic
# write (single file rather than a directory precisely so the replace is
# atomic and a reader never sees half an artifact).

ARTIFACT_MAGIC = b"REPROART"
"""Leading bytes of every array artifact file."""

ARTIFACT_FORMAT_VERSION = 1
"""Bump when the container layout changes; old artifacts are rejected."""

_ARTIFACT_ALIGNMENT = 64
"""Section byte alignment (cache-line sized, safe for any numpy dtype)."""


class ArtifactError(Exception):
    """An array artifact is missing, corrupt, or of the wrong kind/version."""


def _aligned(offset: int) -> int:
    remainder = offset % _ARTIFACT_ALIGNMENT
    return offset if remainder == 0 else offset + _ARTIFACT_ALIGNMENT - remainder


def save_array_artifact(
    path,
    kind: str,
    header: Mapping[str, Any],
    sections: Mapping[str, np.ndarray],
    lock_timeout: float | None = None,
) -> bool:
    """Atomically write named numpy *sections* plus a JSON *header*.

    Layout: ``ARTIFACT_MAGIC``, a little-endian ``uint64`` metadata
    length, the JSON metadata (container version, kind, caller header,
    per-section offset/dtype/shape), then the raw array bytes, each
    section aligned to :data:`_ARTIFACT_ALIGNMENT` relative to the first
    data byte.  *header* must be JSON-serialisable.

    Returns ``True`` when the artifact was written; ``False`` when the
    exclusive advisory lock could not be acquired within *lock_timeout*
    (mirroring :func:`save_cache_payload`).
    """
    if lock_timeout is None:
        lock_timeout = DEFAULT_LOCK_TIMEOUT
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    section_meta: dict[str, dict[str, Any]] = {}
    offset = 0
    for name, array in sections.items():
        array = np.ascontiguousarray(array)
        offset = _aligned(offset)
        section_meta[name] = {
            "offset": offset,
            "dtype": str(array.dtype),
            "shape": list(array.shape),
        }
        arrays[name] = array
        offset += array.nbytes
    metadata = json.dumps(
        {
            "format_version": ARTIFACT_FORMAT_VERSION,
            "kind": kind,
            "header": dict(header),
            "sections": section_meta,
        },
        sort_keys=True,
    ).encode("utf-8")
    try:
        with _locked(path, exclusive=True, timeout=lock_timeout):
            tmp_path = path.with_name(f"{path.name}.tmp.{os.getpid()}")
            try:
                with open(tmp_path, "wb") as handle:
                    handle.write(ARTIFACT_MAGIC)
                    handle.write(struct.pack("<Q", len(metadata)))
                    handle.write(metadata)
                    data_start = _aligned(handle.tell())
                    for name, array in arrays.items():
                        # seek leaves alignment gaps zero-filled.
                        handle.seek(data_start + section_meta[name]["offset"])
                        if array.size:
                            handle.write(memoryview(array))
                os.replace(tmp_path, path)
            finally:
                if tmp_path.exists():
                    try:
                        tmp_path.unlink()
                    except OSError:  # pragma: no cover - racing unlink
                        pass
    except CacheLockTimeout:
        return False
    return True


def open_array_artifact(
    path,
    kind: str,
    lock_timeout: float | None = None,
) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
    """Open an artifact written by :func:`save_array_artifact` read-only.

    Returns ``(header, sections)`` where each non-empty section is a
    read-only ``np.memmap`` view into the file -- no bytes are copied,
    and every process opening the same artifact shares one physical copy
    through the OS page cache.  Empty sections come back as ordinary
    empty arrays (``mmap`` cannot map zero bytes).

    Unlike cache loads, a bad artifact raises :class:`ArtifactError`
    (missing file, wrong magic/kind/version, truncation, lock timeout):
    a caller asked for *this* artifact by path, so silently serving
    nothing would be wrong.
    """
    if lock_timeout is None:
        lock_timeout = DEFAULT_LOCK_TIMEOUT
    path = Path(path)
    try:
        with _locked(path, exclusive=False, timeout=lock_timeout):
            try:
                handle = open(path, "rb")
            except FileNotFoundError:
                raise ArtifactError(f"no artifact at {path}") from None
            with handle:
                magic = handle.read(len(ARTIFACT_MAGIC))
                if magic != ARTIFACT_MAGIC:
                    raise ArtifactError(f"{path} is not an array artifact")
                try:
                    (metadata_length,) = struct.unpack("<Q", handle.read(8))
                    metadata = json.loads(
                        handle.read(metadata_length).decode("utf-8")
                    )
                except (struct.error, ValueError, UnicodeDecodeError) as error:
                    raise ArtifactError(
                        f"{path} has a corrupt artifact header: {error}"
                    ) from None
                if metadata.get("format_version") != ARTIFACT_FORMAT_VERSION:
                    raise ArtifactError(
                        f"{path} uses artifact format "
                        f"{metadata.get('format_version')!r}, expected "
                        f"{ARTIFACT_FORMAT_VERSION}"
                    )
                if metadata.get("kind") != kind:
                    raise ArtifactError(
                        f"{path} holds {metadata.get('kind')!r}, "
                        f"expected {kind!r}"
                    )
                data_start = _aligned(
                    len(ARTIFACT_MAGIC) + 8 + metadata_length
                )
                arrays: dict[str, np.ndarray] = {}
                try:
                    for name, spec in metadata["sections"].items():
                        shape = tuple(int(n) for n in spec["shape"])
                        dtype = np.dtype(spec["dtype"])
                        if int(np.prod(shape)) == 0:
                            arrays[name] = np.empty(shape, dtype=dtype)
                        else:
                            arrays[name] = np.memmap(
                                handle,
                                dtype=dtype,
                                mode="r",
                                offset=data_start + int(spec["offset"]),
                                shape=shape,
                            )
                except (KeyError, TypeError, ValueError) as error:
                    raise ArtifactError(
                        f"{path} has corrupt sections: {error}"
                    ) from None
    except CacheLockTimeout as error:
        raise ArtifactError(str(error)) from None
    return dict(metadata["header"]), arrays


class PeriodicFlusher:
    """Run a flush callback every *interval_seconds* from a daemon thread.

    The flush-on-interval hook a long-lived process hangs its cache
    persistence on: the resident annotation service registers
    ``annotator.save_caches`` here so the warmth it accumulates while
    serving survives a crash, instead of existing only in memory until a
    clean shutdown.  The callback must be safe to call from another
    thread (the service wraps it in its annotator lock).

    A failing flush never kills the thread: the exception is kept on
    :attr:`last_error` and the next interval tries again -- persistence
    stays an optimisation, not a liveness dependency.  :meth:`stop` joins
    the thread and (by default) performs one final flush, which is the
    same path a graceful shutdown takes.
    """

    def __init__(
        self, flush: Callable[[], Any], interval_seconds: float
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be > 0, got {interval_seconds}"
            )
        self._flush = flush
        self.interval_seconds = interval_seconds
        self.flush_count = 0
        self.last_error: BaseException | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "PeriodicFlusher":
        if self._thread is not None:
            raise RuntimeError("flusher already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="cache-flusher", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            self._flush_once()

    def _flush_once(self) -> None:
        try:
            self._flush()
            self.flush_count += 1
            self.last_error = None
        except Exception as error:  # flushing must never kill the loop
            self.last_error = error

    def stop(self, final_flush: bool = True) -> None:
        """Stop the thread; *final_flush* runs the callback one last time."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        if final_flush:
            self._flush_once()

    def __enter__(self) -> "PeriodicFlusher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


# -- pluggable cache storage backends --------------------------------------------------
#
# The guarded pickled blobs above load a cache *whole*: every process pays
# the full payload at warm start and holds a private copy.  The store layer
# below puts the same flat ``str key -> picklable value`` mappings behind a
# small protocol with two implementations: the pickled-dict file
# (:class:`MemoryCacheStore`, the historical format) and a sharded on-disk
# layout (:class:`ShardedDiskCacheStore`) that N processes open *shared* --
# buckets load lazily on first touch, new entries append to a framed delta
# log, and an advisory-locked merge-compaction folds the log into the
# bucket files without rewriting untouched buckets.

CACHE_STORE_KIND = "cache-store"
"""Artifact ``kind`` of a sharded store's manifest file."""

CACHE_STORE_BUCKET_KIND = "cache-bucket"
"""Artifact ``kind`` of a sharded store's bucket files."""

CACHE_STORE_LAYOUT_VERSION = 1
"""Bump when the sharded store layout changes; old stores start cold."""

DEFAULT_CACHE_BUCKETS = 64
"""Default bucket count of a sharded store (fixed at store creation)."""

_MANIFEST_FILE = "manifest.reprocache"
_DELTA_FILE = "delta.log"
_BUCKET_GLOB = "bucket-*.reprocache"

_MISSING = object()


def fingerprint_digest_of(fingerprint: Any) -> str:
    """Stable hex digest of a cache fingerprint token.

    Store files carry the digest (JSON headers cannot hold arbitrary
    fingerprint tuples); ``repr`` of the scalar tuples/strings used as
    fingerprints is deterministic across processes.
    """
    return hashlib.sha256(repr(fingerprint).encode("utf-8")).hexdigest()


@runtime_checkable
class CacheStore(Protocol):
    """A flat ``str key -> picklable value`` store bound to one fingerprint.

    What the results cache and the label memo require from their storage
    backend, mirroring :class:`repro.web.backends.IndexBackend` for the
    index layer.  Entries are pure functions of fingerprint-guarded
    inputs, so same-keyed entries are interchangeable and last-writer-wins
    merging is always safe.  ``backend_name`` identifies the
    implementation in stats/CLI surfaces ("memory" / "disk").
    """

    backend_name: str
    kind: str

    @property
    def loaded_bytes(self) -> int: ...

    def get(self, key: str, default: Any = None) -> Any: ...

    def contains(self, key: str) -> bool: ...

    def put(self, key: str, value: Any) -> None: ...

    def has_entries(self) -> bool: ...

    def flush(self) -> int | None: ...

    def merge(self) -> int | None: ...


class MemoryCacheStore:
    """The historical pickled-dict file behind the :class:`CacheStore` API.

    One guarded blob (:func:`save_cache_payload` with a dict-union merge
    hook) holding the whole mapping; opening loads everything eagerly,
    exactly like the legacy ``load_results_cache``/``load_label_memo``
    paths.  Byte-compatible with files those paths wrote.
    """

    backend_name = "memory"

    def __init__(
        self,
        path,
        kind: str,
        fingerprint: Any,
        lock_timeout: float | None = None,
    ) -> None:
        self.path = Path(path)
        self.kind = kind
        self.fingerprint = fingerprint
        self._lock_timeout = lock_timeout
        self._entries: dict[str, Any] = {}
        self._pending: dict[str, Any] = {}
        self._loaded_bytes = 0
        payload = load_cache_payload(
            self.path, kind, fingerprint, lock_timeout=lock_timeout
        )
        if isinstance(payload, dict):
            self._entries.update(payload)
            try:
                self._loaded_bytes = os.stat(self.path).st_size
            except OSError:  # pragma: no cover - racing unlink
                pass

    def __reduce__(self):
        return (MemoryCacheStore, (str(self.path), self.kind, self.fingerprint))

    @property
    def loaded_bytes(self) -> int:
        return self._loaded_bytes

    def get(self, key: str, default: Any = None) -> Any:
        if key in self._pending:
            return self._pending[key]
        return self._entries.get(key, default)

    def contains(self, key: str) -> bool:
        return key in self._pending or key in self._entries

    def put(self, key: str, value: Any) -> None:
        self._pending[key] = value

    def has_entries(self) -> bool:
        return bool(self._entries or self._pending)

    def flush(self) -> int | None:
        """Persist pending puts; returns bytes written, ``None`` on a
        lock timeout (the save was skipped, mirroring
        :func:`save_cache_payload`)."""
        if not self._pending:
            return 0
        merged = {**self._entries, **self._pending}
        saved = save_cache_payload(
            self.path,
            self.kind,
            self.fingerprint,
            merged,
            merge=lambda existing, fresh: {**existing, **fresh},
            lock_timeout=self._lock_timeout,
        )
        if not saved:
            return None
        self._entries = merged
        self._pending = {}
        try:
            return os.stat(self.path).st_size
        except OSError:  # pragma: no cover - racing unlink
            return 0

    def merge(self) -> int | None:
        """A pickled-dict file has no delta log; merge is just a flush."""
        return self.flush()


class _TruncatedLog(Exception):
    """Internal: the delta log ends mid-frame (a writer died mid-append)."""


class ShardedDiskCacheStore:
    """An append-friendly sharded on-disk :class:`CacheStore`.

    Layout (a ``<name>.cachestore/`` directory):

    * ``manifest.reprocache`` -- an array artifact (kind
      :data:`CACHE_STORE_KIND`) whose header pins the layout version, the
      payload kind, the fingerprint digest and the bucket count;
    * ``bucket-NNNN.reprocache`` -- one artifact per occupied hash
      bucket (kind :data:`CACHE_STORE_BUCKET_KIND`) with two pickled
      sections: ``keys`` (the sorted key tuple, readable without touching
      the values) and ``values`` (the parallel value tuple);
    * ``delta.log`` -- a framed append log (``uint64`` length prefix per
      pickled record, first record the guard header) that new entries go
      to under an exclusive store lock.

    Buckets load lazily on first touch, so a warm start reads only the
    manifest and the (small, post-compaction) delta log instead of the
    whole payload -- that is the per-worker sharing win.  :meth:`merge`
    is the delta compaction: it folds the log into the bucket files,
    rewriting *only* the buckets the log touches, so a grown corpus
    appends and compacts instead of rewriting the world.

    Robustness follows the cache conventions, not the artifact ones: the
    underlying container stays loud (:class:`ArtifactError`), but the
    store catches per-file -- a truncated delta tail (writer SIGKILLed
    mid-append) keeps every whole record before it, an unreadable bucket
    or manifest logs a warning and serves cold, and a fingerprint
    mismatch invalidates the store (the next flush resets it).  Pickling
    is by path (:meth:`__reduce__`): a spawn worker receives the path and
    re-opens the store; unflushed puts do not travel.
    """

    backend_name = "disk"

    def __init__(
        self,
        path,
        kind: str,
        fingerprint: Any = None,
        n_buckets: int = DEFAULT_CACHE_BUCKETS,
        lock_timeout: float | None = None,
        _digest: str | None = None,
    ) -> None:
        if n_buckets < 1:
            raise ValueError(f"n_buckets must be >= 1, got {n_buckets}")
        self.path = Path(path)
        self.kind = kind
        self.fingerprint = fingerprint
        self.digest = (
            _digest if _digest is not None else fingerprint_digest_of(fingerprint)
        )
        self.n_buckets = int(n_buckets)
        self._lock_timeout = lock_timeout
        self._pending: dict[str, Any] = {}
        self._delta: dict[str, Any] = {}
        self._buckets: dict[int, dict[str, Any]] = {}
        self._loaded_bytes = 0
        self._on_disk_valid = False
        self._open()

    def __reduce__(self):
        return (
            ShardedDiskCacheStore,
            (str(self.path), self.kind, self.fingerprint, self.n_buckets),
        )

    # -- paths -----------------------------------------------------------------------

    @property
    def _manifest_path(self) -> Path:
        return self.path / _MANIFEST_FILE

    @property
    def _delta_path(self) -> Path:
        return self.path / _DELTA_FILE

    def _bucket_path(self, index: int) -> Path:
        return self.path / f"bucket-{index:04d}.reprocache"

    @property
    def _anchor(self) -> Path:
        """Anchor for the store-wide advisory lock (sidecar ``store.lock``)."""
        return self.path / "store"

    def _timeout(self) -> float:
        if self._lock_timeout is None:
            return DEFAULT_LOCK_TIMEOUT
        return self._lock_timeout

    def _bucket_index(self, key: str) -> int:
        # blake2b over the utf-8 key bytes: stable across processes and
        # PYTHONHASHSEED values, unlike hash() or pickled tuples.
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.n_buckets

    # -- open ------------------------------------------------------------------------

    def _open(self) -> None:
        manifest_path = self._manifest_path
        if not manifest_path.exists():
            return  # nothing persisted yet: an empty (but valid-to-write) store
        try:
            header, _ = open_array_artifact(
                manifest_path, CACHE_STORE_KIND, lock_timeout=self._lock_timeout
            )
        except ArtifactError as error:
            logger.warning(
                "store.manifest_unusable",
                path=str(self.path),
                error=str(error),
                outcome="starting cold",
            )
            return
        if (
            header.get("layout_version") != CACHE_STORE_LAYOUT_VERSION
            or header.get("payload_kind") != self.kind
            or header.get("fingerprint_digest") != self.digest
        ):
            logger.info(
                "store.fingerprint_stale",
                path=str(self.path),
                outcome="starting cold",
            )
            return
        self._on_disk_valid = True
        self.n_buckets = int(header.get("n_buckets", self.n_buckets))
        try:
            self._loaded_bytes += manifest_path.stat().st_size
        except OSError:  # pragma: no cover - racing unlink
            pass
        try:
            with _locked(self._anchor, exclusive=False, timeout=self._timeout()):
                entries, nbytes = self._read_delta_records()
        except CacheLockTimeout:
            logger.warning(
                "store.delta_locked",
                path=str(self.path),
                outcome="starting cold",
            )
            return
        self._delta = entries
        self._loaded_bytes += nbytes

    # -- delta log -------------------------------------------------------------------

    def _delta_header(self) -> dict[str, Any]:
        return {
            "format_version": CACHE_FORMAT_VERSION,
            "kind": self.kind,
            "fingerprint_digest": self.digest,
        }

    @staticmethod
    def _read_frame(handle) -> bytes | None:
        prefix = handle.read(8)
        if not prefix:
            return None  # clean end of log
        if len(prefix) < 8:
            raise _TruncatedLog("truncated frame length")
        (length,) = struct.unpack("<Q", prefix)
        blob = handle.read(length)
        if len(blob) < length:
            raise _TruncatedLog("truncated frame body")
        return blob

    def _read_delta_records(self) -> tuple[dict[str, Any], int]:
        """Read ``(entries, bytes_read)`` from the delta log on disk.

        A truncated tail (a writer SIGKILLed mid-append) keeps every
        whole record before it -- cold start for the tail, never a
        crash.  A foreign or stale header means the whole log is ignored.
        """
        path = self._delta_path
        entries: dict[str, Any] = {}
        valid_end = 0
        try:
            handle = open(path, "rb")
        except FileNotFoundError:
            return entries, 0
        with handle:
            try:
                header_blob = self._read_frame(handle)
                if header_blob is None:
                    return entries, 0
                header = pickle.loads(header_blob)
                if header != self._delta_header():
                    logger.warning(
                        "store.delta_foreign_header",
                        path=str(self.path),
                        outcome="ignoring log",
                    )
                    return {}, 0
                valid_end = handle.tell()
                while True:
                    blob = self._read_frame(handle)
                    if blob is None:
                        break
                    key, value = pickle.loads(blob)
                    entries[key] = value
                    valid_end = handle.tell()
            except Exception as error:
                # Unpickling a torn record can raise nearly anything;
                # every failure mode means the same thing: the log ends
                # here.  Whole records before the tear are kept.
                logger.warning(
                    "store.delta_torn_tail",
                    path=str(self.path),
                    error=f"{type(error).__name__}: {error}",
                    kept_entries=len(entries),
                )
            return entries, valid_end

    def _append_delta_locked(self, entries: Mapping[str, Any]) -> int:
        """Append *entries* as frames; caller holds the exclusive lock.

        A torn tail (a writer SIGKILLed mid-append) is trimmed first:
        frames appended after the tear would be unreachable, because
        every reader stops at the first undecodable record.
        """
        path = self._delta_path
        try:
            size = path.stat().st_size
        except FileNotFoundError:
            size = 0
        if size:
            _, valid_end = self._read_delta_records()
            if valid_end < size:
                logger.warning(
                    "store.delta_trimmed",
                    path=str(self.path),
                    trimmed_bytes=size - valid_end,
                )
                with open(path, "r+b") as handle:
                    handle.truncate(valid_end)
                size = valid_end
        write_header = size == 0
        written = 0
        with open(path, "ab") as handle:
            if write_header:
                blob = pickle.dumps(
                    self._delta_header(), protocol=pickle.HIGHEST_PROTOCOL
                )
                handle.write(struct.pack("<Q", len(blob)))
                handle.write(blob)
                written += 8 + len(blob)
            for key, value in entries.items():
                blob = pickle.dumps(
                    (key, value), protocol=pickle.HIGHEST_PROTOCOL
                )
                handle.write(struct.pack("<Q", len(blob)))
                handle.write(blob)
                written += 8 + len(blob)
        return written

    def _truncate_delta_locked(self) -> None:
        blob = pickle.dumps(
            self._delta_header(), protocol=pickle.HIGHEST_PROTOCOL
        )
        with open(self._delta_path, "wb") as handle:
            handle.write(struct.pack("<Q", len(blob)))
            handle.write(blob)

    # -- buckets ---------------------------------------------------------------------

    def _load_bucket(self, index: int) -> dict[str, Any]:
        path = self._bucket_path(index)
        if not self._on_disk_valid or not path.exists():
            return {}
        try:
            header, sections = open_array_artifact(
                path, CACHE_STORE_BUCKET_KIND, lock_timeout=self._lock_timeout
            )
            if (
                header.get("layout_version") != CACHE_STORE_LAYOUT_VERSION
                or header.get("fingerprint_digest") != self.digest
            ):
                logger.warning(
                    "store.bucket_stale",
                    path=str(path),
                    outcome="treating it as empty",
                )
                return {}
            keys = pickle.loads(bytes(memoryview(sections["keys"])))
            values = pickle.loads(bytes(memoryview(sections["values"])))
        except Exception as error:
            # A corrupt/foreign/truncated bucket file costs warmth for
            # this bucket only, never the run.
            logger.warning(
                "store.bucket_unreadable",
                path=str(path),
                error=f"{type(error).__name__}: {error}",
                outcome="treating it as empty",
            )
            return {}
        try:
            self._loaded_bytes += path.stat().st_size
        except OSError:  # pragma: no cover - racing unlink
            pass
        return dict(zip(keys, values))

    def _bucket(self, index: int) -> dict[str, Any]:
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = self._load_bucket(index)
            self._buckets[index] = bucket
        return bucket

    def _write_bucket_locked(self, index: int, bucket: Mapping[str, Any]) -> None:
        keys = tuple(sorted(bucket))
        values = tuple(bucket[key] for key in keys)
        header = {
            "layout_version": CACHE_STORE_LAYOUT_VERSION,
            "payload_kind": self.kind,
            "fingerprint_digest": self.digest,
            "bucket": index,
            "n_entries": len(keys),
        }
        sections = {
            "keys": np.frombuffer(
                pickle.dumps(keys, protocol=pickle.HIGHEST_PROTOCOL),
                dtype=np.uint8,
            ),
            "values": np.frombuffer(
                pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL),
                dtype=np.uint8,
            ),
        }
        if not save_array_artifact(
            self._bucket_path(index),
            CACHE_STORE_BUCKET_KIND,
            header,
            sections,
            lock_timeout=self._lock_timeout,
        ):
            raise CacheLockTimeout(
                f"could not lock bucket {index} of {self.path}"
            )

    # -- store API -------------------------------------------------------------------

    @property
    def loaded_bytes(self) -> int:
        """Cumulative bytes this process read from the store (manifest +
        delta log + lazily touched buckets) -- the warm-start payload."""
        return self._loaded_bytes

    def get(self, key: str, default: Any = None) -> Any:
        if key in self._pending:
            return self._pending[key]
        if key in self._delta:
            return self._delta[key]
        return self._bucket(self._bucket_index(key)).get(key, default)

    def contains(self, key: str) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    def put(self, key: str, value: Any) -> None:
        self._pending[key] = value

    def has_entries(self) -> bool:
        if self._pending or self._delta:
            return True
        if not self._on_disk_valid:
            return False
        return any(self.path.glob(_BUCKET_GLOB))

    def _ensure_layout_locked(self) -> None:
        """Make the on-disk layout match this store's guards.

        Called under the exclusive store lock.  Re-checks the manifest
        first: a peer may have created or reset the store since we
        opened, in which case we adopt its layout instead of clobbering
        the entries it already persisted.
        """
        if not self._on_disk_valid and self._manifest_path.exists():
            try:
                header, _ = open_array_artifact(
                    self._manifest_path,
                    CACHE_STORE_KIND,
                    lock_timeout=self._lock_timeout,
                )
            except ArtifactError:
                header = {}
            if (
                header.get("layout_version") == CACHE_STORE_LAYOUT_VERSION
                and header.get("payload_kind") == self.kind
                and header.get("fingerprint_digest") == self.digest
            ):
                self._on_disk_valid = True
                self.n_buckets = int(header.get("n_buckets", self.n_buckets))
        if self._on_disk_valid:
            return
        # Reset: a stale store (foreign fingerprint, old layout) is
        # replaced wholesale -- its entries answer a world that no
        # longer exists.
        for stale in self.path.glob(_BUCKET_GLOB):
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - racing unlink
                pass
        if not save_array_artifact(
            self._manifest_path,
            CACHE_STORE_KIND,
            {
                "layout_version": CACHE_STORE_LAYOUT_VERSION,
                "payload_kind": self.kind,
                "fingerprint_digest": self.digest,
                "n_buckets": self.n_buckets,
            },
            {},
            lock_timeout=self._lock_timeout,
        ):
            raise CacheLockTimeout(
                f"could not lock the manifest of {self.path}"
            )
        self._truncate_delta_locked()
        self._buckets = {}
        self._delta = {}
        self._on_disk_valid = True

    def flush(self) -> int | None:
        """Append pending puts to the delta log.

        Returns the bytes appended, 0 when nothing was pending, or
        ``None`` when the store lock could not be acquired (the flush is
        skipped -- warmth lost, never correctness).
        """
        if not self._pending and self._on_disk_valid:
            return 0
        try:
            with _locked(self._anchor, exclusive=True, timeout=self._timeout()):
                self._ensure_layout_locked()
                written = self._append_delta_locked(self._pending)
        except CacheLockTimeout:
            return None
        self._delta.update(self._pending)
        self._pending = {}
        return written

    def merge(self) -> int | None:
        """Delta compaction: fold the append log into the bucket files.

        Re-reads the log from disk under the exclusive store lock (peers
        may have appended since we opened), rewrites *only* the buckets
        the log touches, then truncates the log.  Returns the number of
        buckets rewritten, or ``None`` on a lock timeout.
        """
        try:
            with _locked(self._anchor, exclusive=True, timeout=self._timeout()):
                self._ensure_layout_locked()
                disk_delta, _ = self._read_delta_records()
                combined = {**disk_delta, **self._pending}
                if not combined:
                    return 0
                by_bucket: dict[int, dict[str, Any]] = {}
                for key, value in combined.items():
                    by_bucket.setdefault(self._bucket_index(key), {})[
                        key
                    ] = value
                rewritten = 0
                for index in sorted(by_bucket):
                    bucket = self._load_bucket(index)
                    bucket.update(by_bucket[index])
                    self._write_bucket_locked(index, bucket)
                    self._buckets[index] = bucket
                    rewritten += 1
                self._truncate_delta_locked()
        except CacheLockTimeout:
            return None
        self._delta = {}
        self._pending = {}
        return rewritten

    def stats(self) -> dict[str, int]:
        """Cheap on-disk shape numbers for CLI/stats surfaces."""
        bucket_files = list(self.path.glob(_BUCKET_GLOB))
        store_bytes = 0
        for file in [self._manifest_path, self._delta_path, *bucket_files]:
            try:
                store_bytes += file.stat().st_size
            except OSError:
                pass
        return {
            "n_buckets": self.n_buckets,
            "bucket_files": len(bucket_files),
            "delta_entries": len(self._delta) + len(self._pending),
            "store_bytes": store_bytes,
        }

    @classmethod
    def compact_path(cls, path, lock_timeout: float | None = None) -> int:
        """Compact the store at *path* without knowing its fingerprint.

        The manifest pins the payload kind and fingerprint digest, which
        is all compaction needs.  Loud (:class:`ArtifactError`) on a
        missing or unusable manifest: the caller named *this* store.
        """
        path = Path(path)
        header, _ = open_array_artifact(
            path / _MANIFEST_FILE, CACHE_STORE_KIND, lock_timeout=lock_timeout
        )
        if header.get("layout_version") != CACHE_STORE_LAYOUT_VERSION:
            raise ArtifactError(
                f"{path} uses cache store layout "
                f"{header.get('layout_version')!r}, expected "
                f"{CACHE_STORE_LAYOUT_VERSION}"
            )
        store = cls(
            path,
            str(header.get("payload_kind")),
            n_buckets=int(header.get("n_buckets", DEFAULT_CACHE_BUCKETS)),
            lock_timeout=lock_timeout,
            _digest=str(header.get("fingerprint_digest")),
        )
        rewritten = store.merge()
        if rewritten is None:
            raise ArtifactError(f"could not lock {path} for compaction")
        return rewritten


def open_cache_store(
    backend: str,
    path,
    kind: str,
    fingerprint: Any,
    n_buckets: int = DEFAULT_CACHE_BUCKETS,
    lock_timeout: float | None = None,
) -> CacheStore:
    """Open (creating lazily) the :class:`CacheStore` for *backend*."""
    if backend == "memory":
        return MemoryCacheStore(path, kind, fingerprint, lock_timeout=lock_timeout)
    if backend == "disk":
        return ShardedDiskCacheStore(
            path,
            kind,
            fingerprint,
            n_buckets=n_buckets,
            lock_timeout=lock_timeout,
        )
    raise ValueError(f"unknown cache backend {backend!r}")
