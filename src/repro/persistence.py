"""Versioned on-disk persistence for the pipeline's amortisation caches.

The batched annotation engine earns most of its speed from caches that are
pure functions of immutable inputs: the search engine's token-signature ->
ranked-results cache (valid for one exact corpus and one BM25
parametrisation) and the annotator's snippet -> label memo (valid for one
fitted classifier).  This module gives both a common durable format so a
second process -- or a second CLI invocation -- starts warm instead of
recomputing them.

Every file carries three guards checked on load:

``format_version``
    bumped whenever the payload layout changes; old files are ignored;
``kind``
    what the payload is (``"search-results"``, ``"label-memo"``), so a
    file can never be loaded into the wrong cache;
``fingerprint``
    the producer's identity token (corpus size + BM25 parameters for the
    engine, a classifier weight digest for the memo).  A mismatch means
    the world changed -- corpus grew, classifier retrained -- and the
    cache is silently treated as cold, mirroring the in-memory
    invalidation hooks (``SearchEngine._validate_caches`` drops ranking
    caches whenever the corpus grows).

Writes go through a temporary file and ``os.replace`` so a crashed writer
never leaves a truncated cache behind, and loads treat *any* unreadable
file as a cold start rather than an error: persistence is an optimisation,
never a correctness dependency.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Any

CACHE_FORMAT_VERSION = 1
"""Bump when the persisted payload layout changes; old files are ignored."""


def save_cache_payload(path, kind: str, fingerprint: Any, payload: Any) -> None:
    """Atomically write *payload* with version/kind/fingerprint guards."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    blob = {
        "format_version": CACHE_FORMAT_VERSION,
        "kind": kind,
        "fingerprint": fingerprint,
        "payload": payload,
    }
    tmp_path = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    with open(tmp_path, "wb") as handle:
        pickle.dump(blob, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp_path, path)


def load_cache_payload(path, kind: str, fingerprint: Any) -> Any | None:
    """Read a payload saved by :func:`save_cache_payload`, or ``None``.

    ``None`` means "start cold": the file is missing, unreadable, from a
    different format version, of a different kind, or was produced against
    a different fingerprint (the corpus grew, the classifier was
    retrained, the parameters changed).
    """
    try:
        with open(path, "rb") as handle:
            blob = pickle.load(handle)
    except Exception:
        # Unpickling a foreign file can raise nearly anything -- missing
        # modules or attributes from an old layout, truncation, corruption.
        # Every failure mode means the same thing here: start cold.
        return None
    if not isinstance(blob, dict):
        return None
    if blob.get("format_version") != CACHE_FORMAT_VERSION:
        return None
    if blob.get("kind") != kind:
        return None
    if blob.get("fingerprint") != fingerprint:
        return None
    return blob.get("payload")
