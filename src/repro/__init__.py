"""repro -- a reproduction of "Entity Discovery and Annotation in Tables".

Quercini & Reynaud-Delaitre, EDBT 2013 (hal-00832639).

The package implements the paper's algorithm -- discover the rows and cells
of a table that name entities of ontology types, without a pre-compiled
entity catalogue -- together with every substrate the paper's evaluation
depends on, simulated offline: a web search engine over a synthetic corpus,
a DBpedia-style knowledge base, a geocoder with ambiguous toponyms, a
Google-Fusion-Tables service, two snippet classifiers, three baselines, the
40-table evaluation corpus and the experiment harness that regenerates
every table and figure of Section 6.

Quick start::

    from repro import quickstart_world, EntityAnnotator, AnnotatorConfig

    world, classifier = quickstart_world()
    annotator = EntityAnnotator(classifier, world.search_engine)
    annotation = annotator.annotate_table(my_table, ["restaurant", "museum"])
    for cell in annotation.cells:
        print(cell.row, cell.column, cell.type_key, cell.score)

See ``examples/`` for runnable end-to-end scenarios and ``DESIGN.md`` for
the experiment index.
"""

from repro.classify.snippet import OTHER_LABEL, SnippetTypeClassifier
from repro.core.annotator import EntityAnnotator
from repro.core.config import AnnotatorConfig
from repro.core.results import AnnotationRun, CellAnnotation, TableAnnotation
from repro.core.training import TrainingCorpusBuilder
from repro.synth.types import TYPE_SPECS, TypeSpec, type_spec
from repro.synth.world import SyntheticWorld, WorldConfig
from repro.tables.model import Column, ColumnType, Table

__version__ = "1.0.0"

__all__ = [
    "AnnotationRun",
    "AnnotatorConfig",
    "CellAnnotation",
    "Column",
    "ColumnType",
    "EntityAnnotator",
    "OTHER_LABEL",
    "SnippetTypeClassifier",
    "SyntheticWorld",
    "TYPE_SPECS",
    "Table",
    "TableAnnotation",
    "TrainingCorpusBuilder",
    "TypeSpec",
    "WorldConfig",
    "quickstart_world",
    "type_spec",
]


def quickstart_world(
    small: bool = True, backend: str = "svm", seed: int = 13
) -> tuple[SyntheticWorld, SnippetTypeClassifier]:
    """Build a world and a trained classifier in one call.

    ``small=True`` (the default) uses the reduced-scale world, which builds
    in a few seconds; pass ``small=False`` for the paper-scale world the
    benchmarks use.
    """
    config = WorldConfig.small(seed=seed) if small else WorldConfig(seed=seed)
    world = SyntheticWorld.build(config)
    builder = TrainingCorpusBuilder(world.kb, world.search_engine, seed=seed)
    train, _test, _stats = builder.build_split(list(TYPE_SPECS))
    classifier = SnippetTypeClassifier(backend=backend).fit(train)
    return world, classifier
