"""The synthetic world: one seeded object tying every substrate together.

``SyntheticWorld.build(config)`` produces, deterministically:

* a gazetteer and geocoder (with the paper's planted toponym ambiguity);
* per-type entity populations (KB pool + table pool, 22 % overlap);
* a DBpedia-style knowledge base whose category networks include noisy
  subcategories ("Curators" under "Museums") to exercise the Section 5.2.1
  pruning heuristic;
* a searchable synthetic web (entity, sense, concept, guide, noise pages);
* the open-data catalogue used by the Limaye baseline and the coverage
  experiment.

Worlds are cached per configuration: experiments and tests share one build.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clock import VirtualClock
from repro.geo.gazetteer import Gazetteer
from repro.geo.geocoder import DEFAULT_GEOCODER_LATENCY, Geocoder
from repro.geo.model import GeoLocation
from repro.kb.catalogue import Catalogue
from repro.kb.knowledge_base import KnowledgeBase
from repro.synth import pages as page_gen
from repro.synth.entities import SyntheticEntity, TypePopulation, build_population
from repro.synth.geography import build_gazetteer, home_cities
from repro.synth.rng import rng_for
from repro.synth.types import TYPE_SPECS, TypeSpec
from repro.web.search import DEFAULT_SEARCH_LATENCY, SearchEngine

_NOISE_CATEGORY_NAMES: dict[str, str] = {
    # The off-type subcategory planted under each root (cf. Figure 6's
    # "Curators" under "Museums"): entities in it must NOT train the type.
    "restaurant": "Celebrity chefs",
    "museum": "Curators",
    "theatre": "Stage directors",
    "hotel": "Hoteliers",
    "school": "Headmasters",
    "university": "Chancellors",
    "mine": "Mining engineers",
    "actor": "Talent agencies",
    "singer": "Record producers",
    "scientist": "Research funding bodies",
    "film": "Casting companies",
    "simpsons_episode": "Voice casting",
}

_REGION_WORDS = ("Europe", "America", "Asia", "France", "Italy", "Germany")


@dataclass(frozen=True)
class WorldConfig:
    """Knobs of the synthetic world; defaults reproduce the paper's scale."""

    seed: int = 13
    entity_scale: float = 1.0
    kb_overlap_rate: float = 0.22
    noise_page_count: int = 1500
    guide_pages_per_type: int = 25
    concept_pages_per_type: int = 8
    search_latency: float = DEFAULT_SEARCH_LATENCY
    geocoder_latency: float = DEFAULT_GEOCODER_LATENCY

    def __post_init__(self) -> None:
        if self.entity_scale <= 0:
            raise ValueError(f"entity_scale must be > 0, got {self.entity_scale}")
        if not 0.0 <= self.kb_overlap_rate <= 1.0:
            raise ValueError(
                f"kb_overlap_rate must be in [0, 1], got {self.kb_overlap_rate}"
            )

    @classmethod
    def small(cls, seed: int = 13) -> "WorldConfig":
        """A fast test-sized world (~10x smaller than the paper's)."""
        return cls(
            seed=seed,
            entity_scale=0.12,
            noise_page_count=250,
            guide_pages_per_type=6,
            concept_pages_per_type=4,
        )


@dataclass
class SyntheticWorld:
    """The assembled ecosystem; build via :meth:`build`."""

    config: WorldConfig
    gazetteer: Gazetteer
    cities: list[GeoLocation]
    populations: dict[str, TypePopulation]
    kb: KnowledgeBase
    catalogue: Catalogue
    search_engine: SearchEngine
    geocoder: Geocoder
    clock: VirtualClock
    page_count: int = 0
    _cache: dict = field(default_factory=dict, repr=False)

    # -- construction -------------------------------------------------------------

    @classmethod
    def build(cls, config: WorldConfig | None = None) -> "SyntheticWorld":
        """Build (or fetch from cache) the world for *config*."""
        config = config or WorldConfig()
        if config in _WORLD_CACHE:
            return _WORLD_CACHE[config]
        world = cls._build_fresh(config)
        _WORLD_CACHE[config] = world
        return world

    @classmethod
    def _build_fresh(cls, config: WorldConfig) -> "SyntheticWorld":
        gazetteer = build_gazetteer()
        cities = home_cities(gazetteer)
        clock = VirtualClock()
        populations = {
            spec.key: build_population(
                spec,
                seed=config.seed,
                cities=cities,
                kb_overlap_rate=config.kb_overlap_rate,
                scale=config.entity_scale,
            )
            for spec in TYPE_SPECS
        }
        kb = _build_knowledge_base(config, populations)
        catalogue = Catalogue.from_knowledge_base(kb, name="open-datasets")
        engine = SearchEngine(clock=clock, latency_seconds=config.search_latency)
        page_count = _populate_web(config, populations, cities, engine)
        geocoder = Geocoder(
            gazetteer, clock=clock, latency_seconds=config.geocoder_latency
        )
        return cls(
            config=config,
            gazetteer=gazetteer,
            cities=cities,
            populations=populations,
            kb=kb,
            catalogue=catalogue,
            search_engine=engine,
            geocoder=geocoder,
            clock=clock,
            page_count=page_count,
        )

    # -- accessors -----------------------------------------------------------------

    @property
    def specs(self) -> tuple[TypeSpec, ...]:
        return TYPE_SPECS

    def population(self, type_key: str) -> TypePopulation:
        """Population of one type; ``KeyError`` for unknown keys."""
        return self.populations[type_key]

    def table_entities(self, type_key: str) -> list[SyntheticEntity]:
        """Entities of *type_key* that the table corpus references."""
        return list(self.populations[type_key].table_pool)

    def kb_entities(self, type_key: str) -> list[SyntheticEntity]:
        """Entities of *type_key* registered in the knowledge base."""
        return list(self.populations[type_key].kb_pool)

    def all_table_entity_names(self) -> list[str]:
        """Every table-pool entity name (for the coverage experiment)."""
        names = []
        for spec in TYPE_SPECS:
            names.extend(e.table_name for e in self.populations[spec.key].table_pool)
        return names


_WORLD_CACHE: dict[WorldConfig, SyntheticWorld] = {}


def clear_world_cache() -> None:
    """Drop all cached worlds (tests that mutate a world should call this)."""
    _WORLD_CACHE.clear()


# -- knowledge base ------------------------------------------------------------------


def _build_knowledge_base(
    config: WorldConfig, populations: dict[str, TypePopulation]
) -> KnowledgeBase:
    kb = KnowledgeBase(name="dbpedia-stand-in")
    rng = rng_for(config.seed, "kb")
    for spec in TYPE_SPECS:
        root = spec.root_category
        kb.add_category(root)
        subcategories = [f"{root} in {region}" for region in _REGION_WORDS]
        subcategories.append(f"Historic {root.lower()}")
        for subcategory in subcategories:
            kb.add_category(subcategory, parent=root)
        # Second-level nesting, as in Figure 6.
        kb.add_category(f"{root} in Europe by country", parent=f"{root} in Europe")
        noise_category = _NOISE_CATEGORY_NAMES[spec.key]
        kb.add_category(noise_category, parent=root)
        _register_noise_entities(kb, spec, noise_category, rng)
        positive_categories = [root, *subcategories]
        for entity in populations[spec.key].kb_pool:
            chosen = rng.sample(positive_categories, k=rng.randint(1, 2))
            entity.categories = tuple(sorted(chosen))
            kb.add_entity(
                uri=f"db:{entity.uid}",
                name=entity.name,
                entity_type=spec.key,
                categories=entity.categories,
            )
    return kb


def _register_noise_entities(kb, spec: TypeSpec, category: str, rng) -> None:
    """Off-type entities in the noisy subcategory (never training data)."""
    from repro.synth.vocab import FIRST_NAMES, LAST_NAMES

    for i in range(5):
        first = FIRST_NAMES[rng.randrange(len(FIRST_NAMES))]
        last = LAST_NAMES[rng.randrange(len(LAST_NAMES))]
        kb.add_entity(
            uri=f"db:noise-{spec.key}-{i}",
            name=f"{first} {last}",
            entity_type="person",
            categories=(category,),
        )


# -- web corpus ----------------------------------------------------------------------


def _populate_web(
    config: WorldConfig,
    populations: dict[str, TypePopulation],
    cities: list[GeoLocation],
    engine: SearchEngine,
) -> int:
    count = 0
    city_names = [city.name for city in cities]
    for spec in TYPE_SPECS:
        population = populations[spec.key]
        for entity in population.all_entities():
            for page in page_gen.entity_pages(entity, config.seed):
                engine.add_page(page)
                count += 1
            for page in page_gen.sense_pages(entity, config.seed):
                engine.add_page(page)
                count += 1
        for page in page_gen.concept_pages(
            spec, config.seed, count=config.concept_pages_per_type
        ):
            engine.add_page(page)
            count += 1
        for page in page_gen.guide_pages(
            spec, config.seed, city_names, count=config.guide_pages_per_type
        ):
            engine.add_page(page)
            count += 1
    for page in page_gen.noise_pages(config.seed, config.noise_page_count):
        engine.add_page(page)
        count += 1
    return count
