"""The synthetic world's geography.

Builds a gazetteer that contains, verbatim, the ambiguous toponyms of the
paper's own Figure 7 example -- Pennsylvania Avenue in both Washington D.C.
and Baltimore; Wofford Lane in College Park MD, Lockhart FL and Conway AR;
Clarksville Street in Paris TX, Bogata TX and Trenton KY; the city-name
ambiguities Paris TX / Paris TN / Paris (France), Washington D.C. /
Washington GA and College Park MD / GA -- plus a pool of unambiguous cities
used as entity homes.
"""

from __future__ import annotations

from repro.geo.gazetteer import Gazetteer
from repro.geo.model import GeoLocation

# (city, state, country); the first 20 are entity-home cities.
_CITIES: tuple[tuple[str, str, str], ...] = (
    ("Santa Monica", "California", "USA"),
    ("Baltimore", "Maryland", "USA"),
    ("Boston", "Massachusetts", "USA"),
    ("Chicago", "Illinois", "USA"),
    ("Denver", "Colorado", "USA"),
    ("Portland", "Oregon", "USA"),
    ("Austin", "Texas", "USA"),
    ("Savannah", "Georgia", "USA"),
    ("Madison", "Wisconsin", "USA"),
    ("Lyon", "Rhone-Alpes", "France"),
    ("Marseille", "Provence", "France"),
    ("Genoa", "Liguria", "Italy"),
    ("Turin", "Piedmont", "Italy"),
    ("Munich", "Bavaria", "Germany"),
    ("Hamburg", "Hamburg State", "Germany"),
    ("Oxford", "England", "UK"),
    ("Leeds", "England", "UK"),
    ("Bristol", "England", "UK"),
    ("Toulouse", "Occitanie", "France"),
    ("Florence", "Tuscany", "Italy"),
    # Ambiguous city names (planted; not used as entity homes).
    ("Paris", "Texas", "USA"),
    ("Paris", "Tennessee", "USA"),
    ("Paris", "Ile-de-France", "France"),
    ("Washington", "District of Columbia", "USA"),
    ("Washington", "Georgia", "USA"),
    ("College Park", "Maryland", "USA"),
    ("College Park", "Georgia", "USA"),
    ("Springfield", "Illinois", "USA"),
    ("Springfield", "Massachusetts", "USA"),
    ("Bogata", "Texas", "USA"),
    ("Trenton", "Kentucky", "USA"),
    ("Lockhart", "Florida", "USA"),
    ("Conway", "Arkansas", "USA"),
)

N_HOME_CITIES = 20

# Streets planted in specific cities (the Figure 7 example, verbatim).
_PLANTED_STREETS: tuple[tuple[str, str, str], ...] = (
    ("Pennsylvania Avenue", "Washington", "District of Columbia"),
    ("Pennsylvania Avenue", "Baltimore", "Maryland"),
    ("Wofford Lane", "College Park", "Maryland"),
    ("Wofford Lane", "Lockhart", "Florida"),
    ("Wofford Lane", "Conway", "Arkansas"),
    ("Clarksville Street", "Paris", "Texas"),
    ("Clarksville Street", "Bogata", "Texas"),
    ("Clarksville Street", "Trenton", "Kentucky"),
)

# Street names given to every home city (so most addresses resolve, some
# ambiguously because the same street name recurs across cities).
_COMMON_STREETS: tuple[str, ...] = (
    "Main Street", "Church Street", "Maple Street", "Oak Avenue",
    "Elm Street", "Park Avenue", "River Road", "Mill Lane",
    "Station Road", "Market Square", "Harbor Boulevard", "Cedar Lane",
)


def build_gazetteer() -> Gazetteer:
    """The full synthetic gazetteer (deterministic, no RNG needed)."""
    gazetteer = Gazetteer()
    state_index: dict[tuple[str, str], GeoLocation] = {}
    city_index: dict[tuple[str, str], GeoLocation] = {}
    for city_name, state_name, country_name in _CITIES:
        country = gazetteer.add_country(country_name)
        state_key = (state_name, country_name)
        if state_key not in state_index:
            state_index[state_key] = gazetteer.add_state(state_name, country)
        city = gazetteer.add_city(city_name, state_index[state_key])
        city_index[(city_name, state_name)] = city
    for street_name, city_name, state_name in _PLANTED_STREETS:
        gazetteer.add_street(street_name, city_index[(city_name, state_name)])
    for city_name, state_name, _country in _CITIES[:N_HOME_CITIES]:
        city = city_index[(city_name, state_name)]
        for street_name in _COMMON_STREETS:
            gazetteer.add_street(street_name, city)
    return gazetteer


def home_cities(gazetteer: Gazetteer) -> list[GeoLocation]:
    """The cities entities live in (unambiguous names only)."""
    cities = []
    for city_name, state_name, _country in _CITIES[:N_HOME_CITIES]:
        for city in gazetteer.find_cities(city_name):
            if city.container is not None and city.container.name == state_name:
                cities.append(city)
    return cities
