"""Word pools for the synthetic world.

The snippet classifiers can only work if pages about different entity types
have distinguishable vocabulary, with realistic overlap inside a category
(schools and universities share education words; films and Simpsons episodes
share screen words) -- the paper deliberately picked those subsumption pairs
to stress the classifier.  Marker pools never contain the type word itself:
its appearance is injected separately at the rate
``TypeSpec.type_word_in_page_rate`` so the TypeInSnippet baseline can be
shaped independently of classifier separability.
"""

from __future__ import annotations

TYPE_MARKERS: dict[str, tuple[str, ...]] = {
    "restaurant": (
        "menu", "chef", "cuisine", "dining", "dishes", "reservations",
        "bistro", "culinary", "appetizers", "entrees", "desserts", "wine",
        "flavors", "tasting", "brunch", "seafood", "grill", "sauce",
        "pasta", "vegetarian", "sommelier", "courses",
    ),
    "museum": (
        "exhibition", "gallery", "collection", "artifacts", "curator",
        "exhibits", "paintings", "sculpture", "heritage", "antiquities",
        "archaeology", "displays", "admission", "artworks", "masterpieces",
        "installations", "archive", "relics", "ceramics", "galleries",
        "dioramas", "conservation",
    ),
    "theatre": (
        "stage", "drama", "matinee", "playhouse", "auditorium", "curtain",
        "rehearsal", "troupe", "playwright", "comedy", "tragedy",
        "backstage", "usher", "marquee", "repertory", "ensemble",
        "spotlight", "applause", "intermission", "staging", "acts",
        "dramaturgy",
    ),
    "hotel": (
        "rooms", "suites", "lodging", "amenities", "concierge",
        "housekeeping", "lobby", "guests", "accommodation", "resort",
        "poolside", "valet", "linens", "hospitality", "innkeeper",
        "bellhop", "nightly", "vacancy", "penthouse", "turndown",
        "minibar", "checkout",
    ),
    "school": (
        "pupils", "classroom", "teachers", "curriculum", "elementary",
        "kindergarten", "grades", "homework", "enrollment", "playground",
        "literacy", "classrooms", "schooling", "educators", "lessons",
        "gymnasium", "recess", "principal", "chalkboard", "truancy",
        "report", "attendance",
    ),
    "university": (
        "campus", "faculty", "undergraduate", "graduate", "professors",
        "research", "lectures", "dormitory", "seminars", "doctoral",
        "alumni", "rector", "provost", "thesis", "colloquium",
        "endowment", "accreditation", "laboratories", "matriculation",
        "chancellor", "tenure", "syllabus",
    ),
    "mine": (
        "ore", "mining", "shafts", "colliery", "excavation", "minerals",
        "coal", "copper", "drilling", "tunnels", "geology", "deposits",
        "quarry", "smelting", "haulage", "seams", "prospecting",
        "extraction", "gangue", "overburden", "miners", "bedrock",
    ),
    "actor": (
        "starring", "portrayal", "filmography", "audition", "casting",
        "onscreen", "costar", "stuntman", "sitcom", "typecast", "cameo",
        "heartthrob", "understudy", "monologue", "supporting", "leading",
        "improvisation", "headshot", "callback", "screen", "roles",
        "stardom",
    ),
    "singer": (
        "vocals", "album", "chart", "concerts", "songwriting", "lyrics",
        "melodies", "touring", "ballads", "singles", "discography",
        "harmonies", "encore", "falsetto", "vocalist", "crooner",
        "chorus", "duet", "platinum", "recording", "acoustic", "setlist",
    ),
    "scientist": (
        "laboratory", "hypothesis", "physics", "chemistry", "discoveries",
        "experiments", "publications", "theorem", "nobel", "academia",
        "equations", "journals", "citations", "genetics", "quantum",
        "molecules", "microscope", "postulate", "empirical",
        "breakthroughs", "fellowship", "symposium",
    ),
    "film": (
        "directed", "screenplay", "cinematography", "trailer", "studio",
        "premiere", "soundtrack", "remake", "sequel", "screening",
        "critics", "reels", "footage", "subtitles", "moviegoers",
        "blockbuster", "filmmakers", "projection", "celluloid",
        "cinematic", "scenes", "adaptation",
    ),
    "simpsons_episode": (
        "springfield", "homer", "bart", "marge", "lisa", "maggie",
        "burns", "krusty", "flanders", "moe", "animated", "satire",
        "cartoon", "duff", "milhouse", "nelson", "apu", "couch",
        "donut", "groening", "skinner", "ralph",
    ),
}

CATEGORY_MARKERS: dict[str, tuple[str, ...]] = {
    "poi": (
        "located", "visitors", "landmark", "downtown", "attraction",
        "neighborhood", "district", "nearby", "daily", "opening",
        "entrance", "tourists",
    ),
    "people": (
        "born", "career", "biography", "famous", "award", "interview",
        "celebrated", "renowned", "legacy", "childhood", "honored",
        "profile",
    ),
    "cinema": (
        "release", "rating", "synopsis", "runtime", "debut", "finale",
        "viewers", "broadcast", "production", "series", "writers",
        "airing",
    ),
}

GENERIC_WEB: tuple[str, ...] = (
    "official", "website", "page", "info", "contact", "home", "news",
    "online", "free", "guide", "list", "photos", "map", "search",
    "share", "links", "email", "welcome", "read", "find", "popular",
    "visit", "learn", "join", "follow",
)

NOISE_TOPICS: dict[str, tuple[str, ...]] = {
    "politics": (
        "senate", "election", "policy", "governor", "congress", "ballot",
        "campaign", "legislation", "caucus", "veto", "constituents",
        "incumbent",
    ),
    "sports": (
        "league", "playoffs", "scoring", "tournament", "champions",
        "coach", "stadium", "referee", "midfielder", "standings",
        "goalkeeper", "offside",
    ),
    "weather": (
        "forecast", "rainfall", "temperatures", "humidity", "storms",
        "barometric", "gusts", "drizzle", "heatwave", "frost",
        "meteorologist", "overcast",
    ),
    "finance": (
        "stocks", "market", "investors", "trading", "earnings",
        "dividend", "portfolio", "hedge", "bonds", "inflation",
        "quarterly", "valuation",
    ),
    "technology": (
        "software", "startup", "gadgets", "devices", "computing",
        "firmware", "encryption", "bandwidth", "prototype", "silicon",
        "interface", "developers",
    ),
    "music_label": (
        "records", "label", "roster", "pressing", "vinyl", "imprint",
        "distribution", "catalog", "signings", "releases", "masters",
        "royalties",
    ),
    "gardening": (
        "perennials", "mulch", "pruning", "seedlings", "compost",
        "blooms", "trellis", "fertilizer", "shrubs", "horticulture",
        "greenhouse", "pollinators",
    ),
    "automotive": (
        "horsepower", "chassis", "sedan", "torque", "drivetrain",
        "mileage", "dealership", "coupe", "turbocharged", "transmission",
        "braking", "alloy",
    ),
}

REVIEW_WORDS: tuple[str, ...] = (
    "review", "rated", "stars", "recommend", "experience", "service",
    "friendly", "atmosphere", "worth", "loved", "disappointing",
    "excellent", "amazing", "terrible", "cozy", "overpriced",
    "helpful", "charming", "memorable", "crowded", "quiet", "pleasant",
    "underrated", "spotless",
)

DESCRIPTION_WORDS: tuple[str, ...] = (
    "charming", "delightful", "spacious", "renowned", "historic",
    "vibrant", "bustling", "scenic", "elegant", "celebrated",
    "picturesque", "tranquil", "iconic", "beloved", "stunning",
    "family", "friendly", "perfect", "ideal", "wonderful", "situated",
    "heart", "offering", "featuring", "boasting", "established",
)

NAME_ADJECTIVES: tuple[str, ...] = (
    "Golden", "Olive", "Royal", "Grand", "Silver", "Rustic", "Amber",
    "Crimson", "Ivory", "Emerald", "Cobalt", "Maple", "Willow",
    "Harbor", "Summit", "Meadow", "Velvet", "Copper", "Scarlet",
    "Azure", "Marble", "Cedar",
)

NAME_NOUNS: tuple[str, ...] = (
    "Table", "Garden", "Lantern", "Barrel", "Orchard", "Compass",
    "Anchor", "Crown", "Falcon", "Heron", "Thistle", "Juniper",
    "Saffron", "Magnolia", "Pavilion", "Terrace", "Harvest", "Quill",
    "Beacon", "Arbor", "Prism", "Atlas",
)

FIRST_NAMES: tuple[str, ...] = (
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer",
    "Michael", "Linda", "David", "Elizabeth", "William", "Barbara",
    "Richard", "Susan", "Joseph", "Jessica", "Thomas", "Sarah",
    "Charles", "Karen", "Christopher", "Lisa", "Daniel", "Nancy",
    "Matthew", "Betty", "Anthony", "Margaret", "Mark", "Sandra",
    "Donald", "Ashley", "Steven", "Kimberly", "Paul", "Emily",
    "Andrew", "Donna", "Joshua", "Michelle",
)

LAST_NAMES: tuple[str, ...] = (
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia",
    "Miller", "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez",
    "Gonzalez", "Wilson", "Anderson", "Thomas", "Taylor", "Moore",
    "Jackson", "Martin", "Lee", "Perez", "Thompson", "White",
    "Harris", "Sanchez", "Clark", "Ramirez", "Lewis", "Robinson",
    "Walker", "Young", "Allen", "King", "Wright", "Scott", "Torres",
    "Nguyen", "Hill", "Flores", "Green", "Adams", "Nelson", "Baker",
    "Hall", "Rivera", "Campbell", "Mitchell", "Carter", "Roberts",
    "Marsh", "Whitfield", "Crane", "Ashford", "Bellamy", "Hargrove",
    "Kendall", "Lockwood", "Pemberton", "Radcliffe",
)

SUBJECT_WORDS: tuple[str, ...] = (
    "Art", "History", "Science", "Natural", "Maritime", "Aviation",
    "Railway", "Folk", "Modern", "Contemporary", "Industrial",
    "Archaeology", "Photography", "Design", "Textile", "Ceramics",
)

FILM_TITLE_NOUNS: tuple[str, ...] = (
    "Horizon", "Shadows", "Tide", "Ember", "Winter", "Echoes",
    "Mirage", "Voyage", "Labyrinth", "Twilight", "Serpent", "Harvest",
    "Monsoon", "Glacier", "Citadel", "Oracle", "Tempest", "Paragon",
)
