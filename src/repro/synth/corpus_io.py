"""Persistence for table corpora (tables + gold standard).

Lets a generated evaluation corpus be saved once and reloaded across
processes -- useful for inspecting the exact tables behind a benchmark run
or for sharing a corpus without re-running the generators.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.eval.gold import GoldEntityReference, GoldStandard
from repro.synth.table_corpus import TableCorpus
from repro.tables.io import table_from_json, table_to_json


def corpus_to_json(corpus: TableCorpus) -> str:
    """Serialise *corpus* (tables and gold) to a JSON document."""
    payload = {
        "name": corpus.name,
        "tables": [json.loads(table_to_json(table)) for table in corpus.tables],
        "gold": [
            {
                "table": ref.table_name,
                "row": ref.row,
                "column": ref.column,
                "type": ref.type_key,
                "value": ref.cell_value,
            }
            for ref in corpus.gold.references
        ],
    }
    return json.dumps(payload, ensure_ascii=False, indent=2)


def corpus_from_json(text: str) -> TableCorpus:
    """Parse the document produced by :func:`corpus_to_json`."""
    payload = json.loads(text)
    for key in ("name", "tables", "gold"):
        if key not in payload:
            raise ValueError(f"corpus JSON is missing the {key!r} key")
    corpus = TableCorpus(name=payload["name"])
    for table_payload in payload["tables"]:
        corpus.tables.append(table_from_json(json.dumps(table_payload)))
    gold = GoldStandard()
    for entry in payload["gold"]:
        gold.add(
            GoldEntityReference(
                table_name=entry["table"],
                row=entry["row"],
                column=entry["column"],
                type_key=entry["type"],
                cell_value=entry["value"],
            )
        )
    corpus.gold = gold
    return corpus


def save_corpus(corpus: TableCorpus, path: str | Path) -> None:
    """Write *corpus* to *path* as JSON."""
    Path(path).write_text(corpus_to_json(corpus))


def load_corpus(path: str | Path) -> TableCorpus:
    """Read a corpus previously written by :func:`save_corpus`."""
    return corpus_from_json(Path(path).read_text())
