"""Table-corpus builders: the 40 GFT tables and the Wiki Manual stand-in.

Each builder returns a :class:`TableCorpus` -- tables plus the gold standard
recorded at generation time.  Five table scenarios cover the phenomena the
paper's pipeline must handle:

* **directory** -- ``[Name, Address(Location), Phone, Website]``; addresses
  are a mix of full and partial forms, feeding the Section 5.2.2
  disambiguation; phone / URL cells exercise the regex pre-filters;
* **city guide** -- ``[Name, Description, Notes, City(Location)]``; verbose
  descriptions exercise the long-value filter, short marker phrases in
  Notes are the guide-page precision threat post-processing must kill;
* **label** (Figure 8 / Figure 2) -- ``[Name, Type, City(Location)]`` with
  several entity types interleaved and the Type column holding repeated
  type words ("Museum"), the canonical Equation 2 scenario;
* **people** -- ``[Name, Born(Number), Occupation]`` with repeated
  occupation labels ("Singer");
* **cinema** -- ``[Title, Year(Number), ...]`` with a Date column for
  episodes.

The GFT corpus is 40 tables whose per-type gold counts equal the paper's
(287 restaurants, 240 museums, ... at ``entity_scale=1.0``).  The Wiki
Manual stand-in is 36 tables of mostly *known* (in-catalogue) entities with
no GFT column types, matching the Wikipedia provenance of the original.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.eval.gold import GoldEntityReference, GoldStandard
from repro.geo.model import GeoLocation
from repro.synth import vocab
from repro.synth.entities import SyntheticEntity
from repro.synth.rng import rng_for
from repro.synth.types import TYPE_SPECS, type_spec
from repro.synth.world import SyntheticWorld
from repro.tables.model import Column, ColumnType, Table

# Single-type tables per type (37) + 3 mixed label tables = the paper's 40.
_GFT_PLAN: dict[str, int] = {
    "restaurant": 7,
    "museum": 6,
    "theatre": 4,
    "hotel": 2,
    "school": 3,
    "university": 4,
    "mine": 1,
    "actor": 2,
    "singer": 3,
    "scientist": 3,
    "film": 1,
    "simpsons_episode": 1,
}
_N_MIXED_TABLES = 3
_MIXED_TYPES = ("restaurant", "hotel", "museum")
_MIXED_PER_TYPE_PER_TABLE = 3

WIKI_TABLE_COUNT = 36


@dataclass
class TableCorpus:
    """A named set of tables with their gold standard."""

    name: str
    tables: list[Table] = field(default_factory=list)
    gold: GoldStandard = field(default_factory=GoldStandard)

    def table(self, name: str) -> Table:
        """Table by name; ``KeyError`` when absent."""
        for table in self.tables:
            if table.name == name:
                return table
        raise KeyError(f"no table named {name!r} in corpus {self.name!r}")

    @property
    def n_rows_total(self) -> int:
        return sum(table.n_rows for table in self.tables)

    def average_rows(self) -> float:
        """Mean rows per table (the paper reports 50 for its corpus)."""
        if not self.tables:
            return 0.0
        return self.n_rows_total / len(self.tables)


# -- cell-content helpers ----------------------------------------------------------------


def _phone(rng: random.Random) -> str:
    return f"({rng.randint(200, 989)}) {rng.randint(100, 999):03d}-{rng.randint(0, 9999):04d}"


def _website(rng: random.Random, name: str) -> str:
    slug = "".join(ch for ch in name.lower() if ch.isalnum())[:18] or "site"
    domain = rng.choice(("com", "org", "net"))
    return f"https://www.{slug}.{domain}"


def _description(rng: random.Random, type_key: str) -> str:
    words = [rng.choice(vocab.DESCRIPTION_WORDS) for _ in range(rng.randint(13, 22))]
    words.insert(rng.randrange(len(words)), rng.choice(vocab.TYPE_MARKERS[type_key]))
    return " ".join(words).capitalize()


def _notes_phrase(rng: random.Random, type_key: str) -> str:
    """A short review phrase -- the weak-evidence false-positive bait.

    Mostly generic review words (which occur in guide pages of *every*
    type, so the retrieved snippets split across types and fail the
    majority rule).  Just under half the phrases carry one type marker --
    and, as on the real web, usually a marker of a *different* domain
    ("cozy rooms" in a restaurant guide).  The resulting snippets are weak
    evidence: the margin classifier abstains while arg-max Naive Bayes
    fires, and because the marker's type has no competing column in the
    table, Equation 2 cannot rescue Bayes -- reproducing its Table 1
    precision collapse.
    """
    review = vocab.REVIEW_WORDS
    if rng.random() < 0.45:
        if rng.random() < 0.7:
            other_keys = [k for k in vocab.TYPE_MARKERS if k != type_key]
            marker_type = rng.choice(other_keys)
        else:
            marker_type = type_key
        third = rng.choice(vocab.TYPE_MARKERS[marker_type])
    else:
        third = rng.choice(review)
    return f"{rng.choice(review)} {rng.choice(review)} {third}"


def _address_cell(rng: random.Random, city: GeoLocation | None) -> str:
    """A street address; 40 % partial (no city), 60 % full."""
    street = rng.choice(
        (
            "Main Street", "Church Street", "Maple Street", "Oak Avenue",
            "Elm Street", "Park Avenue", "River Road", "Mill Lane",
            "Station Road", "Market Square", "Harbor Boulevard", "Cedar Lane",
        )
    )
    number = rng.randint(1, 980)
    if city is None or rng.random() < 0.4:
        if rng.random() < 0.3:
            return f"{number} {street} {rng.randint(10000, 99899)}"
        return f"{number} {street}"
    return f"{number} {street}, {city.name}"


def _date_cell(rng: random.Random) -> str:
    months = (
        "January", "February", "March", "April", "May", "June", "July",
        "August", "September", "October", "November", "December",
    )
    return f"{rng.choice(months)} {rng.randint(1, 28)}, {rng.randint(1990, 2012)}"


def _person_name(rng: random.Random) -> str:
    return f"{rng.choice(vocab.FIRST_NAMES)} {rng.choice(vocab.LAST_NAMES)}"


def _chunk(items: list, n_chunks: int) -> list[list]:
    """Split *items* into *n_chunks* nearly equal contiguous chunks."""
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    base, extra = divmod(len(items), n_chunks)
    chunks = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


# -- scenario builders --------------------------------------------------------------------


def _directory_table(
    name: str,
    entities: list[SyntheticEntity],
    rng: random.Random,
    gold: GoldStandard,
) -> Table:
    table = Table(
        name=name,
        columns=[
            Column("Name", ColumnType.TEXT),
            Column("Address", ColumnType.LOCATION),
            Column("Phone", ColumnType.TEXT),
            Column("Website", ColumnType.TEXT),
        ],
    )
    for entity in entities:
        row = [
            entity.table_name,
            _address_cell(rng, entity.city),
            _phone(rng),
            _website(rng, entity.name),
        ]
        table.append_row(row)
        gold.add(
            GoldEntityReference(
                table_name=name,
                row=table.n_rows - 1,
                column=0,
                type_key=entity.type_key,
                cell_value=entity.table_name,
            )
        )
    return table


def _city_guide_table(
    name: str,
    entities: list[SyntheticEntity],
    rng: random.Random,
    gold: GoldStandard,
) -> Table:
    table = Table(
        name=name,
        columns=[
            Column("Name", ColumnType.TEXT),
            Column("Description", ColumnType.TEXT),
            Column("Category", ColumnType.TEXT),
            Column("Notes", ColumnType.TEXT),
            Column("City", ColumnType.LOCATION),
        ],
    )
    # A repeated subtype-label column (the Figure 8 failure mode, without
    # the literal type word): "Sculpture", "Seafood", "Opera" ... queried,
    # these retrieve strongly typed pages and earn confident spurious
    # annotations that only Equation 2's repetition damping can eliminate.
    label_pool = rng.sample(list(vocab.TYPE_MARKERS[entities[0].type_key]), k=4)
    for entity in entities:
        city_value = entity.city.name if entity.city is not None else ""
        table.append_row(
            [
                entity.table_name,
                _description(rng, entity.type_key),
                rng.choice(label_pool).title(),
                _notes_phrase(rng, entity.type_key),
                city_value,
            ]
        )
        gold.add(
            GoldEntityReference(
                table_name=name,
                row=table.n_rows - 1,
                column=0,
                type_key=entity.type_key,
                cell_value=entity.table_name,
            )
        )
    return table


def _label_table(
    name: str,
    entities: list[SyntheticEntity],
    rng: random.Random,
    gold: GoldStandard,
) -> Table:
    """The Figure 8 scenario: a repeated type-word column beside the names."""
    table = Table(
        name=name,
        columns=[
            Column("Name", ColumnType.TEXT),
            Column("Type", ColumnType.TEXT),
            Column("City", ColumnType.LOCATION),
        ],
    )
    for entity in entities:
        label = type_spec(entity.type_key).type_word.title()
        city_value = entity.city.name if entity.city is not None else ""
        table.append_row([entity.table_name, label, city_value])
        gold.add(
            GoldEntityReference(
                table_name=name,
                row=table.n_rows - 1,
                column=0,
                type_key=entity.type_key,
                cell_value=entity.table_name,
            )
        )
    return table


def _people_table(
    name: str,
    entities: list[SyntheticEntity],
    rng: random.Random,
    gold: GoldStandard,
) -> Table:
    table = Table(
        name=name,
        columns=[
            Column("Name", ColumnType.TEXT),
            Column("Born", ColumnType.NUMBER),
            Column("Occupation", ColumnType.TEXT),
            Column("Notes", ColumnType.TEXT),
        ],
    )
    for entity in entities:
        occupation = type_spec(entity.type_key).type_word.title()
        table.append_row(
            [
                entity.table_name,
                str(rng.randint(1930, 1992)),
                occupation,
                _notes_phrase(rng, entity.type_key),
            ]
        )
        gold.add(
            GoldEntityReference(
                table_name=name,
                row=table.n_rows - 1,
                column=0,
                type_key=entity.type_key,
                cell_value=entity.table_name,
            )
        )
    return table


def _films_table(
    name: str,
    entities: list[SyntheticEntity],
    rng: random.Random,
    gold: GoldStandard,
) -> Table:
    table = Table(
        name=name,
        columns=[
            Column("Title", ColumnType.TEXT),
            Column("Year", ColumnType.NUMBER),
            Column("Director", ColumnType.TEXT),
        ],
    )
    for entity in entities:
        table.append_row(
            [entity.table_name, str(rng.randint(1975, 2012)), _person_name(rng)]
        )
        gold.add(
            GoldEntityReference(
                table_name=name,
                row=table.n_rows - 1,
                column=0,
                type_key=entity.type_key,
                cell_value=entity.table_name,
            )
        )
    return table


def _episodes_table(
    name: str,
    entities: list[SyntheticEntity],
    rng: random.Random,
    gold: GoldStandard,
) -> Table:
    table = Table(
        name=name,
        columns=[
            Column("Title", ColumnType.TEXT),
            Column("Season", ColumnType.NUMBER),
            Column("Original air date", ColumnType.DATE),
        ],
    )
    for entity in entities:
        table.append_row(
            [entity.table_name, str(rng.randint(1, 23)), _date_cell(rng)]
        )
        gold.add(
            GoldEntityReference(
                table_name=name,
                row=table.n_rows - 1,
                column=0,
                type_key=entity.type_key,
                cell_value=entity.table_name,
            )
        )
    return table


def _mines_table(
    name: str,
    entities: list[SyntheticEntity],
    rng: random.Random,
    gold: GoldStandard,
) -> Table:
    table = Table(
        name=name,
        columns=[
            Column("Name", ColumnType.TEXT),
            Column("Ore", ColumnType.TEXT),
            Column("Output (kt)", ColumnType.NUMBER),
        ],
    )
    ores = ("Coal", "Copper", "Ore", "Minerals")
    for entity in entities:
        table.append_row(
            [entity.table_name, rng.choice(ores), str(rng.randint(5, 900))]
        )
        gold.add(
            GoldEntityReference(
                table_name=name,
                row=table.n_rows - 1,
                column=0,
                type_key=entity.type_key,
                cell_value=entity.table_name,
            )
        )
    return table


# -- corpus builders -------------------------------------------------------------------


def _scenario_for(type_key: str, table_index: int):
    category = type_spec(type_key).category
    if category == "people":
        return _people_table
    if type_key == "film":
        return _films_table
    if type_key == "simpsons_episode":
        return _episodes_table
    if type_key == "mine":
        return _mines_table
    # Single-type POI tables alternate directory / city-guide; repeated
    # type-label columns (the Figure 8 scenario) live in the mixed tables
    # and the people tables' Occupation column, so the TIN baseline keeps
    # its high-precision character on museums and theatres, as in Table 1.
    cycle = (_directory_table, _city_guide_table)
    return cycle[table_index % len(cycle)]


def build_gft_corpus(world: SyntheticWorld) -> TableCorpus:
    """The 40-table Google-Fusion-Tables corpus with gold standard."""
    rng = rng_for(world.config.seed, "gft-corpus")
    corpus = TableCorpus(name="gft-40")
    pools: dict[str, list[SyntheticEntity]] = {}
    for spec in TYPE_SPECS:
        pool = sorted(
            world.table_entities(spec.key),
            key=lambda e: (e.city.name if e.city else "", e.uid),
        )
        pools[spec.key] = pool

    # Reserve entities for the mixed (Figure 2-style) tables.
    mixed_reserve: dict[str, list[SyntheticEntity]] = {}
    for key in _MIXED_TYPES:
        want = _MIXED_PER_TYPE_PER_TABLE * _N_MIXED_TABLES
        take = min(want, max(0, len(pools[key]) - 1))
        mixed_reserve[key] = [pools[key].pop() for _ in range(take)]

    for spec in TYPE_SPECS:
        n_tables = _GFT_PLAN[spec.key]
        chunks = [c for c in _chunk(pools[spec.key], n_tables) if c]
        for i, chunk in enumerate(chunks):
            builder = _scenario_for(spec.key, i)
            table = builder(f"gft-{spec.key}-{i + 1}", chunk, rng, corpus.gold)
            corpus.tables.append(table)

    for i in range(_N_MIXED_TABLES):
        mixture: list[SyntheticEntity] = []
        for key in _MIXED_TYPES:
            reserve = mixed_reserve[key]
            take = min(_MIXED_PER_TYPE_PER_TABLE, len(reserve))
            mixture.extend(reserve.pop() for _ in range(take))
        if not mixture:
            continue
        table = _label_table(f"gft-mixed-{i + 1}", mixture, rng, corpus.gold)
        corpus.tables.append(table)
    return corpus


def build_wiki_manual(world: SyntheticWorld) -> TableCorpus:
    """The Wiki Manual stand-in: 36 tables of mostly catalogue-known entities.

    No Location-typed columns and no GFT typing advantages -- every column
    is Text -- matching tables scraped from Wikipedia articles.  85 % of the
    referenced entities come from the knowledge-base pools, so a
    catalogue-based annotator (the Limaye baseline) has high coverage here.
    """
    rng = rng_for(world.config.seed, "wiki-manual")
    corpus = TableCorpus(name="wiki-manual")
    per_table_rows = 25 if world.config.entity_scale >= 0.5 else 8
    type_cycle = [spec.key for spec in TYPE_SPECS]
    for i in range(WIKI_TABLE_COUNT):
        type_key = type_cycle[i % len(type_cycle)]
        kb_pool = world.kb_entities(type_key)
        table_pool = world.table_entities(type_key)
        entities: list[SyntheticEntity] = []
        for _ in range(per_table_rows):
            if kb_pool and (rng.random() < 0.85 or not table_pool):
                entities.append(kb_pool[rng.randrange(len(kb_pool))])
            elif table_pool:
                entities.append(table_pool[rng.randrange(len(table_pool))])
        # Deduplicate within the table (a name can appear once per table).
        seen: set[str] = set()
        unique_entities = []
        for entity in entities:
            if entity.table_name not in seen:
                seen.add(entity.table_name)
                unique_entities.append(entity)
        name = f"wiki-{i + 1:02d}"
        table = Table(
            name=name,
            columns=[
                Column("Name", ColumnType.TEXT),
                Column("Description", ColumnType.TEXT),
                Column("Remarks", ColumnType.TEXT),
            ],
        )
        for entity in unique_entities:
            table.append_row(
                [
                    entity.table_name,
                    _description(rng, entity.type_key),
                    _notes_phrase(rng, entity.type_key),
                ]
            )
            corpus.gold.add(
                GoldEntityReference(
                    table_name=name,
                    row=table.n_rows - 1,
                    column=0,
                    type_key=entity.type_key,
                    cell_value=entity.table_name,
                )
            )
        corpus.tables.append(table)
    return corpus
