"""Synthetic-world generators.

The paper's experiments run against the 2012 live web, DBpedia, the Google
Geocoding API and 40 hand-collected Google Fusion Tables.  None of those are
available offline, so this package generates a *coherent* replacement
ecosystem from a single seed:

* per-type entity populations with controlled name shapes and ambiguity
  (:mod:`names`, :mod:`entities`);
* a gazetteer with the paper's own ambiguous toponyms (Paris TX / Paris TN /
  Paris FR, Washington DC / GA, College Park MD / GA);
* a DBpedia-style knowledge base with noisy subcategories;
* a synthetic web: entity pages, alternate-sense pages for ambiguous names,
  concept pages ("museum" the word), review pages and background noise;
* the 40-table GFT corpus with the paper's exact per-type reference counts,
  and the 36-table Wiki-Manual-style corpus for the Section 6.3 comparison;
* classifier training corpora built by the paper's own Section 5.2.1
  procedure (category walk + disambiguated queries against the engine).

Everything is deterministic given the seed.
"""

from repro.synth.entities import SyntheticEntity
from repro.synth.table_corpus import TableCorpus, build_gft_corpus, build_wiki_manual
from repro.synth.types import TYPE_SPECS, TypeSpec, type_spec
from repro.synth.world import SyntheticWorld, WorldConfig

__all__ = [
    "SyntheticEntity",
    "SyntheticWorld",
    "TYPE_SPECS",
    "TableCorpus",
    "TypeSpec",
    "WorldConfig",
    "build_gft_corpus",
    "build_wiki_manual",
    "type_spec",
]
