"""Synthetic entity populations.

For each type the world holds two overlapping pools:

* the **knowledge-base pool** -- entities registered in the DBpedia
  stand-in, used exclusively to build classifier training corpora
  (Section 5.2.1 stresses that DBpedia trains the classifier but does not
  bound what can be annotated);
* the **table pool** -- entities referenced by the 40-table corpus, of
  which only ``kb_overlap_rate`` (default 22 %, the paper's measured
  coverage) are also in the knowledge base.

Ambiguous entities additionally carry an *alternate sense*: a different
thing on the web sharing their name (a jazz label called "Melisse", a
politician sharing a singer's name, or -- for people -- an entity of a
*different Γ type*, the hardest case).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.geo.model import GeoLocation
from repro.synth import vocab
from repro.synth.names import GeneratedName, NameGenerator
from repro.synth.rng import rng_for
from repro.synth.types import PEOPLE, TypeSpec


@dataclass(frozen=True)
class AlternateSense:
    """The other meaning of an ambiguous name."""

    kind: str  # "noise" or "type"
    topic: str  # a NOISE_TOPICS key, or another type key
    page_count: int


@dataclass
class SyntheticEntity:
    """One entity of the synthetic world."""

    uid: str
    name: str
    type_key: str
    in_kb: bool
    in_tables: bool
    alias: str | None = None
    city: GeoLocation | None = None
    categories: tuple[str, ...] = ()
    alternate_sense: AlternateSense | None = None
    page_count: int = 8
    contains_type_word: bool = False

    @property
    def table_name(self) -> str:
        """The form table cells use (the alias when one exists)."""
        return self.alias if self.alias is not None else self.name


@dataclass
class TypePopulation:
    """All entities of one type, split into KB and table pools."""

    spec: TypeSpec
    kb_pool: list[SyntheticEntity] = field(default_factory=list)
    table_pool: list[SyntheticEntity] = field(default_factory=list)

    def all_entities(self) -> list[SyntheticEntity]:
        """KB-only entities plus table entities (no duplicates)."""
        table_uids = {entity.uid for entity in self.table_pool}
        kb_only = [e for e in self.kb_pool if e.uid not in table_uids]
        return kb_only + self.table_pool


def build_population(
    spec: TypeSpec,
    seed: int,
    cities: list[GeoLocation],
    kb_overlap_rate: float = 0.22,
    scale: float = 1.0,
) -> TypePopulation:
    """Generate the two pools for *spec*.

    ``scale`` shrinks both pools proportionally (test worlds use
    ``scale < 1``); at least one entity always remains in each pool.
    """
    if not cities:
        raise ValueError("need at least one city for entity homes")
    rng = rng_for(seed, "entities", spec.key)
    generator = NameGenerator(spec, rng)
    n_kb = max(1, round(spec.kb_entities * scale))
    n_table = max(1, round(spec.table_references * scale))
    population = TypePopulation(spec=spec)

    kb_entities = [
        _make_entity(spec, generator.generate(), f"{spec.key}-kb-{i:04d}", rng, cities)
        for i in range(n_kb)
    ]
    for entity in kb_entities:
        entity.in_kb = True
    population.kb_pool = kb_entities

    # The table pool: ~22 % known (drawn from the KB pool), the rest new.
    n_known = round(n_table * kb_overlap_rate)
    known = rng.sample(kb_entities, min(n_known, len(kb_entities)))
    for entity in known:
        entity.in_tables = True
    fresh = []
    for i in range(n_table - len(known)):
        entity = _make_entity(
            spec, generator.generate(), f"{spec.key}-tab-{i:04d}", rng, cities
        )
        entity.in_tables = True
        fresh.append(entity)
    population.table_pool = sorted(known + fresh, key=lambda e: e.uid)

    _assign_ambiguity(spec, population, rng)
    return population


def _make_entity(
    spec: TypeSpec,
    generated: GeneratedName,
    uid: str,
    rng: random.Random,
    cities: list[GeoLocation],
) -> SyntheticEntity:
    city = cities[rng.randrange(len(cities))] if spec.spatial else None
    return SyntheticEntity(
        uid=uid,
        name=generated.name,
        alias=generated.alias,
        type_key=spec.key,
        in_kb=False,
        in_tables=False,
        city=city,
        page_count=rng.randint(6, 10),
        contains_type_word=generated.contains_type_word,
    )


def _assign_ambiguity(
    spec: TypeSpec, population: TypePopulation, rng: random.Random
) -> None:
    """Mark a spec-controlled fraction of table entities as ambiguous.

    People types split their alternate senses between out-of-Γ noise topics
    and *other people types* -- the cross-type case that costs both
    precision and recall in Table 1.
    """
    noise_topics = sorted(vocab.NOISE_TOPICS)
    other_people = [
        key for key in ("actor", "singer", "scientist") if key != spec.key
    ]
    for entity in population.table_pool:
        if rng.random() >= spec.ambiguity_rate:
            continue
        if spec.category == PEOPLE and rng.random() < 0.35:
            topic = other_people[rng.randrange(len(other_people))]
            kind = "type"
        else:
            topic = noise_topics[rng.randrange(len(noise_topics))]
            kind = "noise"
        entity.alternate_sense = AlternateSense(
            kind=kind, topic=topic, page_count=rng.randint(5, 9)
        )
