"""Per-type entity-name generators.

Name shape drives two baselines of Table 1: TypeInName only fires when the
cell literally contains the type word (61 % of museum names do, no person
name does), and universities score zero on TIN because tables refer to them
by acronym ("MIT") while the full name ("Massachusetts Institute of
Technology") lives on the web.  Each generator returns a
:class:`GeneratedName` carrying the full name, the optional table alias and
whether the type word was embedded.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.synth import vocab
from repro.synth.types import TypeSpec


@dataclass(frozen=True)
class GeneratedName:
    """A generated entity name, its table alias and the TIN flag."""

    name: str
    alias: str | None
    contains_type_word: bool


class NameGenerator:
    """Draws unique names for one entity type from themed patterns."""

    def __init__(self, spec: TypeSpec, rng: random.Random) -> None:
        self.spec = spec
        self.rng = rng
        self._seen: set[str] = set()

    def generate(self) -> GeneratedName:
        """One fresh name (and alias, when present), unique within this generator."""
        for _ in range(200):
            candidate = self._draw()
            keys = {candidate.name}
            if candidate.alias is not None:
                keys.add(candidate.alias)
            if not keys & self._seen:
                self._seen.update(keys)
                return candidate
        raise RuntimeError(
            f"name space exhausted for type {self.spec.key!r} "
            f"after {len(self._seen)} names"
        )

    def reserve(self, name: str) -> None:
        """Mark *name* as used (for planted cross-type collisions)."""
        self._seen.add(name)

    # -- drawing ---------------------------------------------------------------------

    def _draw(self) -> GeneratedName:
        with_type_word = self.rng.random() < self.spec.type_word_in_name_rate
        builder = _BUILDERS[self.spec.key]
        name = builder(self.rng, with_type_word)
        alias = None
        if self.rng.random() < self.spec.alias_in_table_rate:
            alias = _acronym(name)
        return GeneratedName(
            name=name, alias=alias, contains_type_word=with_type_word
        )


def _pick(rng: random.Random, pool: tuple[str, ...]) -> str:
    return pool[rng.randrange(len(pool))]


def _acronym(name: str) -> str:
    """Initials of the significant words: "Pemberton Institute of Technology" -> "PIT"."""
    initials = [word[0] for word in name.split() if word.lower() not in ("of", "the")]
    return "".join(initials).upper()


# -- per-type builders -----------------------------------------------------------------


def _restaurant(rng: random.Random, with_type_word: bool) -> str:
    adjective = _pick(rng, vocab.NAME_ADJECTIVES)
    noun = _pick(rng, vocab.NAME_NOUNS)
    if with_type_word:
        patterns = (
            f"The {adjective} {noun} Restaurant",
            f"{_pick(rng, vocab.LAST_NAMES)}'s Restaurant",
        )
    else:
        patterns = (
            f"The {adjective} {noun}",
            f"Chez {_pick(rng, vocab.FIRST_NAMES)}",
            f"{_pick(rng, vocab.LAST_NAMES)}'s Kitchen",
            f"{adjective} {noun} Bistro",
            f"Casa {_pick(rng, vocab.FIRST_NAMES)}",
            f"The {noun} Room",
        )
    return _pick(rng, patterns)


def _museum(rng: random.Random, with_type_word: bool) -> str:
    subject = _pick(rng, vocab.SUBJECT_WORDS)
    if with_type_word:
        patterns = (
            f"Museum of {subject}",
            f"National {subject} Museum",
            f"{_pick(rng, vocab.LAST_NAMES)} Memorial Museum",
            f"{subject} Museum of {_pick(rng, vocab.SUBJECT_WORDS)}",
        )
    else:
        patterns = (
            f"{_pick(rng, vocab.LAST_NAMES)} Gallery",
            f"{subject} Heritage Center",
            f"The {_pick(rng, vocab.NAME_ADJECTIVES)} {subject} Collection",
            f"{_pick(rng, vocab.LAST_NAMES)} House",
        )
    return _pick(rng, patterns)


def _theatre(rng: random.Random, with_type_word: bool) -> str:
    adjective = _pick(rng, vocab.NAME_ADJECTIVES)
    noun = _pick(rng, vocab.NAME_NOUNS)
    if with_type_word:
        patterns = (
            f"{_pick(rng, vocab.LAST_NAMES)} Theatre",
            f"The {adjective} Theatre",
            f"{adjective} {noun} Theatre",
        )
    else:
        patterns = (
            f"{adjective} {noun} Playhouse",
            f"{_pick(rng, vocab.LAST_NAMES)} Opera House",
            f"{noun} Stage Company",
            f"The {adjective} {noun} Hall",
        )
    return _pick(rng, patterns)


def _hotel(rng: random.Random, with_type_word: bool) -> str:
    adjective = _pick(rng, vocab.NAME_ADJECTIVES)
    noun = _pick(rng, vocab.NAME_NOUNS)
    if with_type_word:
        patterns = (f"Hotel {noun}", f"{adjective} {noun} Hotel")
    else:
        patterns = (
            f"The {adjective} Inn",
            f"{noun} Suites",
            f"{adjective} {noun} Resort",
            f"{_pick(rng, vocab.LAST_NAMES)} Lodge",
            f"The {noun} House",
        )
    return _pick(rng, patterns)


def _school(rng: random.Random, with_type_word: bool) -> str:
    last = _pick(rng, vocab.LAST_NAMES)
    if with_type_word:
        patterns = (
            f"{last} High School",
            f"{_pick(rng, vocab.FIRST_NAMES)} {last} Elementary School",
            f"{_pick(rng, vocab.NAME_ADJECTIVES)} Valley School",
        )
    else:
        patterns = (
            f"{last} Academy",
            f"St {_pick(rng, vocab.FIRST_NAMES)} Preparatory",
            f"{_pick(rng, vocab.NAME_NOUNS)} Hill Academy",
            f"{_pick(rng, vocab.NAME_ADJECTIVES)} {_pick(rng, vocab.NAME_NOUNS)} Academy",
        )
    return _pick(rng, patterns)


def _university(rng: random.Random, with_type_word: bool) -> str:
    last = _pick(rng, vocab.LAST_NAMES)
    if with_type_word:
        patterns = (
            f"{last} University",
            f"University of {_pick(rng, vocab.NAME_NOUNS)}ville",
            f"{_pick(rng, vocab.NAME_ADJECTIVES)} State University",
            f"{_pick(rng, vocab.FIRST_NAMES)} {last} University",
        )
    else:
        # Institutes avoid the literal type word; still acronym-aliased.
        patterns = (
            f"{last} Institute of Technology",
            f"{last} Polytechnic Institute",
            f"{_pick(rng, vocab.FIRST_NAMES)} {last} College",
        )
    return _pick(rng, patterns)


def _mine(rng: random.Random, with_type_word: bool) -> str:
    noun = _pick(rng, vocab.NAME_NOUNS)
    if with_type_word:
        patterns = (f"{noun} Mine", f"{_pick(rng, vocab.LAST_NAMES)} Mine")
    else:
        patterns = (
            f"{noun} Colliery",
            f"{_pick(rng, vocab.LAST_NAMES)} Quarry",
            f"{_pick(rng, vocab.NAME_ADJECTIVES)} Creek Workings",
            f"{noun} Lode",
            f"{_pick(rng, vocab.NAME_ADJECTIVES)} {noun} Colliery",
        )
    return _pick(rng, patterns)


def _person(rng: random.Random, with_type_word: bool) -> str:
    del with_type_word  # person names never contain "actor" / "singer" / ...
    return f"{_pick(rng, vocab.FIRST_NAMES)} {_pick(rng, vocab.LAST_NAMES)}"


def _film(rng: random.Random, with_type_word: bool) -> str:
    del with_type_word  # film titles never contain the word "film"
    noun = _pick(rng, vocab.FILM_TITLE_NOUNS)
    patterns = (
        f"The {noun}",
        f"{noun} of {_pick(rng, vocab.FILM_TITLE_NOUNS)}",
        f"The {_pick(rng, vocab.NAME_ADJECTIVES)} {noun}",
        f"{noun} Rising",
        f"Beneath the {noun}",
    )
    return _pick(rng, patterns)


def _episode(rng: random.Random, with_type_word: bool) -> str:
    del with_type_word  # episode titles never contain the word "episode"
    character = _pick(rng, ("Homer", "Bart", "Marge", "Lisa", "Maggie", "Moe"))
    noun = _pick(rng, vocab.FILM_TITLE_NOUNS)
    patterns = (
        f"{character} the {_pick(rng, vocab.NAME_ADJECTIVES)}",
        f"{character}'s {noun} Adventure",
        f"{character} and the {noun}",
        f"A {_pick(rng, vocab.NAME_ADJECTIVES)} {noun} for {character}",
    )
    return _pick(rng, patterns)


_BUILDERS = {
    "restaurant": _restaurant,
    "museum": _museum,
    "theatre": _theatre,
    "hotel": _hotel,
    "school": _school,
    "university": _university,
    "mine": _mine,
    "actor": _person,
    "singer": _person,
    "scientist": _person,
    "film": _film,
    "simpsons_episode": _episode,
}
