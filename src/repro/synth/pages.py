"""Synthetic web-page generation.

Pages are word streams drawn from weighted pools.  What matters is not
prose quality but *distributional* fidelity -- each page kind reproduces a
behaviour the paper depends on:

* **entity pages** carry the entity name, its type's marker vocabulary and
  (for POIs) its home-city tokens, so snippets are classifiable and spatial
  query augmentation boosts the right pages;
* **alternate-sense pages** share the entity's name but use another
  vocabulary (the "Melisse" jazz label of Section 5.2), polluting top-k
  results for ambiguous names;
* **concept pages** describe a type word itself ("Museum"), which is why a
  repeated label cell gets misannotated until Equation 2 intervenes
  (Figure 8);
* **guide/review pages** are marker-rich pages that match short phrase
  cells ("best seafood dining"), the precision threat post-processing
  eliminates;
* **noise pages** are off-topic background that trains the OTHER class and
  fills low-quality result slots.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.synth import vocab
from repro.synth.entities import SyntheticEntity
from repro.synth.rng import rng_for
from repro.synth.types import TypeSpec, type_spec
from repro.web.documents import WebPage

WeightedPools = Sequence[tuple[Sequence[str], float]]

_ALL_TYPE_MARKERS: tuple[str, ...] = tuple(
    word for markers in vocab.TYPE_MARKERS.values() for word in markers
)
"""Union of every type's markers: the cross-domain bleed pool.  Real web
pages mention vocabulary from neighbouring domains; this sprinkle is what
separates an abstaining margin classifier from an always-guessing Bayes on
weak-evidence snippets (the Table 1 contrast)."""


def _word_stream(rng: random.Random, pools: WeightedPools, length: int) -> list[str]:
    """Sample *length* words from *pools* proportionally to their weights."""
    total = sum(weight for _, weight in pools if _)
    if total <= 0:
        raise ValueError("pools must have positive total weight")
    words = []
    for _ in range(length):
        point = rng.random() * total
        accumulated = 0.0
        for pool, weight in pools:
            if not pool:
                continue
            accumulated += weight
            if point <= accumulated:
                words.append(pool[rng.randrange(len(pool))])
                break
    return words


def _slug(text: str) -> str:
    return "".join(ch if ch.isalnum() else "-" for ch in text.lower()).strip("-")


def _inject(rng: random.Random, words: list[str], phrase: list[str]) -> None:
    """Splice *phrase* into *words* at a random position (in place)."""
    position = rng.randrange(len(words) + 1)
    words[position:position] = phrase


def entity_pages(entity: SyntheticEntity, seed: int) -> list[WebPage]:
    """All web pages about *entity* (type sense only)."""
    spec = type_spec(entity.type_key)
    rng = rng_for(seed, "pages", entity.uid)
    pages = []
    name_tokens = entity.name.split()
    city_tokens = _city_tokens(entity)
    for i in range(entity.page_count):
        is_homepage = i == 0
        title = _entity_title(rng, entity, spec, is_homepage)
        body_words = _word_stream(
            rng,
            pools=[
                (vocab.TYPE_MARKERS[spec.key], 0.34),
                (vocab.CATEGORY_MARKERS[spec.category], 0.12),
                (vocab.GENERIC_WEB, 0.29),
                (_ALL_TYPE_MARKERS, 0.05),
                (name_tokens, 0.10),
                (city_tokens, 0.10 if city_tokens else 0.0),
            ],
            length=rng.randint(38, 64),
        )
        # The full name appears verbatim so query-biased snippets centre on it.
        _inject(rng, body_words, name_tokens)
        if entity.alias is not None:
            _inject(rng, body_words, [entity.alias])
        if city_tokens and rng.random() < 0.75:
            _inject(rng, body_words, city_tokens)
        if rng.random() < spec.type_word_in_page_rate:
            _inject(rng, body_words, [spec.type_word])
        language = "fr" if rng.random() < 0.04 else "en"
        pages.append(
            WebPage(
                url=f"https://web.example/{_slug(entity.name)}-{i}",
                title=title,
                body=" ".join(body_words),
                language=language,
            )
        )
    return pages


def _entity_title(
    rng: random.Random, entity: SyntheticEntity, spec: TypeSpec, is_homepage: bool
) -> str:
    alias_part = f" ({entity.alias})" if entity.alias is not None else ""
    if is_homepage:
        return f"{entity.name}{alias_part} - Official Website"
    suffixes = ("Visitor Guide", "Information", "Overview", "Directory Entry")
    return f"{entity.name}{alias_part} | {suffixes[rng.randrange(len(suffixes))]}"


def _city_tokens(entity: SyntheticEntity) -> list[str]:
    if entity.city is None:
        return []
    tokens = entity.city.name.split()
    state = entity.city.container
    if state is not None:
        tokens.extend(state.name.split())
    return tokens


def sense_pages(entity: SyntheticEntity, seed: int) -> list[WebPage]:
    """Pages about the *other* meaning of an ambiguous entity's name."""
    sense = entity.alternate_sense
    if sense is None:
        return []
    rng = rng_for(seed, "sense-pages", entity.uid)
    if sense.kind == "type":
        other = type_spec(sense.topic)
        markers: Sequence[str] = vocab.TYPE_MARKERS[other.key]
        category_pool: Sequence[str] = vocab.CATEGORY_MARKERS[other.category]
        topic_word = other.type_word
    else:
        markers = vocab.NOISE_TOPICS[sense.topic]
        category_pool = ()
        topic_word = sense.topic.replace("_", " ").split()[0]
    name_tokens = entity.name.split()
    pages = []
    for i in range(sense.page_count):
        body_words = _word_stream(
            rng,
            pools=[
                (markers, 0.44),
                (category_pool, 0.12 if category_pool else 0.0),
                (vocab.GENERIC_WEB, 0.30),
                (name_tokens, 0.14),
            ],
            length=rng.randint(38, 64),
        )
        _inject(rng, body_words, name_tokens)
        pages.append(
            WebPage(
                url=f"https://web.example/{_slug(entity.name)}-sense-{i}",
                title=f"{entity.name} | {topic_word.title()}",
                body=" ".join(body_words),
            )
        )
    return pages


def concept_pages(spec: TypeSpec, seed: int, count: int = 8) -> list[WebPage]:
    """Pages about the type word itself ("Museum", "Singer", ...)."""
    rng = rng_for(seed, "concept-pages", spec.key)
    titles = (
        spec.type_word.title(),
        f"What is a {spec.type_word}?",
        f"{spec.type_word.title()} - Definition and Overview",
        f"History of the {spec.type_word}",
    )
    pages = []
    for i in range(count):
        body_words = _word_stream(
            rng,
            pools=[
                (vocab.TYPE_MARKERS[spec.key], 0.48),
                (vocab.CATEGORY_MARKERS[spec.category], 0.12),
                (vocab.GENERIC_WEB, 0.28),
                ([spec.type_word], 0.12),
            ],
            length=rng.randint(40, 60),
        )
        pages.append(
            WebPage(
                url=f"https://web.example/concept-{spec.key}-{i}",
                title=titles[i % len(titles)],
                body=" ".join(body_words),
            )
        )
    return pages


def review_word_subset(spec: TypeSpec, seed: int, size: int = 14) -> list[str]:
    """The review vocabulary a type's guide pages actually use.

    Review language clusters by domain on the real web ("friendly staff"
    for hotels, "worth a visit" for attractions); each type gets a stable
    seeded subset of the review pool, so a generic review phrase retrieves
    guides of a *consistent* small set of types rather than all of them.
    """
    rng = rng_for(seed, "review-subset", spec.key)
    pool = list(vocab.REVIEW_WORDS)
    rng.shuffle(pool)
    return sorted(pool[:size])


def guide_pages(
    spec: TypeSpec, seed: int, city_names: Sequence[str], count: int = 25
) -> list[WebPage]:
    """Review/listicle pages ("best seafood dining in Paris - reviews").

    Deliberately weak type signal: one to three markers per snippet window,
    padded with the type's review-word subset.  A margin classifier
    abstains on such evidence; an arg-max posterior classifier does not --
    that asymmetry is the Table 1 SVM-versus-Bayes precision contrast.
    """
    rng = rng_for(seed, "guide-pages", spec.key)
    pages = []
    markers = vocab.TYPE_MARKERS[spec.key]
    reviews = review_word_subset(spec, seed)
    for i in range(count):
        marker = markers[rng.randrange(len(markers))]
        city = city_names[rng.randrange(len(city_names))] if city_names else "town"
        title = f"Best {marker} {spec.type_word}s in {city} - Reviews"
        body_words = _word_stream(
            rng,
            pools=[
                (markers, 0.12),
                (reviews, 0.40),
                (vocab.GENERIC_WEB, 0.36),
                (city.split(), 0.06),
                ([spec.type_word], 0.06),
            ],
            length=rng.randint(42, 64),
        )
        pages.append(
            WebPage(
                url=f"https://web.example/guide-{spec.key}-{i}",
                title=title,
                body=" ".join(body_words),
            )
        )
    return pages


def noise_pages(seed: int, count: int) -> list[WebPage]:
    """Background pages drawn from the off-topic pools."""
    rng = rng_for(seed, "noise-pages")
    topics = sorted(vocab.NOISE_TOPICS)
    pages = []
    for i in range(count):
        topic = topics[rng.randrange(len(topics))]
        markers = vocab.NOISE_TOPICS[topic]
        title_words = _word_stream(
            rng, pools=[(markers, 0.7), (vocab.GENERIC_WEB, 0.3)], length=4
        )
        body_words = _word_stream(
            rng,
            pools=[
                (markers, 0.42),
                (vocab.GENERIC_WEB, 0.42),
                (_ALL_TYPE_MARKERS, 0.10),
                (vocab.REVIEW_WORDS, 0.06),
            ],
            length=rng.randint(36, 60),
        )
        pages.append(
            WebPage(
                url=f"https://web.example/noise-{topic}-{i}",
                title=" ".join(word.title() for word in title_words),
                body=" ".join(body_words),
            )
        )
    return pages
