"""Deterministic random-number plumbing.

Every generator in :mod:`repro.synth` draws from a ``random.Random`` seeded
through :func:`derive`, which hashes a parent seed with a tuple of string
keys.  Sub-generators therefore stay stable when unrelated parts of the
world change -- adding a noise-page pool does not reshuffle entity names.
"""

from __future__ import annotations

import hashlib
import random


def derive(seed: int, *keys: str | int) -> int:
    """Derive a child seed from *seed* and a path of *keys*.

    Stable across processes and Python versions (uses SHA-256, not
    ``hash()``).

    >>> derive(13, "entities", "restaurant") == derive(13, "entities", "restaurant")
    True
    >>> derive(13, "a") != derive(13, "b")
    True
    """
    digest = hashlib.sha256()
    digest.update(str(seed).encode())
    for key in keys:
        digest.update(b"/")
        digest.update(str(key).encode())
    return int.from_bytes(digest.digest()[:8], "big")


def rng_for(seed: int, *keys: str | int) -> random.Random:
    """A ``random.Random`` seeded by :func:`derive`."""
    return random.Random(derive(seed, *keys))


def weighted_choice(rng: random.Random, weights: dict[str, float]) -> str:
    """Pick a key of *weights* proportionally to its value."""
    if not weights:
        raise ValueError("weights must be non-empty")
    total = sum(weights.values())
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    point = rng.random() * total
    accumulated = 0.0
    for key in sorted(weights):
        accumulated += weights[key]
        if point <= accumulated:
            return key
    return max(sorted(weights), key=lambda k: weights[k])
