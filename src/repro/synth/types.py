"""Specifications of the twelve entity types under evaluation (Section 6).

Each :class:`TypeSpec` bundles everything the generators need to reproduce a
type's behaviour in the paper's tables:

* ``kb_entities`` scales the classifier corpora of Table 2 (Simpsons
  episodes and Mines are the small ones, as in the paper);
* ``table_references`` is the paper's exact gold count for the 40-table
  corpus ("In total we have 287 references to restaurants, 240 to museums,
  160 to theatres, 67 to hotels, 109 to schools, 150 to universities, 30 to
  mines, 50 to actors, 120 to singers, 100 to scientists, 24 to films and 34
  to episodes of the Simpson's");
* ``type_word_in_name_rate`` shapes the TypeInName baseline (61 % of museum
  names contain "museum", no person is called "actor");
* ``type_word_in_page_rate`` shapes TypeInSnippet (university pages say
  "university" even though tables call the school by its acronym);
* ``alias_in_table_rate`` makes table cells use a short alias (university
  acronyms), which is why TIN scores zero on universities in the paper;
* ``ambiguity_rate`` is the fraction of table entities whose name has an
  alternate, out-of-type web sense; the paper chose people types precisely
  because "their names tend to be highly ambiguous".
"""

from __future__ import annotations

from dataclasses import dataclass

POI = "poi"
PEOPLE = "people"
CINEMA = "cinema"

CATEGORIES = (POI, PEOPLE, CINEMA)


@dataclass(frozen=True)
class TypeSpec:
    """All generator knobs for one entity type."""

    key: str
    display: str
    type_word: str
    category: str
    root_category: str
    spatial: bool
    kb_entities: int
    table_references: int
    type_word_in_name_rate: float
    type_word_in_page_rate: float
    ambiguity_rate: float
    alias_in_table_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ValueError(f"unknown category {self.category!r}")
        for rate_name in (
            "type_word_in_name_rate",
            "type_word_in_page_rate",
            "ambiguity_rate",
            "alias_in_table_rate",
        ):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{rate_name} must be in [0, 1], got {rate}")


TYPE_SPECS: tuple[TypeSpec, ...] = (
    TypeSpec(
        key="restaurant", display="Restaurants", type_word="restaurant",
        category=POI, root_category="Restaurants", spatial=True,
        kb_entities=240, table_references=287,
        type_word_in_name_rate=0.10, type_word_in_page_rate=0.36,
        ambiguity_rate=0.10,
    ),
    TypeSpec(
        key="museum", display="Museums", type_word="museum",
        category=POI, root_category="Museums", spatial=True,
        kb_entities=240, table_references=240,
        type_word_in_name_rate=0.61, type_word_in_page_rate=0.30,
        ambiguity_rate=0.06,
    ),
    TypeSpec(
        key="theatre", display="Theatres", type_word="theatre",
        category=POI, root_category="Theatres", spatial=True,
        kb_entities=220, table_references=160,
        type_word_in_name_rate=0.18, type_word_in_page_rate=0.38,
        ambiguity_rate=0.08,
    ),
    TypeSpec(
        key="hotel", display="Hotels", type_word="hotel",
        category=POI, root_category="Hotels", spatial=True,
        kb_entities=240, table_references=67,
        type_word_in_name_rate=0.07, type_word_in_page_rate=0.58,
        ambiguity_rate=0.10,
    ),
    TypeSpec(
        key="school", display="Schools", type_word="school",
        category=POI, root_category="Schools", spatial=True,
        kb_entities=240, table_references=109,
        type_word_in_name_rate=0.56, type_word_in_page_rate=0.65,
        ambiguity_rate=0.05,
    ),
    TypeSpec(
        key="university", display="Universities", type_word="university",
        category=POI, root_category="Universities", spatial=True,
        kb_entities=240, table_references=150,
        type_word_in_name_rate=0.55, type_word_in_page_rate=0.72,
        ambiguity_rate=0.05, alias_in_table_rate=1.0,
    ),
    TypeSpec(
        key="mine", display="Mines", type_word="mine",
        category=POI, root_category="Mines", spatial=False,
        kb_entities=90, table_references=30,
        type_word_in_name_rate=0.0, type_word_in_page_rate=0.35,
        ambiguity_rate=0.05,
    ),
    TypeSpec(
        key="actor", display="Actors", type_word="actor",
        category=PEOPLE, root_category="Actors", spatial=False,
        kb_entities=240, table_references=50,
        type_word_in_name_rate=0.0, type_word_in_page_rate=0.35,
        ambiguity_rate=0.30,
    ),
    TypeSpec(
        key="singer", display="Singers", type_word="singer",
        category=PEOPLE, root_category="Singers", spatial=False,
        kb_entities=240, table_references=120,
        type_word_in_name_rate=0.0, type_word_in_page_rate=0.12,
        ambiguity_rate=0.38,
    ),
    TypeSpec(
        key="scientist", display="Scientists", type_word="scientist",
        category=PEOPLE, root_category="Scientists", spatial=False,
        kb_entities=240, table_references=100,
        type_word_in_name_rate=0.0, type_word_in_page_rate=0.12,
        ambiguity_rate=0.32,
    ),
    TypeSpec(
        key="film", display="Films", type_word="film",
        category=CINEMA, root_category="Films", spatial=False,
        kb_entities=240, table_references=24,
        type_word_in_name_rate=0.0, type_word_in_page_rate=0.15,
        ambiguity_rate=0.45,
    ),
    TypeSpec(
        key="simpsons_episode", display="Simpson's episodes", type_word="episode",
        category=CINEMA, root_category="Simpsons episodes", spatial=False,
        kb_entities=40, table_references=34,
        type_word_in_name_rate=0.0, type_word_in_page_rate=0.10,
        ambiguity_rate=0.18,
    ),
)

_BY_KEY = {spec.key: spec for spec in TYPE_SPECS}


def type_spec(key: str) -> TypeSpec:
    """The :class:`TypeSpec` for *key*; raises ``KeyError`` when unknown.

    >>> type_spec("museum").display
    'Museums'
    """
    if key not in _BY_KEY:
        raise KeyError(f"unknown type key: {key!r}")
    return _BY_KEY[key]


def type_keys() -> list[str]:
    """All type keys, in the paper's presentation order."""
    return [spec.key for spec in TYPE_SPECS]


def types_in_category(category: str) -> list[TypeSpec]:
    """Specs belonging to one of the three groups of Table 1."""
    if category not in CATEGORIES:
        raise ValueError(f"unknown category {category!r}")
    return [spec for spec in TYPE_SPECS if spec.category == category]
