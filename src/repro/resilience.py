"""Failure handling for the simulated search boundary.

The paper treats the search engine as a flaky remote dependency whose
latency dominates running time (Sections 5.2 and 6.4).  The repo has long
been able to *inject* failures (``SearchEngine.available``,
``failure_rate``) but, until this module, nothing ever recovered: a dropped
query silently lost its cell.  Three building blocks close that gap:

:class:`RetryPolicy`
    Bounded re-attempts with exponential backoff.  Backoff is *charged to
    the virtual clock* (via :meth:`~repro.clock.VirtualClock.wait`, so it
    costs virtual seconds without inflating the remote-call count) and its
    jitter is a pure function of ``(seed, query, attempt)`` -- the schedule
    is therefore identical no matter which execution tier replays it.

:class:`CircuitBreaker`
    Per-engine consecutive-failure breaker.  After ``threshold`` straight
    :class:`~repro.web.search.SearchEngineUnavailable` outcomes it opens
    and fails fast (no clock charge); once ``cooldown_seconds`` of virtual
    time pass it lets a half-open probe through, closing again on success.

:class:`FaultPlan`
    A deterministic fault injector installed on
    :class:`~repro.web.search.SearchEngine` (``engine.fault_plan = plan``).
    It scripts failures as a function of the query text, its occurrence
    index and the global request index -- no RNG stream to perturb -- so
    chaos tests can assert exact recovery behaviour.

All decisions route through :func:`deterministic_unit`, a keyed hash onto
``[0, 1)``: resilience never consumes entropy from the engine's RNG, which
keeps zero-fault runs byte-identical to the pre-resilience pipeline.
"""

from __future__ import annotations

import hashlib
import os
import signal
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.clock import VirtualClock


def deterministic_unit(seed: int, *parts: object) -> float:
    """Hash ``(seed, *parts)`` onto ``[0, 1)``, stable across processes.

    Used for failure-rate draws and backoff jitter so that the *same*
    logical event (a given query's n-th issue, a given retry attempt) gets
    the same draw in the per-cell, batched, multi-process and service
    tiers, regardless of the order in which requests happen to be issued.
    """
    key = "\x1f".join(str(part) for part in (seed, *parts))
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``retries`` is the number of *extra* attempts after the first failure;
    ``retries == 0`` reproduces the historical fail-on-first-drop
    behaviour exactly.  ``backoff_for`` returns the virtual seconds to wait
    before retry number ``attempt`` (1-based): ``backoff * multiplier **
    (attempt - 1)``, scaled by ``1 +/- jitter_fraction`` where the sign and
    magnitude come from :func:`deterministic_unit` keyed on the query --
    never from a shared RNG, so concurrent tiers charge identical totals.
    """

    retries: int = 0
    backoff_seconds: float = 0.2
    multiplier: float = 2.0
    jitter_fraction: float = 0.1
    seed: int = 13

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_seconds < 0:
            raise ValueError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError(
                f"jitter_fraction must be in [0, 1), got {self.jitter_fraction}"
            )

    def backoff_for(self, key: str, attempt: int) -> float:
        """Virtual seconds to wait before retry ``attempt`` of ``key``."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        base = self.backoff_seconds * self.multiplier ** (attempt - 1)
        unit = deterministic_unit(self.seed, "backoff", key, attempt)
        return base * (1.0 + self.jitter_fraction * (2.0 * unit - 1.0))


class CircuitBreaker:
    """Consecutive-failure breaker over a :class:`VirtualClock`.

    States: *closed* (requests flow), *open* (fail fast without charging
    the clock) and an implicit *half-open* probe: once the virtual clock
    has advanced ``cooldown_seconds`` past the moment the breaker opened,
    :meth:`allow` admits requests again; the next recorded success closes
    the breaker, the next failure re-opens it for a fresh cooldown.

    A ``threshold`` of 0 disables the breaker entirely -- :meth:`allow`
    is always true and no state is kept, preserving seed behaviour.
    """

    def __init__(
        self, threshold: int, cooldown_seconds: float, clock: "VirtualClock"
    ) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        if cooldown_seconds < 0:
            raise ValueError(
                f"cooldown_seconds must be >= 0, got {cooldown_seconds}"
            )
        self.threshold = threshold
        self.cooldown_seconds = cooldown_seconds
        self.clock = clock
        self.consecutive_failures = 0
        self.opens = 0
        self.closes = 0
        self.probes = 0
        self._open = False
        self._opened_at = 0.0

    @property
    def is_open(self) -> bool:
        return self._open

    def allow(self) -> bool:
        """Whether a request may be issued right now.

        While open, returns ``False`` until the cooldown has elapsed on
        the virtual clock; the first call after that counts as the
        half-open probe and is admitted.
        """
        if self.threshold == 0 or not self._open:
            return True
        if self.seconds_until_probe() > 0:
            return False
        self.probes += 1
        return True

    def seconds_until_probe(self) -> float:
        """Virtual seconds left before a half-open probe is admitted."""
        if not self._open:
            return 0.0
        remaining = self._opened_at + self.cooldown_seconds
        return max(0.0, remaining - self.clock.elapsed_seconds)

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self._open:
            self._open = False
            self.closes += 1

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.threshold == 0:
            return
        if not self._open and self.consecutive_failures >= self.threshold:
            self._open = True
            self.opens += 1
            self._opened_at = self.clock.elapsed_seconds
        elif self._open:
            # A failed half-open probe re-arms the cooldown.
            self._opened_at = self.clock.elapsed_seconds


@dataclass(frozen=True)
class FaultPlan:
    """Scripted, deterministic faults for :class:`SearchEngine`.

    The plan is stateless and picklable: the engine supplies the query's
    occurrence index (how many times *it* has issued that query text) and
    the global request index (its ``query_count`` at issue time), and the
    plan answers purely from those.  Forked pool workers therefore replay
    the same faults their parent would have seen for the same workload.

    - ``fail_first`` drops the first K issues of a given query text.
    - ``fail_every_nth`` drops every n-th request overall (1-based:
      requests n, 2n, ... fail).
    - ``outage_windows`` are half-open ``[start, stop)`` ranges of request
      indices during which the engine behaves as fully unavailable.
    - ``latency_spikes`` maps a request index to *extra* virtual seconds,
      applied via :meth:`VirtualClock.wait` on top of the normal charge.
    - ``kill_on_query`` SIGKILLs the serving process when that exact query
      is issued -- the chaos hook for worker-crash tests.  With
      ``kill_once_token`` set to a path, the kill fires at most once
      across all processes (the token file is created atomically first);
      without it, the query is a poison pill that crashes every worker
      that attempts it.
    """

    fail_first: Mapping[str, int] = field(default_factory=dict)
    fail_every_nth: int = 0
    outage_windows: Tuple[Tuple[int, int], ...] = ()
    latency_spikes: Mapping[int, float] = field(default_factory=dict)
    kill_on_query: Optional[str] = None
    kill_once_token: Optional[str] = None

    def __post_init__(self) -> None:
        if self.fail_every_nth < 0:
            raise ValueError(
                f"fail_every_nth must be >= 0, got {self.fail_every_nth}"
            )
        for start, stop in self.outage_windows:
            if start < 0 or stop < start:
                raise ValueError(
                    f"invalid outage window [{start}, {stop})"
                )

    def should_fail(self, query: str, occurrence: int, request_index: int) -> bool:
        """Whether the request at ``request_index`` for ``query`` drops."""
        if occurrence < self.fail_first.get(query, 0):
            return True
        if self.fail_every_nth and (request_index + 1) % self.fail_every_nth == 0:
            return True
        for start, stop in self.outage_windows:
            if start <= request_index < stop:
                return True
        return False

    def extra_latency(self, request_index: int) -> float:
        """Extra virtual seconds injected into this request, if any."""
        return float(self.latency_spikes.get(request_index, 0.0))

    def maybe_kill(self, query: str) -> None:
        """SIGKILL the current process if this query is a kill trigger."""
        if self.kill_on_query is None or query != self.kill_on_query:
            return
        if self.kill_once_token is not None:
            try:
                fd = os.open(
                    self.kill_once_token,
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except FileExistsError:
                return
            os.close(fd)
        os.kill(os.getpid(), signal.SIGKILL)
