"""Structured JSON logging with consistent event names and trace ids.

Every log line is a single JSON object::

    {"event": "cache.load_failed", "level": "warning",
     "logger": "repro.persistence", "trace_id": "9f2c...", "path": "..."}

The logger is a thin layer over stdlib ``logging`` — records still flow
through whatever handlers the host application (or pytest's ``caplog``)
installed, so adopting structured events does not break existing capture.
The ``trace_id`` field is filled automatically from the active tracing
context (:func:`repro.observability.tracing.current_trace_id`) and is
omitted when no trace is active, keeping untraced runs byte-stable.

Event names are dotted ``<area>.<what_happened>`` strings, lower case,
past tense for outcomes (``cache.load_failed``, ``pool.worker_requeued``)
— the same taxonomy as span names, so a grep for ``cache.`` finds both
the spans and the log events of that subsystem.
"""

from __future__ import annotations

import json
import logging
from typing import Any, Dict

from repro.observability import tracing

__all__ = ["StructuredLogger", "get_logger"]


class StructuredLogger:
    """Wraps a stdlib logger; every call emits one JSON event line."""

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    @property
    def stdlib(self) -> logging.Logger:
        """The underlying stdlib logger (for level/handler configuration)."""
        return self._logger

    def _emit(self, level: int, event: str, fields: Dict[str, Any]) -> None:
        if not self._logger.isEnabledFor(level):
            return
        payload: Dict[str, Any] = {
            "event": event,
            "level": logging.getLevelName(level).lower(),
            "logger": self._logger.name,
        }
        trace_id = tracing.current_trace_id()
        if trace_id is not None:
            payload["trace_id"] = trace_id
        payload.update(fields)
        self._logger.log(level, json.dumps(payload, sort_keys=True, default=str))

    def debug(self, event: str, **fields: Any) -> None:
        self._emit(logging.DEBUG, event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._emit(logging.INFO, event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._emit(logging.WARNING, event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._emit(logging.ERROR, event, fields)


def get_logger(name: str) -> StructuredLogger:
    """Structured logger for *name* (usually ``__name__``)."""
    return StructuredLogger(logging.getLogger(name))
