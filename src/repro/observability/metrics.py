"""Process-wide metrics registry: counters, gauges, latency histograms.

The registry mirrors the accounting discipline of
``RunDiagnostics.combined``: every metric type defines an *associative and
commutative* merge, so pool workers can ship their registries back to the
parent in any order (and any grouping) and the fold lands on the same
totals —

* counters merge by summation,
* gauges merge by maximum (a high-water mark: peak RSS, peak queue depth),
* histograms merge by element-wise bucket summation (the two sides must
  share the same bucket boundaries; a mismatch is a programming error and
  raises).

``render_prometheus()`` produces text exposition in the Prometheus
format (``# TYPE`` headers, ``_bucket{le="..."}`` cumulative histogram
series, ``_sum``/``_count``), which the daemon returns for a ``metrics``
service request.  Metric names use dotted stage names internally
(``service.requests``) and are sanitised to ``repro_service_requests``
style on exposition.
"""

from __future__ import annotations

import re
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "reset_registry",
]

# Upper bucket bounds in seconds; +Inf is implicit.  Spread to cover both
# real socket round-trips (milliseconds) and virtual-latency-dominated
# corpus passes (tens of seconds).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _expo_name(name: str) -> str:
    sanitized = _NAME_RE.sub("_", name)
    if not sanitized.startswith("repro_"):
        sanitized = "repro_" + sanitized
    return sanitized


class Histogram:
    """Fixed-bucket histogram with cumulative Prometheus exposition."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.sum += value
        self.count += 1

    def merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ValueError(
                "cannot merge histograms with different bucket bounds: "
                f"{self.buckets} vs {other.buckets}"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.sum += other.sum
        self.count += other.count

    def to_dict(self) -> Dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Histogram":
        histogram = cls(payload["buckets"])
        counts = [int(n) for n in payload["counts"]]
        if len(counts) != len(histogram.counts):
            raise ValueError("histogram payload counts do not match buckets")
        histogram.counts = counts
        histogram.sum = float(payload["sum"])
        histogram.count = int(payload["count"])
        return histogram


class MetricsRegistry:
    """Thread-safe registry of named counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- recording ----------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {name!r} cannot decrease by {amount}")
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = Histogram(buckets)
                self._histograms[name] = histogram
            histogram.observe(value)

    # -- reading ------------------------------------------------------

    def counter_value(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def gauge_value(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def histogram_value(self, name: str) -> Optional[Histogram]:
        with self._lock:
            return self._histograms.get(name)

    # -- merge contract ----------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other* into this registry (sum / max / bucket-sum)."""
        with other._lock:
            counters = dict(other._counters)
            gauges = dict(other._gauges)
            histograms = {
                name: Histogram.from_dict(h.to_dict())
                for name, h in other._histograms.items()
            }
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0.0) + value
            for name, value in gauges.items():
                current = self._gauges.get(name)
                self._gauges[name] = value if current is None else max(current, value)
            for name, histogram in histograms.items():
                mine = self._histograms.get(name)
                if mine is None:
                    self._histograms[name] = histogram
                else:
                    mine.merge(histogram)

    @classmethod
    def merged(cls, parts: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        registry = cls()
        for part in parts:
            registry.merge(part)
        return registry

    # -- serialisation (pool ship-home, wire payloads) ----------------

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: h.to_dict() for name, h in self._histograms.items()
                },
            }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MetricsRegistry":
        registry = cls()
        registry._counters = {
            str(k): float(v) for k, v in payload.get("counters", {}).items()
        }
        registry._gauges = {
            str(k): float(v) for k, v in payload.get("gauges", {}).items()
        }
        registry._histograms = {
            str(k): Histogram.from_dict(v)
            for k, v in payload.get("histograms", {}).items()
        }
        return registry

    # -- exposition ---------------------------------------------------

    def render_prometheus(self) -> str:
        """Prometheus-style text exposition of every metric."""
        lines: List[str] = []
        with self._lock:
            for name in sorted(self._counters):
                expo = _expo_name(name)
                if not expo.endswith("_total"):
                    expo += "_total"
                lines.append(f"# TYPE {expo} counter")
                lines.append(f"{expo} {_format_value(self._counters[name])}")
            for name in sorted(self._gauges):
                expo = _expo_name(name)
                lines.append(f"# TYPE {expo} gauge")
                lines.append(f"{expo} {_format_value(self._gauges[name])}")
            for name in sorted(self._histograms):
                histogram = self._histograms[name]
                expo = _expo_name(name)
                lines.append(f"# TYPE {expo} histogram")
                cumulative = 0
                for bound, count in zip(histogram.buckets, histogram.counts):
                    cumulative += count
                    lines.append(
                        f'{expo}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
                    )
                cumulative += histogram.counts[-1]
                lines.append(f'{expo}_bucket{{le="+Inf"}} {cumulative}')
                lines.append(f"{expo}_sum {_format_value(histogram.sum)}")
                lines.append(f"{expo}_count {histogram.count}")
        return "\n".join(lines) + "\n" if lines else ""

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry."""
    return _registry


def reset_registry() -> None:
    """Clear the process-wide registry (test helper)."""
    _registry.reset()
