"""End-to-end observability: staged spans, metrics, structured logging.

The package has three members, each usable on its own:

``repro.observability.tracing``
    Lightweight spans (monotonic wall time plus :class:`~repro.clock.
    VirtualClock` virtual time, tags, parent links) recorded into a bounded
    in-process :class:`~repro.observability.tracing.TraceBuffer` and
    exportable as JSONL for offline critical-path analysis.  Tracing is
    *disabled by default* and the disabled path is a single module-level
    boolean check returning a shared no-op span — cheap enough that the
    benchmark suite asserts <= 2% overhead with tracing off.

``repro.observability.metrics``
    A process-wide registry of counters, gauges and fixed-bucket latency
    histograms with an associative ``merge()`` contract, so pool workers
    ship their registries back to the parent exactly like
    ``RunDiagnostics.combined`` folds worker diagnostics.  The registry
    renders Prometheus-style text exposition for the daemon's ``metrics``
    request.

``repro.observability.log``
    One structured JSON logger (single-line JSON events with consistent
    event names and ``trace_id`` fields) layered on stdlib ``logging`` so
    existing handlers and test capture keep working.

Trace identifiers are minted per CLI run / per service request and carried
through the wire protocol, the admission batcher and pool task messages;
see ``docs/architecture.md`` ("Observability") for the span taxonomy.
"""

from __future__ import annotations

from repro.observability import log, metrics, tracing
from repro.observability.log import get_logger
from repro.observability.metrics import MetricsRegistry, get_registry
from repro.observability.tracing import (
    TraceBuffer,
    current_trace_id,
    disable_tracing,
    enable_tracing,
    mint_trace_id,
    set_trace_id,
    span,
    tracing_enabled,
)

__all__ = [
    "MetricsRegistry",
    "TraceBuffer",
    "current_trace_id",
    "disable_tracing",
    "enable_tracing",
    "get_logger",
    "get_registry",
    "log",
    "metrics",
    "mint_trace_id",
    "set_trace_id",
    "span",
    "tracing",
    "tracing_enabled",
]
