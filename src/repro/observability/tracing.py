"""Lightweight staged spans with a bounded in-process trace buffer.

Spans measure monotonic wall time (``time.perf_counter``) and — when a
:class:`~repro.clock.VirtualClock` is registered via :func:`set_clock` —
the virtual seconds charged while the span was open, so latency-dominated
stages (``search.search_many``) report the same cost model as the paper's
Section 6.4 accounting.

Tracing is disabled by default.  The disabled path is::

    def span(name, **tags):
        if not _enabled:
            return _NOOP_SPAN
        ...

one module-level boolean check plus a shared no-op context manager, which
the benchmark suite holds to <= 2% overhead over the untraced baseline.
Instrumentation therefore never perturbs byte-identical parity: spans only
*observe* wall/virtual time, they never feed back into annotation
decisions.

Span records are plain dicts appended to a bounded :class:`TraceBuffer`
(a ``deque(maxlen=...)``: old spans fall off rather than growing without
bound inside a resident daemon).  :meth:`TraceBuffer.export_jsonl` writes
one JSON object per line for offline critical-path / flamegraph analysis;
``repro.cli trace`` summarises such a file into a per-stage breakdown.

Trace identifiers
-----------------
A ``trace_id`` is minted per CLI run (:func:`mint_trace_id` from
``repro.cli``) or per service request (``service/client.py``) and carried
through the wire protocol, the admission batcher and pool task messages.
The *current* trace id is thread-local with a process-wide default, so a
daemon connection handler tags its request spans without racing the batch
loop, while a single-threaded CLI run needs only the default.

Cross-process spans (pool workers) are recorded into the worker's own
buffer and shipped home inside the ``("done", ...)`` message; the parent
splices them into its buffer unchanged.  Span ids embed the pid so worker
spans never collide with parent spans.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
import uuid
from collections import deque
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "TraceBuffer",
    "current_trace_id",
    "disable_tracing",
    "enable_tracing",
    "get_buffer",
    "mint_trace_id",
    "record_span",
    "set_clock",
    "set_trace_id",
    "span",
    "tracing_enabled",
]

DEFAULT_BUFFER_SPANS = 65536

_enabled = False
_clock: Any = None
_ids = itertools.count(1)


def mint_trace_id() -> str:
    """Return a fresh, globally unique trace identifier."""
    return uuid.uuid4().hex[:16]


class _TraceState(threading.local):
    """Per-thread span stack and trace-id override."""

    def __init__(self) -> None:
        self.stack: List[str] = []
        self.trace_id: Optional[str] = None


_state = _TraceState()
_default_trace_id: Optional[str] = None


class TraceBuffer:
    """Bounded, thread-safe buffer of finished span records."""

    def __init__(self, max_spans: int = DEFAULT_BUFFER_SPANS) -> None:
        self._spans: deque = deque(maxlen=max_spans)
        self._lock = threading.Lock()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._spans)

    def append(self, record: Dict[str, Any]) -> None:
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self.dropped += 1
            self._spans.append(record)

    def extend(self, records: Iterable[Dict[str, Any]]) -> None:
        with self._lock:
            for record in records:
                if len(self._spans) == self._spans.maxlen:
                    self.dropped += 1
                self._spans.append(record)

    def snapshot(self) -> List[Dict[str, Any]]:
        """Return a copy of the buffered spans (oldest first)."""
        with self._lock:
            return list(self._spans)

    def drain(self) -> List[Dict[str, Any]]:
        """Return and remove every buffered span."""
        with self._lock:
            spans = list(self._spans)
            self._spans.clear()
            return spans

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def export_jsonl(self, path: str) -> int:
        """Write one JSON object per span to *path*; return the count."""
        spans = self.snapshot()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            for record in spans:
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
        return len(spans)


_buffer = TraceBuffer()


def get_buffer() -> TraceBuffer:
    """The process-wide span buffer."""
    return _buffer


def tracing_enabled() -> bool:
    return _enabled


def enable_tracing(
    trace_id: Optional[str] = None, max_spans: Optional[int] = None
) -> str:
    """Turn span recording on; returns the active default trace id."""
    global _enabled, _default_trace_id, _buffer
    if max_spans is not None and max_spans != _buffer._spans.maxlen:
        _buffer = TraceBuffer(max_spans)
    _default_trace_id = trace_id or _default_trace_id or mint_trace_id()
    _enabled = True
    return _default_trace_id


def disable_tracing() -> None:
    global _enabled
    _enabled = False


def set_clock(clock: Any) -> None:
    """Register a VirtualClock so spans also record virtual seconds."""
    global _clock
    _clock = clock


def set_trace_id(trace_id: Optional[str]) -> None:
    """Set this thread's trace id (``None`` restores the process default)."""
    _state.trace_id = trace_id


def current_trace_id() -> Optional[str]:
    return _state.trace_id or _default_trace_id


def _next_span_id() -> str:
    return f"{os.getpid():x}-{next(_ids):x}"


class _NoopSpan:
    """Shared do-nothing span used whenever tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def tag(self, **tags: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    __slots__ = (
        "name",
        "tags",
        "span_id",
        "parent_id",
        "trace_id",
        "_t0",
        "_wall0",
        "_virtual0",
    )

    def __init__(self, name: str, tags: Dict[str, Any]) -> None:
        self.name = name
        self.tags = tags
        self.span_id = _next_span_id()
        self.parent_id: Optional[str] = None
        self.trace_id: Optional[str] = None
        self._t0 = 0.0
        self._wall0 = 0.0
        self._virtual0 = 0.0

    def __enter__(self) -> "_LiveSpan":
        stack = _state.stack
        self.parent_id = stack[-1] if stack else None
        self.trace_id = current_trace_id()
        stack.append(self.span_id)
        self._t0 = time.time()
        if _clock is not None:
            self._virtual0 = _clock.elapsed_seconds
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        wall = time.perf_counter() - self._wall0
        stack = _state.stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        record = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": os.getpid(),
            "t0": self._t0,
            "wall_seconds": wall,
            "status": "error" if exc_type is not None else "ok",
        }
        if _clock is not None:
            record["virtual_seconds"] = _clock.elapsed_seconds - self._virtual0
        if self.tags:
            record["tags"] = self.tags
        _buffer.append(record)
        return False

    def tag(self, **tags: Any) -> None:
        """Attach extra tags after the span has been opened."""
        self.tags.update(tags)


def span(name: str, **tags: Any):
    """Open a span context manager; a shared no-op when tracing is off."""
    if not _enabled:
        return _NOOP_SPAN
    return _LiveSpan(name, tags)


def record_span(
    name: str,
    wall_seconds: float,
    *,
    status: str = "ok",
    trace_id: Optional[str] = None,
    parent_id: Optional[str] = None,
    t0: Optional[float] = None,
    virtual_seconds: Optional[float] = None,
    **tags: Any,
) -> None:
    """Record an already-measured span (e.g. an aborted worker task).

    The crash-tolerant pool uses this from the *parent* side when a worker
    dies mid-task: the worker's own span never closed, so the parent
    synthesises an ``aborted`` span from its dispatch bookkeeping instead
    of leaking an open span.
    """
    if not _enabled:
        return
    record = {
        "name": name,
        "trace_id": trace_id if trace_id is not None else current_trace_id(),
        "span_id": _next_span_id(),
        "parent_id": parent_id,
        "pid": os.getpid(),
        "t0": t0 if t0 is not None else time.time(),
        "wall_seconds": wall_seconds,
        "status": status,
    }
    if virtual_seconds is not None:
        record["virtual_seconds"] = virtual_seconds
    if tags:
        record["tags"] = tags
    _buffer.append(record)


def reset_tracing() -> None:
    """Disable tracing and clear all buffered state (test helper)."""
    global _enabled, _default_trace_id, _clock
    _enabled = False
    _default_trace_id = None
    _clock = None
    _buffer.clear()
    _state.stack = []
    _state.trace_id = None


def summarize(spans: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Aggregate span records into a per-stage breakdown.

    Returns one row per span name, sorted by total wall seconds
    descending: ``{"name", "count", "wall_seconds", "virtual_seconds",
    "mean_seconds", "errors", "aborted"}``.
    """
    stages: Dict[str, Dict[str, Any]] = {}
    for record in spans:
        row = stages.setdefault(
            record["name"],
            {
                "name": record["name"],
                "count": 0,
                "wall_seconds": 0.0,
                "virtual_seconds": 0.0,
                "errors": 0,
                "aborted": 0,
            },
        )
        row["count"] += 1
        row["wall_seconds"] += float(record.get("wall_seconds", 0.0))
        row["virtual_seconds"] += float(record.get("virtual_seconds", 0.0) or 0.0)
        status = record.get("status", "ok")
        if status == "error":
            row["errors"] += 1
        elif status == "aborted":
            row["aborted"] += 1
    rows = sorted(stages.values(), key=lambda r: -r["wall_seconds"])
    for row in rows:
        row["mean_seconds"] = row["wall_seconds"] / row["count"] if row["count"] else 0.0
    return rows
