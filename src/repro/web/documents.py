"""The synthetic web-page model."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WebPage:
    """One page of the synthetic web.

    ``language`` is an ISO-639-1 code; the search engine only surfaces
    English pages, matching the paper's "only results in English are
    considered".
    """

    url: str
    title: str
    body: str
    language: str = "en"

    def __post_init__(self) -> None:
        if not self.url:
            raise ValueError("a web page needs a url")
        if not self.url.startswith(("http://", "https://")):
            raise ValueError(f"url must be http(s), got {self.url!r}")

    @property
    def text(self) -> str:
        """Title and body together, the indexable content."""
        return f"{self.title}\n{self.body}"
