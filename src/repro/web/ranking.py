"""Okapi BM25 ranking over the inverted index (vectorised)."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.web.backends import IndexBackend


@dataclass(frozen=True)
class BM25Parameters:
    """The two free parameters of BM25, at their customary defaults."""

    k1: float = 1.5
    b: float = 0.75

    def __post_init__(self) -> None:
        if self.k1 < 0:
            raise ValueError(f"k1 must be >= 0, got {self.k1}")
        if not 0.0 <= self.b <= 1.0:
            raise ValueError(f"b must be in [0, 1], got {self.b}")

    def as_tuple(self) -> tuple[float, float]:
        """``(k1, b)`` -- the parametrisation's persistable identity.

        Part of the fingerprint that versions the search engine's ranking
        caches on disk: results computed under one (k1, b) are invalid
        under any other, exactly as the in-memory cache-drop hook treats
        them.
        """
        return (self.k1, self.b)


def bm25_norms(
    index: IndexBackend, parameters: BM25Parameters
) -> np.ndarray:
    """Per-document length normalisation ``1 - b + b * len/avg_len``.

    The single definition shared by the dense scorer, the sparse scorer
    and the search engine's per-batch norms cache.
    """
    average_length = index.average_length or 1.0
    return 1.0 - parameters.b + parameters.b * (index.lengths / average_length)


def bm25_score_array(
    index: IndexBackend,
    query_tokens: list[str],
    parameters: BM25Parameters | None = None,
) -> np.ndarray:
    """Dense BM25 score per document (zeros for non-matching documents).

    Uses the standard idf form ``ln(1 + (N - df + 0.5) / (df + 0.5))``,
    which is non-negative for any document frequency.
    """
    parameters = parameters or BM25Parameters()
    n_docs = index.n_documents
    scores = np.zeros(n_docs, dtype=np.float64)
    if n_docs == 0 or not query_tokens:
        return scores
    norms = bm25_norms(index, parameters)
    for token in query_tokens:
        arrays = index.posting_arrays(token)
        if arrays is None:
            continue
        ids, tfs = arrays
        df = ids.shape[0]
        idf = math.log(1.0 + (n_docs - df + 0.5) / (df + 0.5))
        gains = idf * (tfs * (parameters.k1 + 1.0)) / (
            tfs + parameters.k1 * norms[ids]
        )
        np.add.at(scores, ids, gains)
    return scores


def bm25_matched_scores(
    index: IndexBackend,
    query_tokens: list[str],
    parameters: BM25Parameters | None = None,
    norms: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """BM25 over matching documents only: ``(doc_ids, scores)`` arrays.

    Sparse counterpart of :func:`bm25_score_array`: cost is proportional to
    the postings touched, not the corpus size, which is what a batched
    caller issuing hundreds of queries needs.  ``doc_ids`` is ascending;
    ``scores`` accumulates per-token gains in query-token order, the exact
    float-addition order of the dense scorer, so both agree bitwise.
    *norms* lets the caller hoist the per-document length normalisation
    out of a query loop.
    """
    parameters = parameters or BM25Parameters()
    n_docs = index.n_documents
    empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
    if n_docs == 0 or not query_tokens:
        return empty
    if norms is None:
        norms = bm25_norms(index, parameters)
    id_chunks: list[np.ndarray] = []
    gain_chunks: list[np.ndarray] = []
    for token in query_tokens:
        arrays = index.posting_arrays(token)
        if arrays is None:
            continue
        ids, tfs = arrays
        df = ids.shape[0]
        idf = math.log(1.0 + (n_docs - df + 0.5) / (df + 0.5))
        gain_chunks.append(
            idf * (tfs * (parameters.k1 + 1.0)) / (tfs + parameters.k1 * norms[ids])
        )
        id_chunks.append(ids)
    if not id_chunks:
        return empty
    all_ids = np.concatenate(id_chunks)
    all_gains = np.concatenate(gain_chunks)
    matched, inverse = np.unique(all_ids, return_inverse=True)
    # bincount sums weights in array order == token order per document,
    # matching np.add.at accumulation in the dense scorer.
    scores = np.bincount(inverse, weights=all_gains, minlength=matched.shape[0])
    positive = scores > 0.0
    return matched[positive], scores[positive]


def bm25_scores(
    index: IndexBackend,
    query_tokens: list[str],
    parameters: BM25Parameters | None = None,
) -> dict[int, float]:
    """BM25 scores as a doc-id -> score mapping (matching documents only)."""
    array = bm25_score_array(index, query_tokens, parameters)
    matched = np.flatnonzero(array > 0.0)
    return {int(doc_id): float(array[doc_id]) for doc_id in matched}
