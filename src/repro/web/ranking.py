"""Okapi BM25 ranking over the inverted index (vectorised)."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.web.index import InvertedIndex


@dataclass(frozen=True)
class BM25Parameters:
    """The two free parameters of BM25, at their customary defaults."""

    k1: float = 1.5
    b: float = 0.75

    def __post_init__(self) -> None:
        if self.k1 < 0:
            raise ValueError(f"k1 must be >= 0, got {self.k1}")
        if not 0.0 <= self.b <= 1.0:
            raise ValueError(f"b must be in [0, 1], got {self.b}")


def bm25_score_array(
    index: InvertedIndex,
    query_tokens: list[str],
    parameters: BM25Parameters | None = None,
) -> np.ndarray:
    """Dense BM25 score per document (zeros for non-matching documents).

    Uses the standard idf form ``ln(1 + (N - df + 0.5) / (df + 0.5))``,
    which is non-negative for any document frequency.
    """
    parameters = parameters or BM25Parameters()
    n_docs = index.n_documents
    scores = np.zeros(n_docs, dtype=np.float64)
    if n_docs == 0 or not query_tokens:
        return scores
    average_length = index.average_length or 1.0
    norms = 1.0 - parameters.b + parameters.b * (index.lengths / average_length)
    for token in query_tokens:
        arrays = index.posting_arrays(token)
        if arrays is None:
            continue
        ids, tfs = arrays
        df = ids.shape[0]
        idf = math.log(1.0 + (n_docs - df + 0.5) / (df + 0.5))
        gains = idf * (tfs * (parameters.k1 + 1.0)) / (
            tfs + parameters.k1 * norms[ids]
        )
        np.add.at(scores, ids, gains)
    return scores


def bm25_scores(
    index: InvertedIndex,
    query_tokens: list[str],
    parameters: BM25Parameters | None = None,
) -> dict[int, float]:
    """BM25 scores as a doc-id -> score mapping (matching documents only)."""
    array = bm25_score_array(index, query_tokens, parameters)
    matched = np.flatnonzero(array > 0.0)
    return {int(doc_id): float(array[doc_id]) for doc_id in matched}
