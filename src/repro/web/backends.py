"""Pluggable index storage backends.

The retrieval layer (BM25 in :mod:`repro.web.ranking`, the engine in
:mod:`repro.web.search`) needs a small surface from its index: postings
arrays per token, document lengths, the page store, corpus statistics and
a content digest.  :class:`IndexBackend` names that surface, and two
implementations provide it:

* :class:`repro.web.index.InvertedIndex` -- the mutable in-memory
  backend.  Pages can be added at any time; postings live in Python
  lists with lazily-frozen per-token numpy views.  This is the right
  backend while a corpus is being built or for single-process runs.

* :class:`FrozenMmapIndex` -- a read-only backend over a compacted
  on-disk artifact.  :func:`build_index_artifact` flattens the postings
  into CSR-style arrays (sorted token table, concatenated doc-id/tf
  arrays with per-token offsets, document lengths, a page blob with
  per-field offsets) and writes them through
  :func:`repro.persistence.save_array_artifact`.  N processes on one
  host then open the artifact via ``np.memmap`` and the OS page cache
  holds exactly one physical copy of the postings: ``posting_arrays``
  returns zero-copy views, nothing is pickled per worker, and attach is
  near-instant (the token lookup table is built lazily on first query).

Sharing semantics
-----------------
``FrozenMmapIndex`` pickles as its artifact *path* (``__reduce__``), so
``spawn``-mode pool workers receive a few hundred bytes and re-open the
mapping instead of deserialising the whole postings store, while
``fork``-mode workers inherit the mapping directly.  Either way every
process reads the same physical pages.

Parity contract
---------------
The artifact preserves posting order (append order per token, i.e.
ascending doc id) and dtypes (``int64`` ids, ``float64`` tfs/lengths)
exactly as the in-memory backend materialises them, and stores the mean
document length as computed by the source index, so BM25 scores -- and
therefore rankings, annotations and diagnostics -- are byte-identical
across backends.  ``tests/test_index_backends.py`` pins this.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.observability.log import get_logger
from repro.observability.tracing import span
from repro.persistence import (
    ArtifactError,
    open_array_artifact,
    save_array_artifact,
)
from repro.web.documents import WebPage
from repro.web.index import InvertedIndex, Posting

logger = get_logger(__name__)

INDEX_ARTIFACT_KIND = "inverted-index"
"""``kind`` guard of index artifacts in the persistence container."""

INDEX_LAYOUT_VERSION = 1
"""Bump when the index section layout changes; old artifacts are rejected."""


class FrozenIndexError(RuntimeError):
    """A mutation was attempted on a frozen (read-only) index backend."""


@runtime_checkable
class IndexBackend(Protocol):
    """What the retrieval layer requires from an index implementation.

    Satisfied structurally by :class:`repro.web.index.InvertedIndex`
    (mutable, in-memory) and :class:`FrozenMmapIndex` (read-only,
    mmap-backed).  ``backend_name`` identifies the implementation in
    stats/CLI surfaces ("memory" / "mmap").
    """

    backend_name: str
    title_boost: float

    @property
    def n_documents(self) -> int: ...

    @property
    def average_length(self) -> float: ...

    @property
    def lengths(self) -> np.ndarray: ...

    def document_length(self, doc_id: int) -> float: ...

    def document_frequency(self, token: str) -> int: ...

    def posting_arrays(
        self, token: str
    ) -> tuple[np.ndarray, np.ndarray] | None: ...

    def postings(self, token: str) -> list[Posting]: ...

    def page(self, doc_id: int) -> WebPage: ...

    def vocabulary_size(self) -> int: ...

    def tokens(self) -> Iterator[str]: ...

    def raw_postings(self, token: str) -> Sequence[tuple[int, float]]: ...

    def content_digest(self) -> str: ...

    def fingerprint_digest(self) -> str: ...


def build_index_artifact(
    index: IndexBackend,
    path,
    lock_timeout: float | None = None,
) -> Path:
    """Compact *index* into a frozen artifact at *path*.

    Postings are flattened CSR-style: tokens sorted lexicographically
    into one utf-8 blob with offsets, each token's ``(doc_id, tf)``
    entries concatenated in their original append order into two flat
    arrays with a shared per-token offset table.  Pages go into a second
    blob with four offsets per page (url, title, body, language).  The
    write is atomic and advisory-locked (see
    :func:`repro.persistence.save_array_artifact`).
    """
    tokens = list(index.tokens())
    token_blob = bytearray()
    token_offsets = np.zeros(len(tokens) + 1, dtype=np.int64)
    posting_offsets = np.zeros(len(tokens) + 1, dtype=np.int64)
    flat_ids: list[int] = []
    flat_tfs: list[float] = []
    for row, token in enumerate(tokens):
        encoded = token.encode("utf-8")
        token_blob += encoded
        token_offsets[row + 1] = token_offsets[row] + len(encoded)
        entries = index.raw_postings(token)
        posting_offsets[row + 1] = posting_offsets[row] + len(entries)
        for doc_id, tf in entries:
            flat_ids.append(doc_id)
            flat_tfs.append(tf)

    page_blob = bytearray()
    page_offsets = np.zeros(4 * index.n_documents + 1, dtype=np.int64)
    cursor = 0
    for doc_id in range(index.n_documents):
        page = index.page(doc_id)
        for field_index, field in enumerate(
            (page.url, page.title, page.body, page.language)
        ):
            encoded = field.encode("utf-8")
            page_blob += encoded
            cursor += len(encoded)
            page_offsets[4 * doc_id + field_index + 1] = cursor

    header = {
        "layout_version": INDEX_LAYOUT_VERSION,
        "title_boost": index.title_boost,
        "n_documents": index.n_documents,
        "average_length": index.average_length,
        "content_digest": index.content_digest(),
        "fingerprint_digest": index.fingerprint_digest(),
        "n_tokens": len(tokens),
        "n_postings": len(flat_ids),
    }
    sections = {
        "token_blob": np.frombuffer(bytes(token_blob), dtype=np.uint8),
        "token_offsets": token_offsets,
        "posting_offsets": posting_offsets,
        "doc_ids": np.asarray(flat_ids, dtype=np.int64),
        "tfs": np.asarray(flat_tfs, dtype=np.float64),
        "lengths": np.asarray(index.lengths, dtype=np.float64),
        "page_blob": np.frombuffer(bytes(page_blob), dtype=np.uint8),
        "page_offsets": page_offsets,
    }
    if not save_array_artifact(
        path, INDEX_ARTIFACT_KIND, header, sections, lock_timeout=lock_timeout
    ):
        raise ArtifactError(
            f"could not acquire the artifact lock to build {path}"
        )
    return Path(path)


class FrozenMmapIndex:
    """Read-only :class:`IndexBackend` over a compacted mmap'd artifact.

    Every array-valued accessor returns a zero-copy view into the
    memory-mapped file; the only per-process heap state is the lazily
    built token -> row dictionary (first query) and a small decoded-page
    memo.  Mutations (:meth:`add`, :meth:`add_many`) raise
    :class:`FrozenIndexError` -- grow the corpus with the in-memory
    backend and rebuild the artifact.

    Pickling is by path (:meth:`__reduce__`): a ``spawn`` worker receives
    the path string and re-opens the mapping, a ``fork`` worker inherits
    it -- in neither case is the postings store serialised.
    """

    backend_name = "mmap"

    def __init__(self, path, header: dict, sections: dict) -> None:
        self.path = Path(path)
        self.title_boost = float(header["title_boost"])
        self._n_documents = int(header["n_documents"])
        self._average_length = float(header["average_length"])
        self._content_digest = str(header["content_digest"])
        self._fingerprint_digest = str(header["fingerprint_digest"])
        self._sections = sections
        self._token_rows: dict[str, int] | None = None
        self._page_cache: dict[int, WebPage] = {}

    @classmethod
    def open(cls, path, lock_timeout: float | None = None) -> "FrozenMmapIndex":
        """Open the artifact at *path*; raises :class:`ArtifactError`."""
        with span("index.attach", path=str(path)):
            header, sections = open_array_artifact(
                path, INDEX_ARTIFACT_KIND, lock_timeout=lock_timeout
            )
            if header.get("layout_version") != INDEX_LAYOUT_VERSION:
                raise ArtifactError(
                    f"{path} uses index layout "
                    f"{header.get('layout_version')!r}, "
                    f"expected {INDEX_LAYOUT_VERSION}"
                )
            return cls(path, header, sections)

    def __reduce__(self):
        return (FrozenMmapIndex.open, (str(self.path),))

    # -- construction (refused) ------------------------------------------------------

    def add(self, page: WebPage) -> int:
        raise FrozenIndexError(
            "FrozenMmapIndex is read-only; grow the corpus with the "
            "in-memory backend and rebuild the artifact (index build)"
        )

    def add_many(self, pages) -> list[int]:
        raise FrozenIndexError(
            "FrozenMmapIndex is read-only; grow the corpus with the "
            "in-memory backend and rebuild the artifact (index build)"
        )

    # -- token lookup ----------------------------------------------------------------

    def _rows(self) -> dict[str, int]:
        if self._token_rows is None:
            blob = bytes(memoryview(self._sections["token_blob"]))
            offsets = self._sections["token_offsets"]
            self._token_rows = {
                blob[offsets[row] : offsets[row + 1]].decode("utf-8"): row
                for row in range(len(offsets) - 1)
            }
        return self._token_rows

    # -- statistics ------------------------------------------------------------------

    @property
    def n_documents(self) -> int:
        return self._n_documents

    @property
    def average_length(self) -> float:
        return self._average_length

    @property
    def lengths(self) -> np.ndarray:
        return self._sections["lengths"]

    def document_length(self, doc_id: int) -> float:
        return float(self._sections["lengths"][doc_id])

    def document_frequency(self, token: str) -> int:
        row = self._rows().get(token)
        if row is None:
            return 0
        offsets = self._sections["posting_offsets"]
        return int(offsets[row + 1] - offsets[row])

    def posting_arrays(
        self, token: str
    ) -> tuple[np.ndarray, np.ndarray] | None:
        row = self._rows().get(token)
        if row is None:
            return None
        offsets = self._sections["posting_offsets"]
        start, stop = int(offsets[row]), int(offsets[row + 1])
        return (
            self._sections["doc_ids"][start:stop],
            self._sections["tfs"][start:stop],
        )

    def postings(self, token: str) -> list[Posting]:
        arrays = self.posting_arrays(token)
        if arrays is None:
            return []
        ids, tfs = arrays
        return [
            Posting(doc_id=int(doc_id), term_frequency=float(tf))
            for doc_id, tf in zip(ids, tfs)
        ]

    def raw_postings(self, token: str) -> Sequence[tuple[int, float]]:
        arrays = self.posting_arrays(token)
        if arrays is None:
            return ()
        ids, tfs = arrays
        return [(int(doc_id), float(tf)) for doc_id, tf in zip(ids, tfs)]

    def page(self, doc_id: int) -> WebPage:
        page = self._page_cache.get(doc_id)
        if page is None:
            if not 0 <= doc_id < self._n_documents:
                raise IndexError(f"no document {doc_id}")
            blob = self._sections["page_blob"]
            offsets = self._sections["page_offsets"]
            base = 4 * doc_id
            url, title, body, language = (
                bytes(
                    memoryview(blob[offsets[base + i] : offsets[base + i + 1]])
                ).decode("utf-8")
                for i in range(4)
            )
            page = WebPage(url=url, title=title, body=body, language=language)
            self._page_cache[doc_id] = page
        return page

    def vocabulary_size(self) -> int:
        return len(self._sections["token_offsets"]) - 1

    def tokens(self) -> Iterator[str]:
        blob = bytes(memoryview(self._sections["token_blob"]))
        offsets = self._sections["token_offsets"]
        for row in range(len(offsets) - 1):
            yield blob[offsets[row] : offsets[row + 1]].decode("utf-8")

    def content_digest(self) -> str:
        return self._content_digest

    def fingerprint_digest(self) -> str:
        return self._fingerprint_digest


def ensure_index_artifact(
    index: IndexBackend,
    path,
    lock_timeout: float | None = None,
) -> FrozenMmapIndex:
    """Open a fresh artifact for *index* at *path*, building if needed.

    An existing artifact is reused iff its fingerprint digest and title
    boost match *index* exactly (same pages, same content, same boost);
    anything else -- missing, corrupt, stale, other corpus -- triggers a
    rebuild through the atomic, advisory-locked write path.
    """
    path = Path(path)
    if path.exists():
        try:
            frozen = FrozenMmapIndex.open(path, lock_timeout=lock_timeout)
        except ArtifactError as error:
            logger.warning(
                "index.artifact_unusable",
                path=str(path),
                error=str(error),
                outcome="rebuilding",
            )
        else:
            if (
                frozen.fingerprint_digest() == index.fingerprint_digest()
                and frozen.title_boost == index.title_boost
            ):
                return frozen
            logger.info(
                "index.artifact_stale",
                path=str(path),
                outcome="rebuilding",
            )
    with span("index.build", path=str(path), n_documents=index.n_documents):
        build_index_artifact(index, path, lock_timeout=lock_timeout)
    return FrozenMmapIndex.open(path, lock_timeout=lock_timeout)
