"""Inverted index over web pages.

Tokenisation matches :func:`repro.text.tokenization.tokenize` (lower-case
word tokens).  Title tokens are counted with a configurable boost, because
entity homepages carry the entity name in the title and should outrank
pages that merely mention it.

Freeze lifecycle
----------------
The index has two representations per token: an append-only build list
(postings accumulate in Python lists) and a frozen query view (postings as
numpy arrays so BM25 scoring is vectorised per token).  Freezing is *lazy
and per token*: the first query touching a token materialises its arrays,
and :meth:`add` merely marks the touched tokens dirty so only *their*
arrays are rebuilt on next access.  Interleaving ``add`` and ``search``
therefore never rebuilds the whole postings store -- the cost of an add is
proportional to the page being added, and the cost of a query to the
tokens it actually uses.  Document-length arrays follow the same rule:
``lengths`` is re-materialised only after a page was added.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.text.tokenization import tokenize
from repro.web.documents import WebPage


@dataclass(frozen=True, slots=True)
class Posting:
    """One (document, term-frequency) entry of a postings list."""

    doc_id: int
    term_frequency: float


class InvertedIndex:
    """Token -> postings map with the corpus statistics BM25 needs."""

    backend_name = "memory"

    def __init__(self, title_boost: float = 3.0) -> None:
        if title_boost < 1.0:
            raise ValueError(f"title_boost must be >= 1.0, got {title_boost}")
        self.title_boost = title_boost
        self._pages: list[WebPage] = []
        self._building: dict[str, list[tuple[int, float]]] = {}
        # Frozen per-token views plus the set of tokens whose view is stale.
        self._frozen: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        self._dirty: set[str] = set()
        self._doc_lengths: list[float] = []
        self._lengths_array: np.ndarray | None = None
        self._total_length = 0.0
        self._init_hashers()

    def _init_hashers(self) -> None:
        """(Re)build the incremental corpus hashers from the current pages.

        Two live hashers fold every page in at :meth:`add` time, so
        :meth:`content_digest` and :meth:`fingerprint_digest` are O(1)
        regardless of corpus size instead of O(corpus) per call after each
        growth.  Called from ``__init__`` (empty corpus, cheap) and from
        ``__setstate__`` (hash objects cannot be pickled, so an unpickled
        index replays its pages once -- the same cost the old lazy
        recompute paid on first use).
        """
        self._content_hasher = hashlib.sha256()
        self._content_hasher.update(repr(self.title_boost).encode())
        self._pages_hasher = hashlib.sha256()
        for page in self._pages:
            self._fold_page(page)

    def _fold_page(self, page: WebPage) -> None:
        self._content_hasher.update(b"\x00t\x00")
        self._content_hasher.update(page.title.encode())
        self._content_hasher.update(b"\x00b\x00")
        self._content_hasher.update(page.body.encode())
        self._pages_hasher.update(page.url.encode())
        self._pages_hasher.update(b"\x00")
        self._pages_hasher.update(page.language.encode())
        self._pages_hasher.update(b"\x00")

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # sha256 objects do not pickle; __setstate__ rebuilds them.
        del state["_content_hasher"]
        del state["_pages_hasher"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._init_hashers()

    # -- construction ---------------------------------------------------------------

    def add(self, page: WebPage) -> int:
        """Index *page* and return its document id."""
        doc_id = len(self._pages)
        self._pages.append(page)
        self._fold_page(page)
        counts: Counter[str] = Counter()
        for token in tokenize(page.title):
            counts[token] += self.title_boost
        for token in tokenize(page.body):
            counts[token] += 1.0
        length = float(sum(counts.values()))
        self._doc_lengths.append(length)
        self._total_length += length
        self._lengths_array = None
        for token, frequency in counts.items():
            self._building.setdefault(token, []).append((doc_id, frequency))
            if token in self._frozen:
                self._dirty.add(token)
        return doc_id

    def add_many(self, pages: Iterable[WebPage]) -> list[int]:
        """Bulk-index *pages*, returning their document ids.

        Equivalent to calling :meth:`add` per page; kept as a single entry
        point so callers indexing whole crawls state the intent and future
        bulk-only optimisations have a seam.  Under the lazy per-token
        freeze there is no global rebuild either way: each touched token's
        frozen view is invalidated once and rebuilt on next query.
        """
        return [self.add(page) for page in pages]

    # -- freeze / thaw -----------------------------------------------------------------

    def _freeze_token(self, token: str) -> tuple[np.ndarray, np.ndarray] | None:
        entries = self._building.get(token)
        if entries is None:
            return None
        ids = np.asarray([doc_id for doc_id, _tf in entries], dtype=np.int64)
        tfs = np.asarray([tf for _doc_id, tf in entries], dtype=np.float64)
        frozen = (ids, tfs)
        self._frozen[token] = frozen
        self._dirty.discard(token)
        return frozen

    # -- statistics --------------------------------------------------------------------

    @property
    def n_documents(self) -> int:
        return len(self._pages)

    @property
    def average_length(self) -> float:
        """Mean indexed document length (0.0 for an empty index)."""
        if not self._pages:
            return 0.0
        return self._total_length / len(self._pages)

    @property
    def lengths(self) -> np.ndarray:
        """Document lengths as an array (frozen view)."""
        if self._lengths_array is None:
            self._lengths_array = np.asarray(self._doc_lengths, dtype=np.float64)
        return self._lengths_array

    def document_length(self, doc_id: int) -> float:
        return self._doc_lengths[doc_id]

    def document_frequency(self, token: str) -> int:
        """Number of documents containing *token*."""
        entries = self._building.get(token)
        return 0 if entries is None else len(entries)

    def posting_arrays(self, token: str) -> tuple[np.ndarray, np.ndarray] | None:
        """(doc_ids, term_frequencies) arrays for *token*, or ``None``."""
        if token not in self._dirty:
            frozen = self._frozen.get(token)
            if frozen is not None:
                return frozen
        return self._freeze_token(token)

    def postings(self, token: str) -> list[Posting]:
        """The postings list of *token* (empty when unindexed)."""
        arrays = self.posting_arrays(token)
        if arrays is None:
            return []
        ids, tfs = arrays
        return [
            Posting(doc_id=int(doc_id), term_frequency=float(tf))
            for doc_id, tf in zip(ids, tfs)
        ]

    def page(self, doc_id: int) -> WebPage:
        """The indexed page with this id."""
        return self._pages[doc_id]

    def vocabulary_size(self) -> int:
        return len(self._building)

    def tokens(self) -> Iterator[str]:
        """Iterate the vocabulary in sorted order (deterministic)."""
        return iter(sorted(self._building))

    def raw_postings(self, token: str) -> Sequence[tuple[int, float]]:
        """The append-order ``(doc_id, tf)`` build list for *token*.

        Exposed for artifact builders that compact the whole vocabulary
        at once: unlike :meth:`posting_arrays` this does not materialise
        (and cache) a frozen numpy view per token, so a full-index sweep
        does not double the resident postings store.
        """
        return self._building.get(token, ())

    def content_digest(self) -> str:
        """Hex digest of the indexed *content* (titles, bodies, boost).

        The hasher is incremental -- each :meth:`add` folds the page in
        -- so this is O(1) however large the corpus.  Together with the
        tokenizer (fixed) and :attr:`title_boost` the hashed text fully
        determines every postings list, so two indexes agree on this
        digest iff they rank identically -- which is what persisted
        ranking caches need to check.  Hashing only shapes (url, title,
        length) is not enough: two corpora whose bodies differ can
        collide on all three and would then validate each other's caches.
        """
        return self._content_hasher.hexdigest()

    def fingerprint_digest(self) -> str:
        """Hex digest identifying the corpus for cache validation.

        Folds every page's (url, language) pair plus the full
        :meth:`content_digest`, in add order.  This is the digest
        :meth:`repro.web.search.SearchEngine.cache_fingerprint` embeds,
        kept here so every backend (in-memory or frozen artifact) can
        answer it without re-walking the page store.  O(1): both
        underlying hashers are maintained incrementally and copied.
        """
        hasher = self._pages_hasher.copy()
        hasher.update(self.content_digest().encode())
        return hasher.hexdigest()
