"""Inverted index over web pages.

Tokenisation matches :func:`repro.text.tokenization.tokenize` (lower-case
word tokens).  Title tokens are counted with a configurable boost, because
entity homepages carry the entity name in the title and should outrank
pages that merely mention it.

The index has two phases: an append-only build phase (postings accumulate
in Python lists) and a frozen query phase (postings become numpy arrays so
BM25 scoring is vectorised per token).  Freezing happens lazily on first
query access and is undone transparently when new pages are added.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.text.tokenization import tokenize
from repro.web.documents import WebPage


@dataclass(frozen=True, slots=True)
class Posting:
    """One (document, term-frequency) entry of a postings list."""

    doc_id: int
    term_frequency: float


class InvertedIndex:
    """Token -> postings map with the corpus statistics BM25 needs."""

    def __init__(self, title_boost: float = 3.0) -> None:
        if title_boost < 1.0:
            raise ValueError(f"title_boost must be >= 1.0, got {title_boost}")
        self.title_boost = title_boost
        self._pages: list[WebPage] = []
        self._building: dict[str, list[tuple[int, float]]] = {}
        self._frozen: dict[str, tuple[np.ndarray, np.ndarray]] | None = None
        self._doc_lengths: list[float] = []
        self._lengths_array: np.ndarray | None = None
        self._total_length = 0.0

    # -- construction ---------------------------------------------------------------

    def add(self, page: WebPage) -> int:
        """Index *page* and return its document id."""
        if self._frozen is not None:
            self._thaw()
        doc_id = len(self._pages)
        self._pages.append(page)
        counts: Counter[str] = Counter()
        for token in tokenize(page.title):
            counts[token] += self.title_boost
        for token in tokenize(page.body):
            counts[token] += 1.0
        length = float(sum(counts.values()))
        self._doc_lengths.append(length)
        self._total_length += length
        for token, frequency in counts.items():
            self._building.setdefault(token, []).append((doc_id, frequency))
        return doc_id

    # -- freeze / thaw -----------------------------------------------------------------

    def _freeze(self) -> None:
        frozen = {}
        for token, entries in self._building.items():
            ids = np.asarray([doc_id for doc_id, _tf in entries], dtype=np.int64)
            tfs = np.asarray([tf for _doc_id, tf in entries], dtype=np.float64)
            frozen[token] = (ids, tfs)
        self._frozen = frozen
        self._lengths_array = np.asarray(self._doc_lengths, dtype=np.float64)

    def _thaw(self) -> None:
        self._frozen = None
        self._lengths_array = None

    def _require_frozen(self) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        if self._frozen is None:
            self._freeze()
        assert self._frozen is not None
        return self._frozen

    # -- statistics --------------------------------------------------------------------

    @property
    def n_documents(self) -> int:
        return len(self._pages)

    @property
    def average_length(self) -> float:
        """Mean indexed document length (0.0 for an empty index)."""
        if not self._pages:
            return 0.0
        return self._total_length / len(self._pages)

    @property
    def lengths(self) -> np.ndarray:
        """Document lengths as an array (frozen view)."""
        self._require_frozen()
        assert self._lengths_array is not None
        return self._lengths_array

    def document_length(self, doc_id: int) -> float:
        return self._doc_lengths[doc_id]

    def document_frequency(self, token: str) -> int:
        """Number of documents containing *token*."""
        arrays = self.posting_arrays(token)
        return 0 if arrays is None else int(arrays[0].shape[0])

    def posting_arrays(self, token: str) -> tuple[np.ndarray, np.ndarray] | None:
        """(doc_ids, term_frequencies) arrays for *token*, or ``None``."""
        return self._require_frozen().get(token)

    def postings(self, token: str) -> list[Posting]:
        """The postings list of *token* (empty when unindexed)."""
        arrays = self.posting_arrays(token)
        if arrays is None:
            return []
        ids, tfs = arrays
        return [
            Posting(doc_id=int(doc_id), term_frequency=float(tf))
            for doc_id, tf in zip(ids, tfs)
        ]

    def page(self, doc_id: int) -> WebPage:
        """The indexed page with this id."""
        return self._pages[doc_id]

    def vocabulary_size(self) -> int:
        return len(self._building)
