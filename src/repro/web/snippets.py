"""Query-biased snippet extraction.

Real engines summarise a result page with a ~20-word window centred on the
query terms ("most of them are less than 20 words long", Section 5.2).  We
reproduce that: find the body window with the highest density of query
tokens and render it, ellipsised when it does not span the whole body.
"""

from __future__ import annotations

from typing import Sequence

from repro.text.tokenization import tokenize

DEFAULT_SNIPPET_WORDS = 20


def best_window_start(
    hits: Sequence[int], n_words: int, max_words: int
) -> int:
    """First start of the densest *max_words* window over per-word *hits*.

    Ties keep the earliest window (only a strictly higher score moves the
    window), so an all-zero *hits* yields the leading window.  Shared by
    :func:`extract_snippet` and the search engine's amortised extractor so
    the two stay byte-identical by construction.
    """
    window_score = sum(hits[:max_words])
    best_score = window_score
    best_start = 0
    for start in range(1, n_words - max_words + 1):
        window_score += hits[start + max_words - 1] - hits[start - 1]
        if window_score > best_score:
            best_score = window_score
            best_start = start
    return best_start


def render_window(words: list[str], best_start: int, max_words: int) -> str:
    """Render the chosen window with ellipses marking truncation."""
    window = words[best_start : best_start + max_words]
    prefix = "... " if best_start > 0 else ""
    suffix = " ..." if best_start + max_words < len(words) else ""
    return f"{prefix}{' '.join(window)}{suffix}"


def extract_snippet(
    body: str, query: str, max_words: int = DEFAULT_SNIPPET_WORDS
) -> str:
    """Best *max_words*-word window of *body* for *query*.

    Falls back to the leading window when no query token occurs in the
    body.  The returned snippet preserves the original word forms (only
    whitespace is normalised) and carries a trailing ellipsis when
    truncated.
    """
    if max_words < 1:
        raise ValueError(f"max_words must be >= 1, got {max_words}")
    words = body.split()
    if len(words) <= max_words:
        return " ".join(words)
    query_tokens = set(tokenize(query))
    lowered = [tokenize(word) for word in words]
    hits = [
        1 if any(token in query_tokens for token in word_tokens) else 0
        for word_tokens in lowered
    ]
    best_start = best_window_start(hits, len(words), max_words)
    return render_window(words, best_start, max_words)
