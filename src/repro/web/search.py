"""The search-engine facade: the Microsoft Bing stand-in.

Implements the exact contract the annotation step consumes (Section 5.2):
submit a query, receive the top-k results as (url, title, snippet) triples,
English results only.  Each query charges a configurable latency to the
shared :class:`~repro.clock.VirtualClock`; the Section 6.4 efficiency
experiment reads that clock.

Failure injection: setting :attr:`SearchEngine.available` to ``False`` makes
every query raise :class:`SearchEngineUnavailable`, and ``failure_rate``
drops queries pseudo-randomly -- both are exercised by the failure-handling
tests of the annotator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.clock import VirtualClock
from repro.text.stopwords import ENGLISH_STOPWORDS
from repro.text.tokenization import tokenize
from repro.web.documents import WebPage
from repro.web.index import InvertedIndex
from repro.web.ranking import BM25Parameters, bm25_score_array
from repro.web.snippets import extract_snippet

DEFAULT_SEARCH_LATENCY = 0.3
"""Virtual seconds charged per search request."""

MAX_DF_RATIO = 0.35
"""Query tokens occurring in more than this fraction of documents are
ignored during ranking, as real engines effectively do with ubiquitous
words; stopwords are dropped outright."""


class SearchEngineUnavailable(RuntimeError):
    """Raised when the engine is down or a request is dropped."""


@dataclass(frozen=True)
class SearchResult:
    """One search hit: link, title and the query-biased snippet."""

    url: str
    title: str
    snippet: str


class SearchEngine:
    """BM25-ranked keyword search over a synthetic page corpus."""

    def __init__(
        self,
        clock: VirtualClock | None = None,
        latency_seconds: float = DEFAULT_SEARCH_LATENCY,
        parameters: BM25Parameters | None = None,
        failure_rate: float = 0.0,
        seed: int = 13,
    ) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError(f"failure_rate must be in [0, 1], got {failure_rate}")
        self.clock = clock or VirtualClock()
        self.latency_seconds = latency_seconds
        self.parameters = parameters or BM25Parameters()
        self.failure_rate = failure_rate
        self.available = True
        self._rng = random.Random(seed)
        self._index = InvertedIndex()
        self.query_count = 0

    # -- corpus ------------------------------------------------------------------------

    def add_page(self, page: WebPage) -> None:
        """Add one page to the searchable corpus."""
        self._index.add(page)

    def add_pages(self, pages) -> None:
        """Add many pages."""
        for page in pages:
            self.add_page(page)

    @property
    def n_pages(self) -> int:
        return self._index.n_documents

    # -- querying -----------------------------------------------------------------------

    def search(self, query: str, k: int = 10) -> list[SearchResult]:
        """Top-*k* English results for *query*, best first.

        Raises :class:`SearchEngineUnavailable` when the engine is marked
        down or the request is dropped by failure injection.  An empty or
        no-match query yields an empty result list, as a real engine would.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.clock.charge(self.latency_seconds)
        self.query_count += 1
        if not self.available:
            raise SearchEngineUnavailable("search engine is down")
        if self.failure_rate and self._rng.random() < self.failure_rate:
            raise SearchEngineUnavailable("request dropped")
        tokens = self._effective_tokens(query)
        scores = bm25_score_array(self._index, tokens, self.parameters)
        matched = np.flatnonzero(scores > 0.0)
        if matched.size == 0:
            return []
        # Deterministic order: score descending, then doc id ascending.
        order = matched[np.lexsort((matched, -scores[matched]))]
        results: list[SearchResult] = []
        for doc_id in order:
            page = self._index.page(int(doc_id))
            if page.language != "en":
                continue
            results.append(
                SearchResult(
                    url=page.url,
                    title=page.title,
                    snippet=extract_snippet(page.body, query),
                )
            )
            if len(results) == k:
                break
        return results

    def _effective_tokens(self, query: str) -> list[str]:
        """Query tokens minus stopwords and ubiquitous terms."""
        tokens = [t for t in tokenize(query) if t not in ENGLISH_STOPWORDS]
        n_docs = self._index.n_documents
        if n_docs == 0:
            return tokens
        cap = MAX_DF_RATIO * n_docs
        filtered = [
            t for t in tokens if self._index.document_frequency(t) <= cap
        ]
        # If the cap removed everything, keep the original tokens: a query
        # made only of common words should still return *something*.
        return filtered or tokens
