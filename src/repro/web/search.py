"""The search-engine facade: the Microsoft Bing stand-in.

Implements the exact contract the annotation step consumes (Section 5.2):
submit a query, receive the top-k results as (url, title, snippet) triples,
English results only.  Each query charges a configurable latency to the
shared :class:`~repro.clock.VirtualClock`; the Section 6.4 efficiency
experiment reads that clock.

Two query entry points share one ranking core:

* :meth:`SearchEngine.search` -- one query, the seed per-cell contract
  (failures raise), a fresh dense BM25 pass and fresh snippet extraction
  per call;
* :meth:`SearchEngine.search_many` -- a batch of queries for table-at-a-time
  annotation.  Latency accounting is per unique issued query *string* (a
  remote engine is hit once per distinct request), in first-occurrence
  order, so for a batch of distinct queries the clock and the failure
  injector see exactly what per-query :meth:`search` calls would.  Compute
  is amortised much harder: result lists are cached per query *token
  signature* (tokenisation drops digits and stopwords, so many distinct
  strings rank identically), BM25 runs sparsely over only the matched
  postings, and query-biased snippet extraction reuses per-page word/token
  position maps instead of re-tokenising every body for every query.

Failure injection: setting :attr:`SearchEngine.available` to ``False`` makes
every query raise :class:`SearchEngineUnavailable`, and ``failure_rate``
drops queries pseudo-randomly -- both are exercised by the failure-handling
tests of the annotator.  Failure is decided per issued query, *before* any
compute cache is consulted: a dropped request returns nothing even when the
engine could have answered it from cache.  The failure-rate draw is a
deterministic hash of ``(seed, query text, occurrence index)`` rather than
a shared RNG stream, so every execution tier -- per-cell, batched,
multi-process, service -- agrees on exactly *which* requests drop for a
given workload, and a retry of the same query (its next occurrence) gets a
fresh draw.  Scripted faults beyond the uniform rate (fail the first K
issues of a query, every Nth request, outage windows, latency spikes) are
installed via :attr:`SearchEngine.fault_plan`
(a :class:`repro.resilience.FaultPlan`).

The signature -> results cache is also *durable*: :meth:`SearchEngine.save_results_cache`
writes it (with the per-page snippet-window maps) to disk, fingerprinted by
the corpus content (size, urls, indexed titles/bodies) and the BM25
parameters, and :meth:`SearchEngine.load_results_cache` warms a fresh
engine -- in another process -- over the same corpus.  Saves are
merge-on-save under an advisory file lock, so concurrent workers sharing
one cache directory union their entries instead of clobbering each other.

>>> from repro.clock import VirtualClock
>>> from repro.web.documents import WebPage
>>> def build_engine():
...     engine = SearchEngine(clock=VirtualClock())
...     engine.add_page(WebPage(url="https://web/melisse", title="Hotel Melisse",
...                             body="hotel melisse rooms lodging suites"))
...     return engine
>>> engine = build_engine()
>>> [hit.title for hit in engine.search("Hotel Melisse", k=3)]
['Hotel Melisse']
>>> batch = engine.search_many(["Hotel Melisse", "Hotel Melisse"], k=3)
>>> [hit.title for hit in batch[1]]
['Hotel Melisse']
>>> engine.clock.n_charges  # search() charged 1; the duplicate batch, 1
2
>>> import os, tempfile
>>> tmp = tempfile.TemporaryDirectory()
>>> path = os.path.join(tmp.name, "search_results.cache")
>>> engine.save_results_cache(path)
True
>>> warm = build_engine()  # a second process over the same corpus
>>> warm.load_results_cache(path)
True
>>> tmp.cleanup()
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.clock import VirtualClock
from repro.observability.tracing import span
from repro.persistence import CacheStore, load_cache_payload, save_cache_payload
from repro.resilience import FaultPlan, deterministic_unit
from repro.text.stopwords import ENGLISH_STOPWORDS
from repro.text.tokenization import tokenize
from repro.web.backends import IndexBackend
from repro.web.documents import WebPage
from repro.web.index import InvertedIndex
from repro.web.ranking import (
    BM25Parameters,
    bm25_matched_scores,
    bm25_norms,
    bm25_score_array,
)
from repro.web.snippets import (
    DEFAULT_SNIPPET_WORDS,
    best_window_start,
    extract_snippet,
    render_window,
)

DEFAULT_SEARCH_LATENCY = 0.3
"""Virtual seconds charged per search request."""

MAX_DF_RATIO = 0.35
"""Query tokens occurring in more than this fraction of documents are
ignored during ranking, as real engines effectively do with ubiquitous
words; stopwords are dropped outright."""


class SearchEngineUnavailable(RuntimeError):
    """Raised when the engine is down or a request is dropped."""


@dataclass(frozen=True)
class SearchResult:
    """One search hit: link, title and the query-biased snippet."""

    url: str
    title: str
    snippet: str


class SearchEngine:
    """BM25-ranked keyword search over a synthetic page corpus."""

    def __init__(
        self,
        clock: VirtualClock | None = None,
        latency_seconds: float = DEFAULT_SEARCH_LATENCY,
        parameters: BM25Parameters | None = None,
        failure_rate: float = 0.0,
        seed: int = 13,
        real_latency_seconds: float = 0.0,
        index: IndexBackend | None = None,
    ) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError(f"failure_rate must be in [0, 1], got {failure_rate}")
        if real_latency_seconds < 0.0:
            raise ValueError(
                f"real_latency_seconds must be >= 0, got {real_latency_seconds}"
            )
        self.clock = clock or VirtualClock()
        self.latency_seconds = latency_seconds
        # Wall-clock seconds *actually slept* per issued request.  The
        # default in-process stand-in only charges virtual time; setting
        # this reproduces the paper's latency-dominated regime (Section
        # 6.4: ~0.5 s of connection latency per row) in real time, which
        # is the regime where concurrent workers overlap their waits.
        self.real_latency_seconds = real_latency_seconds
        self.parameters = parameters or BM25Parameters()
        self.failure_rate = failure_rate
        self.available = True
        self._seed = seed
        # Scripted deterministic faults (see repro.resilience.FaultPlan);
        # None means only `available` / `failure_rate` apply.
        self.fault_plan: FaultPlan | None = None
        # query text -> how many times this engine has issued it; the
        # occurrence index keys the failure-rate draw and FaultPlan's
        # fail-first-K schedule, and gives retries a fresh draw.
        self._query_occurrences: dict[str, int] = {}
        # The index storage backend (repro.web.backends.IndexBackend):
        # mutable in-memory by default, or an injected frozen mmap-backed
        # index shared zero-copy across processes.
        self._index: IndexBackend = index if index is not None else InvertedIndex()
        # -- batched-path compute caches (pages are immutable; ranking
        # caches are invalidated whenever the corpus grows) --------------
        # token signature -> ranked SearchResult list
        self._results_cache: dict[tuple, list[SearchResult]] = {}
        # doc_id -> (body words, token -> word positions)
        self._page_windows: dict[
            int, tuple[list[str], dict[str, list[int]]]
        ] = {}
        # body word -> its word tokens (shared across pages; bodies reuse
        # a modest vocabulary, so this short-circuits most tokenisation)
        self._word_tokens: dict[str, tuple[str, ...]] = {}
        self._norms: np.ndarray | None = None
        self._cache_n_docs = 0
        self._cache_parameters = self.parameters
        self.query_count = 0
        # Optional shared cache store (repro.persistence.CacheStore)
        # probed at compute-cache misses; the dicts above stay the hot
        # first tier, the store is the second, shared-on-disk tier.
        self._results_store: CacheStore | None = None
        # -- cache IO accounting (observability only; never semantics) ---
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_loads = 0
        self._cache_saves = 0
        self._legacy_load_bytes = 0
        self._cache_save_bytes = 0

    # -- corpus ------------------------------------------------------------------------

    def add_page(self, page: WebPage) -> None:
        """Add one page to the searchable corpus."""
        self._index.add(page)

    def add_pages(self, pages) -> None:
        """Bulk-index many pages in one indexing pass."""
        self._index.add_many(pages)

    @property
    def n_pages(self) -> int:
        return self._index.n_documents

    @property
    def index(self) -> IndexBackend:
        """The index storage backend serving this engine's queries."""
        return self._index

    def use_index_backend(self, backend: IndexBackend) -> None:
        """Swap the engine onto *backend* (e.g. a frozen mmap artifact).

        The replacement must index the *same corpus* -- same content
        digest -- so every ranking/window compute cache, and every
        persisted cache keyed by :meth:`cache_fingerprint`, stays valid
        verbatim: cached values are pure functions of (corpus,
        parameters), never of the storage representation.
        """
        if backend.content_digest() != self._index.content_digest():
            raise ValueError(
                "cannot swap index backends across different corpora: "
                "content digests differ"
            )
        self._index = backend

    # -- querying -----------------------------------------------------------------------

    def search(self, query: str, k: int = 10) -> list[SearchResult]:
        """Top-*k* English results for *query*, best first.

        Raises :class:`SearchEngineUnavailable` when the engine is marked
        down or the request is dropped by failure injection.  An empty or
        no-match query yields an empty result list, as a real engine would.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        reason = self._issue_request(query)
        if reason is not None:
            raise SearchEngineUnavailable(reason)
        tokens = self._effective_tokens(query)
        scores = bm25_score_array(self._index, tokens, self.parameters)
        matched = np.flatnonzero(scores > 0.0)
        if matched.size == 0:
            return []
        # Deterministic order: score descending, then doc id ascending.
        order = matched[np.lexsort((matched, -scores[matched]))]
        results: list[SearchResult] = []
        for doc_id in order:
            page = self._index.page(int(doc_id))
            if page.language != "en":
                continue
            results.append(
                SearchResult(
                    url=page.url,
                    title=page.title,
                    snippet=extract_snippet(page.body, query),
                )
            )
            if len(results) == k:
                break
        return results

    def search_many(
        self, queries: Sequence[str], k: int = 10
    ) -> list[list[SearchResult] | None]:
        """Resolve a batch of queries, one issued request per unique query.

        Returns a list aligned with *queries*; each entry is the top-*k*
        result list of that query, or ``None`` when its (single, shared)
        request failed.  Duplicate query strings are issued -- and charged
        to the virtual clock -- exactly once, in first-occurrence order, so
        for a batch of distinct queries the latency accounting is identical
        to calling :meth:`search` per query.  Unlike :meth:`search`,
        failures are reported per query rather than raised, so one dropped
        request cannot abort a whole table.

        Results are byte-identical to :meth:`search`; only the compute is
        amortised (signature-level result caching, sparse BM25, pooled
        snippet extraction).
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self._validate_caches()
        resolved: dict[str, list[SearchResult] | None] = {}
        with span("search.search_many", n_queries=len(queries)) as many_span:
            for query in queries:
                if query in resolved:
                    continue
                if self._issue_request(query) is not None:
                    resolved[query] = None
                    continue
                resolved[query] = self._ranked_results(query, k)
            many_span.tag(n_unique=len(resolved))
        # Copy per entry: callers may mutate their result lists without
        # corrupting the signature cache (search() hands out fresh lists too).
        return [
            None if resolved[query] is None else list(resolved[query])
            for query in queries
        ]

    def _issue_request(self, query: str) -> str | None:
        """Account one issued request and decide its fate.

        Returns ``None`` on success or a human-readable failure reason when
        the request is dropped.  A dropped request is still charged: the
        remote round-trip happened, it just failed.  The decision is a pure
        function of the engine's seed, the query text, how many times this
        engine has issued that text (its occurrence index), the global
        request index, and the installed :class:`FaultPlan` -- never of a
        shared RNG stream -- so identical workloads fail identically across
        every execution tier.
        """
        request_index = self.query_count
        occurrence = self._query_occurrences.get(query, 0)
        self._query_occurrences[query] = occurrence + 1
        plan = self.fault_plan
        if plan is not None:
            plan.maybe_kill(query)
        self._charge_request()
        if plan is not None:
            extra = plan.extra_latency(request_index)
            if extra:
                self.clock.wait(extra)
        if not self.available:
            return "search engine is down"
        if plan is not None and plan.should_fail(query, occurrence, request_index):
            return "request dropped by fault plan"
        if self.failure_rate and (
            deterministic_unit(self._seed, query, occurrence) < self.failure_rate
        ):
            return "request dropped"
        return None

    def _charge_request(self) -> None:
        """Account one issued request: virtual charge + optional real wait."""
        self.clock.charge(self.latency_seconds)
        self.query_count += 1
        if self.real_latency_seconds:
            import time

            time.sleep(self.real_latency_seconds)

    def reset_failure_injection(self) -> None:
        """Forget per-query occurrence counters (and nothing else).

        After a reset, re-issuing a query gets the occurrence-0 draw again:
        benchmarks use this to run a no-retry baseline and a retrying pass
        over the same corpus with *identical* first-attempt failures.
        """
        self._query_occurrences.clear()

    # -- ranking core (batched path) ------------------------------------------------------

    def _validate_caches(self) -> None:
        """Drop ranking caches when the corpus or BM25 parameters changed.

        Per-page structures (:attr:`_page_windows`) survive: pages are
        immutable and doc ids append-only.
        """
        n_docs = self._index.n_documents
        if n_docs != self._cache_n_docs or self.parameters != self._cache_parameters:
            self._results_cache.clear()
            self._norms = None
            self._cache_n_docs = n_docs
            self._cache_parameters = self.parameters
            # The attached store answers for the old fingerprint now.
            if self._results_store is not None:
                self.detach_results_store()

    def reset_compute_caches(self) -> None:
        """Forget every batched-path compute cache.

        Results, length norms, page window maps and word tokenisations are
        all rebuilt on demand; accounting state (clock, query counts, rng)
        is untouched.  Benchmarks call this to measure true cold starts.
        """
        self._results_cache.clear()
        self._page_windows.clear()
        self._word_tokens.clear()
        self._norms = None

    # -- cache persistence ----------------------------------------------------------------

    def cache_fingerprint(self) -> tuple:
        """Identity token versioning the on-disk ranking caches.

        Covers the state the in-memory cache-drop hook
        (:meth:`_validate_caches`) watches -- corpus size plus the BM25
        parametrisation -- and, because a file may meet an engine the
        in-memory hook never could, actual corpus identity: page urls plus
        the index's content digest over every indexed title and body
        (which fully determine the postings).  Hashing only url/title/
        length let two corpora whose *bodies* differ but collide on those
        fields validate each other's persisted results -- and serve wrong
        rankings; folding the indexed token content in closes that hole.

        The digest itself is the backend's
        (:meth:`~repro.web.index.InvertedIndex.fingerprint_digest`): the
        in-memory backend maintains it incrementally, the frozen mmap
        backend stores it in the artifact header, and both produce the
        same bytes for the same corpus -- so caches written under one
        backend warm an engine running the other.
        """
        index = self._index
        return (
            "bm25",
            index.n_documents,
            index.fingerprint_digest(),
            self.parameters.as_tuple(),
        )

    @staticmethod
    def merge_results_payloads(existing: dict, fresh: dict) -> dict:
        """Union two persisted ranking payloads of one fingerprint.

        Every entry is a pure function of (corpus, parameters, query), so
        same-keyed entries are interchangeable and the union is simply the
        combined key set (fresh entries win ties).  This is the
        merge-on-save hook that lets concurrent workers share one cache
        directory: a worker persisting its shard's entries folds in --
        never clobbers -- what other workers already saved.
        """
        return {
            "results": {**existing["results"], **fresh["results"]},
            "page_windows": {
                **existing["page_windows"],
                **fresh["page_windows"],
            },
            "word_tokens": {**existing["word_tokens"], **fresh["word_tokens"]},
            "norms": (
                fresh["norms"] if fresh["norms"] is not None else existing["norms"]
            ),
        }

    def save_results_cache(self, path) -> bool:
        """Persist the signature -> results cache (and window maps) to *path*.

        The file is fingerprinted by :meth:`cache_fingerprint`; stale
        in-memory entries are dropped first so a cache surviving corpus
        growth is never written out.  The write is merge-on-save under an
        advisory lock (see :func:`repro.persistence.save_cache_payload`):
        entries already persisted by another process against the same
        fingerprint survive.  Returns ``False`` when the lock could not
        be acquired and the save was skipped.
        """
        self._validate_caches()
        saved = save_cache_payload(
            path,
            kind="search-results",
            fingerprint=self.cache_fingerprint(),
            payload={
                "results": dict(self._results_cache),
                "page_windows": dict(self._page_windows),
                "word_tokens": dict(self._word_tokens),
                "norms": self._norms,
            },
            merge=self.merge_results_payloads,
        )
        if saved:
            self._cache_saves += 1
            try:
                self._cache_save_bytes += os.stat(path).st_size
            except OSError:  # pragma: no cover - racing unlink
                pass
        return saved

    def load_results_cache(self, path) -> bool:
        """Warm the compute caches from a file written by :meth:`save_results_cache`.

        Returns ``True`` when the file matched this engine's current
        fingerprint (same corpus size and BM25 parameters) and was merged
        in; anything else -- missing file, other format version, corpus
        grown since the save -- leaves the engine cold and returns
        ``False``.  Accounting state (clock, query counts, rng) is never
        restored: a warm start changes compute, not protocol semantics.
        """
        self._validate_caches()
        payload = load_cache_payload(
            path, kind="search-results", fingerprint=self.cache_fingerprint()
        )
        if payload is None:
            return False
        self._results_cache.update(payload["results"])
        self._page_windows.update(payload["page_windows"])
        self._word_tokens.update(payload["word_tokens"])
        if self._norms is None and payload["norms"] is not None:
            self._norms = payload["norms"]
        self._cache_n_docs = self._index.n_documents
        self._cache_parameters = self.parameters
        self._cache_loads += 1
        try:
            self._legacy_load_bytes += os.stat(path).st_size
        except OSError:  # pragma: no cover - racing unlink
            pass
        return True

    # -- shared cache store ----------------------------------------------------------------

    @property
    def results_store(self) -> CacheStore | None:
        """The attached shared cache store, or ``None`` (legacy files only)."""
        return self._results_store

    def attach_results_store(self, store: CacheStore) -> None:
        """Serve compute-cache misses from *store* (a shared second tier).

        The store must have been opened against this engine's current
        :meth:`cache_fingerprint` -- same corpus, same BM25 parameters --
        so every entry it serves is interchangeable with a fresh compute.
        Attaching counts as one cache load; the bytes actually read grow
        lazily as buckets are touched (see :attr:`cache_load_bytes`).
        """
        if store.fingerprint != self.cache_fingerprint():
            raise ValueError(
                "cannot attach a cache store opened against a different "
                "fingerprint: corpus or parameters differ"
            )
        if self._results_store is not None:
            self.detach_results_store()
        self._validate_caches()
        self._results_store = store
        self._cache_loads += 1

    def detach_results_store(self) -> None:
        """Drop the attached store, folding its read bytes into the totals."""
        store = self._results_store
        if store is None:
            return
        self._legacy_load_bytes += store.loaded_bytes
        self._results_store = None

    def flush_results_store(self) -> int | None:
        """Persist this engine's compute caches through the attached store.

        Stages every in-memory entry the store does not already hold
        (the delta this process computed), then appends them in one
        locked write.  Returns the bytes written, 0 when the store was
        already complete, or ``None`` when either no store is attached
        or the store lock could not be acquired and the flush was
        skipped -- warmth lost, never correctness.
        """
        store = self._results_store
        if store is None:
            return None
        self._validate_caches()
        if store is not self._results_store:  # invalidation detached it
            return None
        for signature, results in self._results_cache.items():
            key = self._signature_key(signature)
            if not store.contains(key):
                store.put(key, results)
        for doc_id, entry in self._page_windows.items():
            key = f"win:{doc_id}"
            if not store.contains(key):
                store.put(key, entry)
        for word, tokens in self._word_tokens.items():
            key = f"tok:{word}"
            if not store.contains(key):
                store.put(key, tokens)
        if self._norms is not None and not store.contains("norms"):
            store.put("norms", self._norms)
        written = store.flush()
        if written is not None:
            self._cache_saves += 1
            self._cache_save_bytes += written
        return written

    @staticmethod
    def _signature_key(signature: tuple) -> str:
        """Canonical store key of one results-cache signature.

        The in-memory signature holds a frozenset, whose repr order
        varies across processes (PYTHONHASHSEED); the store key sorts it
        so every process addressing the same signature hits the same
        bucket entry.
        """
        effective, token_set, k = signature
        return f"sig:{(effective, tuple(sorted(token_set)), k)!r}"

    # -- cache IO accounting ---------------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        """Batched-path ranking lookups served from cache (dict or store)."""
        return self._cache_hits

    @property
    def cache_misses(self) -> int:
        """Batched-path ranking lookups that had to compute."""
        return self._cache_misses

    @property
    def cache_loads(self) -> int:
        """Successful cache loads (legacy file reads + store attaches)."""
        return self._cache_loads

    @property
    def cache_saves(self) -> int:
        """Successful cache saves (legacy file writes + store flushes)."""
        return self._cache_saves

    @property
    def cache_load_bytes(self) -> int:
        """Bytes read to warm this engine, monotone across (de)attaches."""
        store = self._results_store
        return self._legacy_load_bytes + (store.loaded_bytes if store else 0)

    @property
    def cache_save_bytes(self) -> int:
        """Bytes written persisting this engine's caches."""
        return self._cache_save_bytes

    def _ranked_results(self, query: str, k: int) -> list[SearchResult]:
        """Top-*k* results, cached per token signature.

        Ranking depends only on the effective token sequence and snippet
        extraction only on the query token set, so queries differing in
        digits, punctuation or filtered words (``"Melisse #1"`` versus
        ``"Melisse #2"``) share one computation.
        """
        query_tokens = tokenize(query)
        effective = self._filter_tokens(query_tokens)
        signature = (tuple(effective), frozenset(query_tokens), k)
        cached = self._results_cache.get(signature)
        store = self._results_store
        if cached is None and store is not None:
            cached = store.get(self._signature_key(signature))
            if cached is not None:
                self._results_cache[signature] = cached
        if cached is not None:
            self._cache_hits += 1
            return cached
        self._cache_misses += 1
        if self._norms is None and store is not None:
            self._norms = store.get("norms")
        if self._norms is None:
            self._norms = bm25_norms(self._index, self.parameters)
        matched, scores = bm25_matched_scores(
            self._index, effective, self.parameters, norms=self._norms
        )
        results: list[SearchResult] = []
        if matched.size:
            # Deterministic order: score descending, then doc id ascending.
            order = matched[np.lexsort((matched, -scores))]
            token_set = signature[1]
            for doc_id in order:
                page = self._index.page(int(doc_id))
                if page.language != "en":
                    continue
                results.append(
                    SearchResult(
                        url=page.url,
                        title=page.title,
                        snippet=self._snippet_for(int(doc_id), token_set),
                    )
                )
                if len(results) == k:
                    break
        self._results_cache[signature] = results
        return results

    def _effective_tokens(self, query: str) -> list[str]:
        """Query tokens minus stopwords and ubiquitous terms."""
        return self._filter_tokens(tokenize(query))

    def _filter_tokens(self, tokens: list[str]) -> list[str]:
        """Stopword and document-frequency filtering of query tokens."""
        tokens = [t for t in tokens if t not in ENGLISH_STOPWORDS]
        n_docs = self._index.n_documents
        if n_docs == 0:
            return tokens
        cap = MAX_DF_RATIO * n_docs
        filtered = [
            t for t in tokens if self._index.document_frequency(t) <= cap
        ]
        # If the cap removed everything, keep the original tokens: a query
        # made only of common words should still return *something*.
        return filtered or tokens

    # -- amortised snippet extraction -----------------------------------------------------

    def _snippet_for(
        self,
        doc_id: int,
        query_tokens: frozenset[str],
        max_words: int = DEFAULT_SNIPPET_WORDS,
    ) -> str:
        """Query-biased snippet of an indexed page, amortised across queries.

        Produces byte-identical output to
        :func:`repro.web.snippets.extract_snippet` but tokenises each body
        word at most once ever (and each distinct word string once across
        all pages): the body's per-token word positions are cached on
        first use, and each query then marks its hit positions and takes
        the best window with a cumulative-sum sweep.
        """
        entry = self._page_windows.get(doc_id)
        store = self._results_store
        if entry is None and store is not None:
            entry = store.get(f"win:{doc_id}")
            if entry is not None:
                self._page_windows[doc_id] = entry
        if entry is None:
            words = self._index.page(doc_id).body.split()
            word_tokens = self._word_tokens
            by_token: dict[str, list[int]] = {}
            for position, word in enumerate(words):
                tokens = word_tokens.get(word)
                if tokens is None and store is not None:
                    tokens = store.get(f"tok:{word}")
                if tokens is None:
                    tokens = tuple(tokenize(word))
                word_tokens[word] = tokens
                for token in tokens:
                    by_token.setdefault(token, []).append(position)
            entry = (words, by_token)
            self._page_windows[doc_id] = entry
        words, positions = entry
        n_words = len(words)
        if n_words <= max_words:
            return " ".join(words)
        hits = None
        for token in query_tokens:
            token_positions = positions.get(token)
            if token_positions is None:
                continue
            if hits is None:
                hits = bytearray(n_words)
            for position in token_positions:
                hits[position] = 1
        if hits is None:
            # No query token in the body: the leading window wins.
            best_start = 0
        else:
            best_start = best_window_start(hits, n_words, max_words)
        return render_window(words, best_start, max_words)
