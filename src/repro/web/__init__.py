"""Web-search substrate: the Microsoft Bing stand-in (Section 5.2).

The annotation step submits a cell's content to a search engine and
consumes the top-k results, "each consisting of a link to a Web page, its
title and a short summary of its content, often referred to as a snippet.
Only results in English are considered."  This package provides that
contract over a synthetic corpus:

* :mod:`repro.web.documents` -- the page model;
* :mod:`repro.web.index` -- an inverted index with term statistics;
* :mod:`repro.web.ranking` -- BM25 scoring;
* :mod:`repro.web.snippets` -- query-biased snippet extraction;
* :mod:`repro.web.search` -- the engine facade with top-k results, an
  English-only filter, a virtual-latency model and failure injection.
"""

from repro.web.documents import WebPage
from repro.web.index import InvertedIndex
from repro.web.ranking import BM25Parameters, bm25_scores
from repro.web.search import SearchEngine, SearchEngineUnavailable, SearchResult
from repro.web.snippets import extract_snippet

__all__ = [
    "BM25Parameters",
    "InvertedIndex",
    "SearchEngine",
    "SearchEngineUnavailable",
    "SearchResult",
    "WebPage",
    "bm25_scores",
    "extract_snippet",
]
