"""An indexed store of (subject, predicate, object) triples."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True)
class Triple:
    """One RDF-style statement.  All three terms are plain strings."""

    subject: str
    predicate: str
    object: str


class TripleStore:
    """Set-semantics triple store with per-position hash indexes.

    Pattern matching treats ``None`` as a wildcard, so
    ``store.match(None, "rdf:type", "Museum")`` returns every museum triple.
    All match results are sorted for deterministic iteration.
    """

    def __init__(self) -> None:
        self._triples: set[Triple] = set()
        self._by_subject: dict[str, set[Triple]] = {}
        self._by_predicate: dict[str, set[Triple]] = {}
        self._by_object: dict[str, set[Triple]] = {}

    # -- mutation ----------------------------------------------------------------

    def add(self, subject: str, predicate: str, obj: str) -> Triple:
        """Insert one triple (idempotent); returns it."""
        triple = Triple(subject, predicate, obj)
        if triple not in self._triples:
            self._triples.add(triple)
            self._by_subject.setdefault(subject, set()).add(triple)
            self._by_predicate.setdefault(predicate, set()).add(triple)
            self._by_object.setdefault(obj, set()).add(triple)
        return triple

    def add_all(self, triples: Iterable[tuple[str, str, str]]) -> None:
        """Insert many ``(s, p, o)`` tuples."""
        for subject, predicate, obj in triples:
            self.add(subject, predicate, obj)

    # -- querying -------------------------------------------------------------------

    def match(
        self,
        subject: str | None = None,
        predicate: str | None = None,
        obj: str | None = None,
    ) -> list[Triple]:
        """All triples matching the pattern; ``None`` is a wildcard."""
        candidate_sets = []
        if subject is not None:
            candidate_sets.append(self._by_subject.get(subject, set()))
        if predicate is not None:
            candidate_sets.append(self._by_predicate.get(predicate, set()))
        if obj is not None:
            candidate_sets.append(self._by_object.get(obj, set()))
        if not candidate_sets:
            matches = self._triples
        else:
            matches = set.intersection(*candidate_sets)
        return sorted(matches, key=lambda t: (t.subject, t.predicate, t.object))

    def objects(self, subject: str, predicate: str) -> list[str]:
        """Objects of all ``(subject, predicate, ?)`` triples, sorted."""
        return [t.object for t in self.match(subject=subject, predicate=predicate)]

    def subjects(self, predicate: str, obj: str) -> list[str]:
        """Subjects of all ``(?, predicate, obj)`` triples, sorted."""
        return [t.subject for t in self.match(predicate=predicate, obj=obj)]

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(
            sorted(self._triples, key=lambda t: (t.subject, t.predicate, t.object))
        )
