"""The DBpedia category network (Figure 6).

Categories form a directed graph whose edges express containment: an edge
from "Museums" to "Museums in Europe" means the former *contains* the
latter.  The network is a graph rather than a tree (a category may have
several parents) and may in principle contain cycles, so traversal is
visited-set guarded.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.text.porter import stem
from repro.text.tokenization import tokenize


class CategoryNetwork:
    """Directed containment graph over category names."""

    def __init__(self) -> None:
        self._children: dict[str, set[str]] = {}
        self._parents: dict[str, set[str]] = {}

    # -- construction ---------------------------------------------------------

    def add_category(self, name: str) -> None:
        """Register a category (idempotent)."""
        if not name:
            raise ValueError("category name must be non-empty")
        self._children.setdefault(name, set())
        self._parents.setdefault(name, set())

    def add_containment(self, parent: str, child: str) -> None:
        """Record that *parent* contains *child*; registers both."""
        if parent == child:
            raise ValueError(f"category {parent!r} cannot contain itself")
        self.add_category(parent)
        self.add_category(child)
        self._children[parent].add(child)
        self._parents[child].add(parent)

    # -- structure queries -------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._children

    def __len__(self) -> int:
        return len(self._children)

    def categories(self) -> list[str]:
        """All category names, sorted."""
        return sorted(self._children)

    def children(self, name: str) -> list[str]:
        """Direct subcategories of *name*, sorted."""
        self._require(name)
        return sorted(self._children[name])

    def parents(self, name: str) -> list[str]:
        """Direct containers of *name*, sorted."""
        self._require(name)
        return sorted(self._parents[name])

    def roots(self) -> list[str]:
        """Categories with no parent, sorted."""
        return sorted(name for name, parents in self._parents.items() if not parents)

    def _require(self, name: str) -> None:
        if name not in self._children:
            raise KeyError(f"unknown category: {name!r}")

    # -- traversal ------------------------------------------------------------------

    def descendants(self, root: str, max_depth: int | None = None) -> list[str]:
        """All subcategories reachable from *root* (excluded), BFS order.

        This is the visit the paper performs "by iterating a SPARQL query on
        each subcategory of the root".  ``max_depth`` bounds the traversal;
        ``None`` means unbounded.  Cycle-safe.
        """
        self._require(root)
        visited: set[str] = {root}
        order: list[str] = []
        queue: deque[tuple[str, int]] = deque([(root, 0)])
        while queue:
            current, depth = queue.popleft()
            if max_depth is not None and depth >= max_depth:
                continue
            for child in sorted(self._children[current]):
                if child not in visited:
                    visited.add(child)
                    order.append(child)
                    queue.append((child, depth + 1))
        return order

    def subtree(self, root: str, max_depth: int | None = None) -> list[str]:
        """*root* plus its descendants."""
        return [root, *self.descendants(root, max_depth=max_depth)]

    def filter_by_type_name(
        self, categories: Iterable[str], type_name: str
    ) -> list[str]:
        """The paper's pruning heuristic (Section 5.2.1).

        Keeps only the categories whose name contains *type_name*: under
        root "Museums", the noisy subcategory "Curators" is dropped while
        "History museums in France" survives.  Matching is on Porter stems
        so the singular type word matches pluralised category names
        ("university" matches "Universities in Europe").
        """
        needle = stem(type_name.lower())
        kept = []
        for name in categories:
            stems = {stem(token) for token in tokenize(name)}
            if needle in stems:
                kept.append(name)
        return kept
