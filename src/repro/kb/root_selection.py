"""Automatic root-category selection (the paper's scalability future work).

Section 6.4: "our algorithm is fully automatic except for the selection of
the category in DBpedia that best represents a type of entities ...  if we
intended to use our algorithm for annotating entities of any type in
Probase, which includes up to two million types, we would need a way to
automatically select the category that best represents a type."

This module implements that selection.  A candidate root must *name* the
type (stem match on the category name); among candidates, prefer the one
whose subtree -- pruned by the usual name heuristic -- contains the most
entities, breaking ties toward the shallower/shorter name (the more
general category).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kb.knowledge_base import KnowledgeBase
from repro.text.porter import stem
from repro.text.tokenization import tokenize


@dataclass(frozen=True)
class RootCandidate:
    """One scored candidate root category."""

    category: str
    n_entities: int
    n_kept_subcategories: int


def candidate_roots(kb: KnowledgeBase, type_word: str) -> list[RootCandidate]:
    """All categories naming *type_word*, scored by pruned-subtree yield."""
    needle = stem(type_word.lower())
    candidates = []
    for category in kb.categories.categories():
        stems = {stem(token) for token in tokenize(category)}
        if needle not in stems:
            continue
        kept = kb.positive_categories(category, type_word)
        entities = kb.entities_in_categories(kept)
        candidates.append(
            RootCandidate(
                category=category,
                n_entities=len(entities),
                n_kept_subcategories=len(kept) - 1,
            )
        )
    candidates.sort(
        key=lambda c: (-c.n_entities, -c.n_kept_subcategories, len(c.category),
                       c.category)
    )
    return candidates


def select_root(kb: KnowledgeBase, type_word: str) -> str | None:
    """The best root category for *type_word*, or ``None`` when nothing names it.

    >>> # select_root(kb, "museum") -> "Museums"
    """
    candidates = candidate_roots(kb, type_word)
    if not candidates:
        return None
    best = candidates[0]
    if best.n_entities == 0:
        return None
    return best.category
