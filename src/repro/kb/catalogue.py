"""Pre-compiled entity catalogues (the substrate our algorithm does *not* need).

State-of-the-art annotators (Limaye et al. and others; Section 2) look
entities up in a finite catalogue mapping names to types.  This module
provides such a catalogue so that (a) the Limaye-style baseline of the
Section 6.3 comparison has something to annotate from and (b) the paper's
introduction claim -- only 22 % of the entities in the table corpus appear
in Yago / DBpedia / Freebase -- can be measured (experiment X1).
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.kb.knowledge_base import KnowledgeBase

_WHITESPACE_RE = re.compile(r"\s+")
_PUNCT_RE = re.compile(r"[^\w\s]")


def normalize_name(name: str) -> str:
    """Case-fold, strip punctuation and collapse whitespace.

    Catalogue lookups must survive superficial formatting differences
    between a table cell and a knowledge-base label.

    >>> normalize_name("  The Louvre,  Museum! ")
    'the louvre museum'
    """
    lowered = _PUNCT_RE.sub(" ", name.lower())
    return _WHITESPACE_RE.sub(" ", lowered).strip()


class Catalogue:
    """A finite name -> types mapping with normalised lookups."""

    def __init__(self, name: str = "catalogue") -> None:
        self.name = name
        self._types_by_name: dict[str, set[str]] = {}
        self._size = 0

    # -- construction ---------------------------------------------------------------

    def add(self, entity_name: str, entity_type: str) -> None:
        """Register that *entity_name* can denote an entity of *entity_type*."""
        key = normalize_name(entity_name)
        if not key:
            raise ValueError("entity name normalises to the empty string")
        bucket = self._types_by_name.setdefault(key, set())
        if entity_type not in bucket:
            bucket.add(entity_type)
            self._size += 1

    @classmethod
    def from_knowledge_base(
        cls, kb: KnowledgeBase, name: str | None = None
    ) -> "Catalogue":
        """Compile every KB entity into a catalogue (the Limaye substrate)."""
        catalogue = cls(name=name or f"{kb.name}-catalogue")
        for entity in kb.entities():
            catalogue.add(entity.name, entity.entity_type)
        return catalogue

    def merge(self, other: "Catalogue") -> "Catalogue":
        """New catalogue holding the union of both (the 'merge catalogues'
        option the introduction discusses and discounts)."""
        merged = Catalogue(name=f"{self.name}+{other.name}")
        for source in (self, other):
            for key, types in source._types_by_name.items():
                for entity_type in types:
                    merged._types_by_name.setdefault(key, set()).add(entity_type)
        merged._size = sum(len(v) for v in merged._types_by_name.values())
        return merged

    # -- lookup ------------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of distinct (name, type) pairs."""
        return self._size

    def __contains__(self, entity_name: str) -> bool:
        return normalize_name(entity_name) in self._types_by_name

    def types_of(self, entity_name: str) -> set[str]:
        """Known types for *entity_name* (empty set when unknown)."""
        return set(self._types_by_name.get(normalize_name(entity_name), set()))

    def coverage(self, names: Iterable[str]) -> float:
        """Fraction of *names* present in the catalogue (experiment X1).

        The paper: "only 22 % of the entities in our dataset of tables are
        actually represented in either Yago, DBpedia or Freebase."
        """
        names = list(names)
        if not names:
            return 0.0
        hits = sum(1 for name in names if name in self)
        return hits / len(names)
