"""A small SPARQL-like SELECT evaluator over a :class:`TripleStore`.

Supports the fragment the training procedure needs (Section 5.2.1 iterates
a SPARQL query over subcategories)::

    SELECT ?x [?y ...] WHERE { pattern . pattern . ... }

where each pattern is three terms; a term is either a variable (``?name``)
or a constant (optionally quoted with ``"`` or wrapped in ``<`` ``>``).
Evaluation is a left-to-right nested-loop join with variable bindings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.kb.triples import TripleStore


class SparqlError(ValueError):
    """Raised for malformed queries."""


@dataclass(frozen=True)
class Pattern:
    """One triple pattern; each term is a constant or a ``?variable``."""

    subject: str
    predicate: str
    object: str

    def terms(self) -> tuple[str, str, str]:
        return self.subject, self.predicate, self.object


_QUERY_RE = re.compile(
    r"^\s*select\s+(?P<vars>(?:\?\w+\s*)+)\s*where\s*\{(?P<body>.*)\}\s*$",
    re.IGNORECASE | re.DOTALL,
)


def _is_variable(term: str) -> bool:
    return term.startswith("?")


def _strip_constant(term: str) -> str:
    if len(term) >= 2 and term[0] == '"' and term[-1] == '"':
        return term[1:-1]
    if len(term) >= 2 and term[0] == "<" and term[-1] == ">":
        return term[1:-1]
    return term


_TERM_RE = re.compile(r'"[^"]*"|<[^>]*>|\?\w+|\S+')


def parse_query(query: str) -> tuple[list[str], list[Pattern]]:
    """Parse a SELECT query into (projection variables, patterns)."""
    match = _QUERY_RE.match(query)
    if match is None:
        raise SparqlError(f"cannot parse query: {query!r}")
    variables = match.group("vars").split()
    patterns = []
    body = match.group("body").strip()
    if not body:
        raise SparqlError("WHERE block must contain at least one pattern")
    for chunk in body.split("."):
        chunk = chunk.strip()
        if not chunk:
            continue
        terms = _TERM_RE.findall(chunk)
        if len(terms) != 3:
            raise SparqlError(f"pattern must have three terms: {chunk!r}")
        patterns.append(Pattern(*terms))
    if not patterns:
        raise SparqlError("WHERE block must contain at least one pattern")
    pattern_vars = {
        term
        for pattern in patterns
        for term in pattern.terms()
        if _is_variable(term)
    }
    for variable in variables:
        if variable not in pattern_vars:
            raise SparqlError(f"projected variable {variable} is never bound")
    return variables, patterns


def select(store: TripleStore, query: str) -> list[tuple[str, ...]]:
    """Evaluate *query* against *store*; rows are tuples of bound values.

    Results are deduplicated and sorted, giving SPARQL's ``SELECT DISTINCT``
    semantics with a deterministic order.
    """
    variables, patterns = parse_query(query)
    bindings: list[dict[str, str]] = [{}]
    for pattern in patterns:
        next_bindings: list[dict[str, str]] = []
        for binding in bindings:
            resolved = []
            for term in pattern.terms():
                if _is_variable(term):
                    resolved.append(binding.get(term))
                else:
                    resolved.append(_strip_constant(term))
            for triple in store.match(*resolved):
                new_binding = dict(binding)
                consistent = True
                for term, value in zip(
                    pattern.terms(), (triple.subject, triple.predicate, triple.object)
                ):
                    if _is_variable(term):
                        bound = new_binding.get(term)
                        if bound is None:
                            new_binding[term] = value
                        elif bound != value:
                            consistent = False
                            break
                if consistent:
                    next_bindings.append(new_binding)
        bindings = next_bindings
        if not bindings:
            return []
    rows = {tuple(binding[v] for v in variables) for binding in bindings}
    return sorted(rows)
