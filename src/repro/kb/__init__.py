"""Knowledge-base substrate: the DBpedia stand-in (Section 5.2.1).

The paper uses DBpedia for exactly one job -- building classifier training
sets: pick a root category ("Museums"), traverse its subcategory network,
keep subcategories whose name contains the type name, and sample entities
from the surviving categories.  This package provides the pieces:

* :mod:`repro.kb.triples` -- an indexed RDF-style triple store;
* :mod:`repro.kb.categories` -- the category network of Figure 6;
* :mod:`repro.kb.sparql` -- a small SPARQL-like pattern-query evaluator
  (the paper iterates a SPARQL query over subcategories);
* :mod:`repro.kb.knowledge_base` -- entities + categories + triples;
* :mod:`repro.kb.catalogue` -- a pre-compiled entity catalogue, the
  substrate of the Limaye-style baseline and of the 22 %-coverage claim.
"""

from repro.kb.catalogue import Catalogue, normalize_name
from repro.kb.categories import CategoryNetwork
from repro.kb.knowledge_base import Entity, KnowledgeBase
from repro.kb.root_selection import candidate_roots, select_root
from repro.kb.sparql import SparqlError, select
from repro.kb.triples import Triple, TripleStore

__all__ = [
    "Catalogue",
    "CategoryNetwork",
    "Entity",
    "KnowledgeBase",
    "SparqlError",
    "Triple",
    "TripleStore",
    "candidate_roots",
    "normalize_name",
    "select",
    "select_root",
]
