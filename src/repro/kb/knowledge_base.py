"""The DBpedia stand-in: typed entities organised in a category network.

Entities carry a URI, a display name, a fine-grained type and the set of
categories they belong to.  Every fact is mirrored into a
:class:`~repro.kb.triples.TripleStore` under DBpedia-flavoured predicates
(``rdf:type``, ``rdfs:label``, ``dcterms:subject``, ``skos:broader``) so the
mini-SPARQL interface works exactly as the paper's training procedure
expects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.kb.categories import CategoryNetwork
from repro.kb.sparql import select
from repro.kb.triples import TripleStore

RDF_TYPE = "rdf:type"
RDFS_LABEL = "rdfs:label"
DCTERMS_SUBJECT = "dcterms:subject"
SKOS_BROADER = "skos:broader"


@dataclass(frozen=True)
class Entity:
    """One knowledge-base entity."""

    uri: str
    name: str
    entity_type: str
    categories: frozenset[str] = field(default_factory=frozenset)


class KnowledgeBase:
    """Entities + category network + triples, with DBpedia-style accessors."""

    def __init__(self, name: str = "dbpedia") -> None:
        self.name = name
        self.categories = CategoryNetwork()
        self.triples = TripleStore()
        self._entities: dict[str, Entity] = {}
        self._by_category: dict[str, set[str]] = {}
        self._by_type: dict[str, set[str]] = {}

    # -- construction -------------------------------------------------------------

    def add_category(self, name: str, parent: str | None = None) -> None:
        """Register a category, optionally under *parent*."""
        if parent is None:
            self.categories.add_category(name)
        else:
            self.categories.add_containment(parent, name)
            self.triples.add(name, SKOS_BROADER, parent)

    def add_entity(
        self,
        uri: str,
        name: str,
        entity_type: str,
        categories: Iterable[str] = (),
    ) -> Entity:
        """Register an entity; its categories are auto-registered."""
        if uri in self._entities:
            raise ValueError(f"duplicate entity uri: {uri!r}")
        category_set = frozenset(categories)
        entity = Entity(
            uri=uri, name=name, entity_type=entity_type, categories=category_set
        )
        self._entities[uri] = entity
        self._by_type.setdefault(entity_type, set()).add(uri)
        self.triples.add(uri, RDF_TYPE, entity_type)
        self.triples.add(uri, RDFS_LABEL, name)
        for category in category_set:
            self.categories.add_category(category)
            self._by_category.setdefault(category, set()).add(uri)
            self.triples.add(uri, DCTERMS_SUBJECT, category)
        return entity

    # -- entity access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entities)

    def __contains__(self, uri: str) -> bool:
        return uri in self._entities

    def get(self, uri: str) -> Entity:
        """Entity by URI; raises ``KeyError`` when absent."""
        if uri not in self._entities:
            raise KeyError(f"unknown entity uri: {uri!r}")
        return self._entities[uri]

    def entities(self) -> list[Entity]:
        """All entities, sorted by URI."""
        return [self._entities[uri] for uri in sorted(self._entities)]

    def entities_of_type(self, entity_type: str) -> list[Entity]:
        """Entities with the given fine-grained type, sorted by URI."""
        uris = self._by_type.get(entity_type, set())
        return [self._entities[uri] for uri in sorted(uris)]

    def entities_in_category(self, category: str) -> list[Entity]:
        """Entities directly in *category*, sorted by URI."""
        uris = self._by_category.get(category, set())
        return [self._entities[uri] for uri in sorted(uris)]

    def entities_in_categories(self, categories: Iterable[str]) -> list[Entity]:
        """Deduplicated union over several categories, sorted by URI."""
        uris: set[str] = set()
        for category in categories:
            uris.update(self._by_category.get(category, set()))
        return [self._entities[uri] for uri in sorted(uris)]

    # -- the Section 5.2.1 category walk ------------------------------------------------

    def positive_categories(self, root: str, type_name: str) -> list[str]:
        """Categories that should contain positive entities of *type_name*.

        Visits the category network under *root* (the manually chosen root,
        e.g. "Museums"), then applies the pruning heuristic: keep only
        subcategories whose name contains the type name.  The root itself is
        always kept -- it was chosen manually.
        """
        subtree = self.categories.descendants(root)
        kept = self.categories.filter_by_type_name(subtree, type_name)
        return [root, *kept]

    def positive_entities(self, root: str, type_name: str) -> list[Entity]:
        """Entities in the positive categories of (*root*, *type_name*)."""
        return self.entities_in_categories(self.positive_categories(root, type_name))

    def subcategories_sparql(self, category: str) -> list[str]:
        """Direct subcategories via the SPARQL interface (as the paper does)."""
        rows = select(
            self.triples, f'SELECT ?c WHERE {{ ?c skos:broader "{category}" }}'
        )
        return [row[0] for row in rows]
