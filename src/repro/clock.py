"""Virtual time accounting for simulated remote services.

Section 6.4 reports that the algorithm's running time "is dominated by the
latency time required to connect to the search engine and ... the Google
Geocoding service" at roughly 0.5 seconds per table row.  Our substitutes
are in-process and effectively free, so they *charge* their configured
latency to a shared :class:`VirtualClock` instead of sleeping.  The
efficiency experiment then reports virtual seconds, reproducing the paper's
latency-dominated cost model while the benchmark itself runs in real
milliseconds.
"""

from __future__ import annotations


class VirtualClock:
    """Monotonic virtual clock; services call :meth:`charge` per request."""

    def __init__(self) -> None:
        self._elapsed = 0.0
        self._charges = 0

    @property
    def elapsed_seconds(self) -> float:
        """Total virtual time charged so far."""
        return self._elapsed

    @property
    def n_charges(self) -> int:
        """Number of individual charges (i.e. simulated remote calls)."""
        return self._charges

    def charge(self, seconds: float) -> None:
        """Advance virtual time by *seconds* (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        self._elapsed += seconds
        self._charges += 1

    def wait(self, seconds: float) -> None:
        """Advance virtual time without counting a remote call.

        Retry backoff and injected latency spikes cost virtual time but are
        not requests, so :attr:`n_charges` keeps meaning "simulated remote
        calls" for the Section 6.4 accounting.
        """
        if seconds < 0:
            raise ValueError(f"cannot wait negative time: {seconds}")
        self._elapsed += seconds

    def reset(self) -> None:
        """Zero the clock (used between experiment runs)."""
        self._elapsed = 0.0
        self._charges = 0
