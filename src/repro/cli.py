"""Command-line entry point: regenerate any paper artefact, or serve.

Usage::

    python -m repro.cli table1            # Table 1
    python -m repro.cli table2 table3     # several at once
    python -m repro.cli all               # everything
    python -m repro.cli table1 --small    # fast, reduced-scale world
    python -m repro.cli table1 --small --cache-dir .repro-cache
    python -m repro.cli throughput --workers 4 --cache-dir .repro-cache

    # frozen mmap index artifacts (shared zero-copy across processes)
    python -m repro.cli index build --small --out .repro-cache/index.reproidx
    python -m repro.cli throughput --small --workers 2 \\
        --index-backend mmap --index-artifact .repro-cache/index.reproidx

    # sharded disk cache stores (one shared copy of the warm state)
    python -m repro.cli cache build --small --cache-dir .repro-cache
    python -m repro.cli throughput --small --workers 2 \\
        --cache-backend disk --cache-dir .repro-cache
    python -m repro.cli cache compact --cache-dir .repro-cache

    # the resident annotation service
    python -m repro.cli serve --socket /tmp/repro.sock --small \\
        --cache-dir .repro-cache --batch-window-ms 25
    python -m repro.cli client ping --socket /tmp/repro.sock
    python -m repro.cli client annotate --socket /tmp/repro.sock \\
        --table my_table.json --types museum,restaurant
    python -m repro.cli client annotate --socket /tmp/repro.sock \\
        --cells "Louvre,Old Mill" --types museum,restaurant
    python -m repro.cli client metrics --socket /tmp/repro.sock
    python -m repro.cli client shutdown --socket /tmp/repro.sock

    # end-to-end tracing (see docs/architecture.md, "Observability")
    python -m repro.cli throughput --small --trace --trace-out run.jsonl
    python -m repro.cli trace summarize --in run.jsonl

The first experiment of a session pays for world construction and
classifier training; subsequent experiments reuse the cached context.
``--cache-dir`` makes the search engine's ranking caches durable: the
directory is loaded before the experiments run and saved back after, so a
*second* invocation over the same world skips the ranking/snippet cold
start (the cache is fingerprinted and ignored whenever the world differs).
``--workers N`` forwards a process count to the experiments that shard
corpora (currently ``throughput``); with ``--cache-dir`` the workers
warm-start from -- and merge-save back into -- one shared cache directory
(saves are advisory-locked, so concurrent invocations never lose entries).
``--schedule static|stealing`` picks the multi-worker scheduler
(work-stealing chunk queue by default; contiguous static shards as the
baseline) and ``--chunk-cost`` bounds the per-task cost of the stealing
queue (0 = automatic).  ``--split-giant-tables`` lets the stealing queue
cut a giant table into row-range slice tasks (byte-identical
reassembly), and ``--max-slice-cost`` bounds the per-slice cost (a
positive value implies splitting; 0 = the effective chunk cost).  ``--retries``, ``--retry-backoff-ms`` and
``--breaker-threshold`` arm the resilience layer at the search boundary
(bounded retries with deterministic backoff, a consecutive-failure
circuit breaker; both default off, preserving seed behaviour) for the
experiments that accept them and for ``serve``.

``--index-backend memory|mmap`` picks the index storage backend
(:mod:`repro.web.backends`).  ``mmap`` swaps the engine onto a frozen
on-disk artifact -- built on demand, or reused from ``--index-artifact``
/ ``<cache-dir>/index.reproidx`` when its fingerprint still matches the
world -- so every worker process and daemon on the host shares one
physical copy of the postings through the OS page cache instead of
pickling or duplicating the index per process.  ``index build`` writes
that artifact explicitly (same ``--small``/``--seed`` world knobs), so
fleets can pay the compaction once up front.

``--cache-backend memory|disk`` does the same for the *cache* layer
(:mod:`repro.persistence`).  ``memory`` (default) keeps the historical
pickled-dict cache files, loaded whole into every process; ``disk``
persists the ranking caches and the label memo in sharded on-disk
stores under ``--cache-dir`` that workers and daemons open *shared* --
a warm start reads only each store's manifest and append log, and a
grown corpus appends new entries instead of rewriting the world.
``cache build`` seeds those stores up front and ``cache compact`` folds
their append logs into the hash buckets (rewriting only the buckets the
log touches).

``serve`` keeps the warm engine resident: one process pays the cold start,
then any number of ``client`` invocations (or :class:`ServiceClient`
users) annotate against it, with concurrent requests micro-batched into
pooled corpus passes.  A ``Ctrl-C``/``SIGTERM`` anywhere -- serving, or
mid-experiment with ``--workers N`` -- flushes the accumulated cache
warmth before exiting with code 130.
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import signal
import sys
import time
from pathlib import Path
from typing import Callable

from repro.core.config import CACHE_BACKENDS, INDEX_BACKENDS, SCHEDULES
from repro.eval import ablation, experiments, extensions
from repro.observability.tracing import span
from repro.synth.world import WorldConfig

SIGINT_EXIT_CODE = 130
"""Conventional 128+SIGINT exit status for interrupted invocations."""

_EXPERIMENTS: dict[str, Callable] = {
    "table1": experiments.run_table1,
    "table2": experiments.run_table2,
    "table3": experiments.run_table3,
    "comparison": experiments.run_comparison,
    "efficiency": experiments.run_efficiency,
    "throughput": experiments.run_throughput,
    "coverage": experiments.run_coverage,
    "figure6": experiments.run_figure6,
    "figure7": experiments.run_figure7,
    "ablation-repetition": ablation.run_repetition_ablation,
    "ablation-topk": ablation.run_topk_ablation,
    "hybrid": extensions.run_hybrid,
    "clustering": extensions.run_clustering,
    "giuliano": extensions.run_giuliano,
}


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiments (or the service subcommands)."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "client":
        return _client_main(argv[1:])
    if argv and argv[0] == "index":
        return _index_main(argv[1:])
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=[*_EXPERIMENTS, "all"],
        help="which artefacts to regenerate",
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="use the reduced-scale world (fast; for smoke-testing)",
    )
    parser.add_argument(
        "--seed", type=int, default=13, help="world seed (default 13)"
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help=(
            "directory for persistable engine caches; loaded before the "
            "experiments and saved back after, so a second invocation "
            "starts warm (safe to share between concurrent invocations: "
            "saves are merge-on-save under an advisory lock)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes for corpus-level experiments that support "
            "sharding (forwarded to experiments accepting a 'workers' "
            "argument, e.g. throughput); each worker warm-starts from "
            "--cache-dir when given (default 1: sequential)"
        ),
    )
    parser.add_argument(
        "--schedule",
        choices=list(SCHEDULES),
        default="stealing",
        help=(
            "how multi-worker experiments place work on the pool: "
            "'stealing' (default) enqueues cost-bounded chunk tasks that "
            "idle workers pull as they finish (skew-tolerant); 'static' "
            "keeps contiguous near-equal shards, one per worker"
        ),
    )
    parser.add_argument(
        "--chunk-cost",
        type=int,
        default=0,
        help=(
            "cost budget per work-stealing chunk task, in estimated "
            "cells (rows x columns); 0 (default) sizes chunks "
            "automatically at about four tasks per worker"
        ),
    )
    parser.add_argument(
        "--split-giant-tables",
        action="store_true",
        help=(
            "let the work-stealing queue cut a table costing more than "
            "the slice budget into row-range slice tasks, annotated "
            "independently and reassembled byte-identically (ignored "
            "under --schedule static)"
        ),
    )
    parser.add_argument(
        "--max-slice-cost",
        type=int,
        default=0,
        help=(
            "cost budget per row-range slice task, in estimated cells; "
            "a positive value also enables splitting, 0 (default) sizes "
            "slices to the effective chunk cost target when "
            "--split-giant-tables is set"
        ),
    )
    _add_resilience_arguments(parser)
    _add_index_backend_arguments(parser)
    _add_cache_backend_arguments(parser)
    _add_trace_arguments(parser)
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.cache_buckets < 1:
        parser.error(f"--cache-buckets must be >= 1, got {args.cache_buckets}")
    if args.chunk_cost < 0:
        parser.error(f"--chunk-cost must be >= 0, got {args.chunk_cost}")
    if args.max_slice_cost < 0:
        parser.error(
            f"--max-slice-cost must be >= 0, got {args.max_slice_cost}"
        )
    if args.retries < 0:
        parser.error(f"--retries must be >= 0, got {args.retries}")
    if args.retry_backoff_ms < 0:
        parser.error(
            f"--retry-backoff-ms must be >= 0, got {args.retry_backoff_ms}"
        )
    if args.breaker_threshold < 0:
        parser.error(
            f"--breaker-threshold must be >= 0, got {args.breaker_threshold}"
        )
    names = list(_EXPERIMENTS) if "all" in args.experiments else args.experiments
    config = (
        WorldConfig.small(seed=args.seed)
        if args.small
        else WorldConfig(seed=args.seed)
    )
    tracing_on = args.trace or args.trace_out is not None
    if tracing_on:
        from repro.observability import tracing

        trace_id = tracing.enable_tracing()
        print(f"[tracing enabled: trace {trace_id}]", file=sys.stderr)
    start = time.time()
    context = experiments.build_context(config)
    if tracing_on:
        # Spans record virtual time alongside wall time from here on.
        tracing.set_clock(context.world.clock)
    print(
        f"[context ready in {time.time() - start:.1f}s: "
        f"{context.world.page_count} pages, "
        f"{len(context.gft.tables)} GFT tables, "
        f"{len(context.wiki.tables)} wiki tables]\n",
        file=sys.stderr,
    )
    artifact_path = _apply_index_backend(
        context.world.search_engine,
        args.index_backend,
        args.index_artifact,
        args.cache_dir,
    )
    if artifact_path is not None:
        print(
            f"[index backend mmap: serving from {artifact_path}]\n",
            file=sys.stderr,
        )
    engine_cache = None
    if args.cache_dir is not None and args.cache_backend == "disk":
        # Sharded disk store: attach shared, probe-on-miss; the warm
        # state stays on disk instead of being loaded whole up front.
        from repro.core.annotator import ENGINE_CACHE_STORE
        from repro.persistence import open_cache_store

        engine = context.world.search_engine
        store = open_cache_store(
            "disk",
            args.cache_dir / ENGINE_CACHE_STORE,
            kind="search-results",
            fingerprint=engine.cache_fingerprint(),
            n_buckets=args.cache_buckets,
        )
        engine.attach_results_store(store)
        print(
            f"[engine cache store "
            f"{'warm from' if store.has_entries() else 'cold; will flush to'} "
            f"{store.path}]\n",
            file=sys.stderr,
        )
    elif args.cache_dir is not None:
        engine_cache = args.cache_dir / "search_results.cache"
        loaded = context.world.search_engine.load_results_cache(engine_cache)
        print(
            f"[engine cache {'warm from' if loaded else 'cold; will save to'} "
            f"{engine_cache}]\n",
            file=sys.stderr,
        )
    interrupted = False
    try:
        for name in names:
            start = time.time()
            runner = _EXPERIMENTS[name]
            kwargs = {}
            parameters = inspect.signature(runner).parameters
            if "workers" in parameters:
                kwargs["workers"] = args.workers
            if "schedule" in parameters:
                kwargs["schedule"] = args.schedule
            if "chunk_cost_target" in parameters:
                kwargs["chunk_cost_target"] = args.chunk_cost
            if "split_giant_tables" in parameters:
                kwargs["split_giant_tables"] = args.split_giant_tables
            if "max_slice_cost" in parameters:
                kwargs["max_slice_cost"] = args.max_slice_cost
            if "retries" in parameters:
                kwargs["retries"] = args.retries
            if "retry_backoff_ms" in parameters:
                kwargs["retry_backoff_ms"] = args.retry_backoff_ms
            if "breaker_threshold" in parameters:
                kwargs["breaker_threshold"] = args.breaker_threshold
            if "index_backend" in parameters:
                kwargs["index_backend"] = args.index_backend
            if "cache_backend" in parameters:
                kwargs["cache_backend"] = args.cache_backend
            if "cache_buckets" in parameters:
                kwargs["cache_buckets"] = args.cache_buckets
            with span("cli.experiment", experiment=name):
                result = runner(context, **kwargs)
            print(result.render())
            print(f"[{name} in {time.time() - start:.1f}s]\n", file=sys.stderr)
    except KeyboardInterrupt:
        # Graceful interruption: the parallel driver has already flushed
        # its workers' caches (see repro.core.parallel); flush whatever
        # warmth this process accumulated too, then report 130.
        interrupted = True
        print("\n[interrupted; flushing caches]", file=sys.stderr)
    if engine_cache is not None:
        context.world.search_engine.save_results_cache(engine_cache)
        print(f"[engine cache saved to {engine_cache}]", file=sys.stderr)
    elif context.world.search_engine.results_store is not None:
        store = context.world.search_engine.results_store
        written = context.world.search_engine.flush_results_store()
        if written is not None:
            print(
                f"[engine cache store appended {written} bytes at "
                f"{store.path}]",
                file=sys.stderr,
            )
    if tracing_on:
        spans = tracing.get_buffer().snapshot()
        if args.trace_out is not None:
            count = tracing.get_buffer().export_jsonl(str(args.trace_out))
            print(
                f"[trace {trace_id}: {count} span(s) written to "
                f"{args.trace_out}]",
                file=sys.stderr,
            )
        print(
            _render_trace_table(tracing.summarize(spans)), file=sys.stderr
        )
    return SIGINT_EXIT_CODE if interrupted else 0


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    """The search-boundary resilience knobs, shared by experiments and serve."""
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help=(
            "extra search attempts per dropped request (default 0: one "
            "attempt, seed behaviour); with retries the annotator backs "
            "off exponentially on the virtual clock, marks exhausted "
            "cells degraded, and repairs them in an end-of-corpus pass"
        ),
    )
    parser.add_argument(
        "--retry-backoff-ms",
        type=float,
        default=200.0,
        help=(
            "base backoff before the first retry, in virtual "
            "milliseconds; doubles per subsequent retry (default 200)"
        ),
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=0,
        help=(
            "consecutive search failures that open the circuit breaker "
            "(fail fast until a cooldown probe succeeds); 0 (default) "
            "disables the breaker"
        ),
    )


def _add_index_backend_arguments(parser: argparse.ArgumentParser) -> None:
    """The index storage-backend knobs, shared by experiments and serve."""
    parser.add_argument(
        "--index-backend",
        choices=list(INDEX_BACKENDS),
        default="memory",
        help=(
            "index storage backend: 'memory' (default) keeps the mutable "
            "in-process inverted index; 'mmap' serves from a frozen "
            "on-disk artifact that every worker process and daemon on "
            "this host shares zero-copy through the OS page cache"
        ),
    )
    parser.add_argument(
        "--index-artifact",
        type=Path,
        default=None,
        help=(
            "artifact path for --index-backend mmap (default: "
            "<cache-dir>/index.reproidx, or a temporary directory); an "
            "existing artifact is reused when its fingerprint matches "
            "the world, rebuilt otherwise -- see 'index build'"
        ),
    )


def _add_cache_backend_arguments(parser: argparse.ArgumentParser) -> None:
    """The cache storage-backend knobs, shared by experiments and serve."""
    parser.add_argument(
        "--cache-backend",
        choices=list(CACHE_BACKENDS),
        default="memory",
        help=(
            "cache storage backend: 'memory' (default) keeps the "
            "historical pickled-dict cache files under --cache-dir; "
            "'disk' persists the ranking caches and the label memo in "
            "sharded on-disk stores that workers and daemons open "
            "shared, appending deltas instead of rewriting the world"
        ),
    )
    parser.add_argument(
        "--cache-buckets",
        type=int,
        default=64,
        help=(
            "hash buckets per sharded disk cache store (default 64; "
            "only meaningful with --cache-backend disk, and only when "
            "creating a store -- an existing store keeps its layout)"
        ),
    )


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    """The tracing knobs, shared by experiments and serve."""
    parser.add_argument(
        "--trace",
        action="store_true",
        help=(
            "record staged spans for this run (a fresh trace id is "
            "minted and propagated through pool workers); a per-stage "
            "breakdown is printed to stderr at the end"
        ),
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help=(
            "write the recorded spans to this JSONL file (implies "
            "--trace; summarise it later with 'trace summarize')"
        ),
    )


def _render_trace_table(rows) -> str:
    """Fixed-width per-stage breakdown of :func:`tracing.summarize` rows."""
    header = (
        f"{'stage':<34} {'count':>7} {'wall s':>10} {'mean ms':>9} "
        f"{'virt s':>9} {'err':>4} {'abrt':>4}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['name']:<34} {row['count']:>7} "
            f"{row['wall_seconds']:>10.3f} "
            f"{row['mean_seconds'] * 1000.0:>9.2f} "
            f"{row['virtual_seconds']:>9.2f} "
            f"{row['errors']:>4} {row['aborted']:>4}"
        )
    total_wall = sum(row["wall_seconds"] for row in rows)
    total_count = sum(row["count"] for row in rows)
    lines.append(
        f"{'total':<34} {total_count:>7} {total_wall:>10.3f}"
    )
    return "\n".join(lines)


# -- trace summaries --------------------------------------------------------------------


def _trace_main(argv: list[str]) -> int:
    """``repro.cli trace``: summarise an exported span JSONL file."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments trace",
        description=(
            "Summarise a span export (--trace-out of an experiment run, "
            "or TraceBuffer.export_jsonl) into a per-stage breakdown."
        ),
    )
    parser.add_argument(
        "action", choices=["summarize"], help="what to do with the trace"
    )
    parser.add_argument(
        "--in",
        dest="path",
        required=True,
        type=Path,
        help="span JSONL file to read",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the breakdown as JSON instead of a table",
    )
    args = parser.parse_args(argv)
    from repro.observability import tracing

    try:
        text = args.path.read_text(encoding="utf-8")
    except OSError as error:
        print(f"error: cannot read {args.path}: {error}", file=sys.stderr)
        return 1
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(json.loads(line))
    rows = tracing.summarize(spans)
    trace_ids = sorted(
        {record["trace_id"] for record in spans if record.get("trace_id")}
    )
    if args.json:
        print(
            json.dumps(
                {"traces": trace_ids, "n_spans": len(spans), "stages": rows},
                indent=2,
            )
        )
        return 0
    label = ", ".join(trace_ids) if trace_ids else "none"
    print(f"[{len(spans)} span(s) across trace(s): {label}]")
    print(_render_trace_table(rows))
    return 0


def _apply_index_backend(
    engine, index_backend: str, index_artifact, cache_dir
) -> Path | None:
    """Swap *engine* onto the frozen mmap backend when requested.

    Returns the artifact path in use, or ``None`` under the memory
    backend.  The artifact is built from the engine's current corpus
    unless a fresh one (matching fingerprint) already exists at the
    resolved path.
    """
    if index_backend != "mmap":
        return None
    from repro.web.backends import ensure_index_artifact

    if index_artifact is not None:
        path = Path(index_artifact)
    elif cache_dir is not None:
        path = Path(cache_dir) / "index.reproidx"
    else:
        import tempfile

        path = Path(tempfile.mkdtemp(prefix="repro-index-")) / "index.reproidx"
    engine.use_index_backend(ensure_index_artifact(engine.index, path))
    return path


# -- index artifacts --------------------------------------------------------------------


def _index_main(argv: list[str]) -> int:
    """``repro.cli index``: build the frozen mmap index artifact."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments index",
        description=(
            "Compact the world's inverted index into a frozen artifact "
            "that any number of processes open via mmap (used by "
            "--index-backend mmap)."
        ),
    )
    parser.add_argument(
        "action", choices=["build"], help="what to do with the artifact"
    )
    parser.add_argument(
        "--out",
        required=True,
        type=Path,
        help="artifact file to write (conventionally *.reproidx)",
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="use the reduced-scale world (fast; for smoke-testing)",
    )
    parser.add_argument(
        "--seed", type=int, default=13, help="world seed (default 13)"
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="rebuild even when the existing artifact's fingerprint matches",
    )
    args = parser.parse_args(argv)
    from repro.web.backends import build_index_artifact, ensure_index_artifact

    config = (
        WorldConfig.small(seed=args.seed)
        if args.small
        else WorldConfig(seed=args.seed)
    )
    start = time.time()
    context = experiments.build_context(config)
    index = context.world.search_engine.index
    print(
        f"[context ready in {time.time() - start:.1f}s: "
        f"{context.world.page_count} pages]",
        file=sys.stderr,
    )
    start = time.time()
    if args.force:
        build_index_artifact(index, args.out)
    else:
        ensure_index_artifact(index, args.out)
    print(
        f"[index artifact at {args.out}: {index.n_documents} pages, "
        f"{index.vocabulary_size()} tokens, "
        f"{args.out.stat().st_size} bytes, {time.time() - start:.1f}s]"
    )
    return 0


# -- cache stores -----------------------------------------------------------------------


def _cache_main(argv: list[str]) -> int:
    """``repro.cli cache``: build or compact the sharded disk cache stores."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments cache",
        description=(
            "Manage the sharded on-disk cache stores used by "
            "--cache-backend disk: 'build' seeds them by annotating a "
            "small corpus slice (paying the cold start once, up front); "
            "'compact' folds each store's append log into its hash "
            "buckets (rewriting only the buckets the log touches)."
        ),
    )
    parser.add_argument(
        "action", choices=["build", "compact"], help="what to do with the stores"
    )
    parser.add_argument(
        "--cache-dir",
        required=True,
        type=Path,
        help="directory holding the *.cachestore stores",
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="use the reduced-scale world (fast; for smoke-testing)",
    )
    parser.add_argument(
        "--seed", type=int, default=13, help="world seed (default 13)"
    )
    parser.add_argument(
        "--backend",
        choices=["svm", "bayes"],
        default="svm",
        help="snippet classifier backend to seed with (default svm)",
    )
    parser.add_argument(
        "--cache-buckets",
        type=int,
        default=64,
        help="hash buckets per store when creating one (default 64)",
    )
    parser.add_argument(
        "--tables",
        type=int,
        default=4,
        help="corpus tables to annotate while seeding (default 4)",
    )
    parser.add_argument(
        "--rows",
        type=int,
        default=10,
        help="rows per seeded corpus table (default 10)",
    )
    args = parser.parse_args(argv)
    if args.cache_buckets < 1:
        parser.error(f"--cache-buckets must be >= 1, got {args.cache_buckets}")

    if args.action == "compact":
        from repro.persistence import ShardedDiskCacheStore

        stores = sorted(args.cache_dir.glob("*.cachestore"))
        if not stores:
            print(
                f"error: no *.cachestore stores under {args.cache_dir} "
                "(run 'cache build' first)",
                file=sys.stderr,
            )
            return 1
        for path in stores:
            rewritten = ShardedDiskCacheStore.compact_path(path)
            print(f"[{path.name}: {rewritten} bucket(s) rewritten]")
        return 0

    from repro.core.annotation import SnippetCache
    from repro.core.annotator import EntityAnnotator
    from repro.core.config import AnnotatorConfig

    config = (
        WorldConfig.small(seed=args.seed)
        if args.small
        else WorldConfig(seed=args.seed)
    )
    start = time.time()
    context = experiments.build_context(config)
    print(
        f"[context ready in {time.time() - start:.1f}s: "
        f"{context.world.page_count} pages]",
        file=sys.stderr,
    )
    annotator = EntityAnnotator(
        context.classifiers[args.backend],
        context.world.search_engine,
        config=AnnotatorConfig(
            cache_backend="disk", cache_buckets=args.cache_buckets
        ),
        cache=SnippetCache(),
    )
    tables = experiments._corpus_tables(context, args.tables, args.rows)
    start = time.time()
    annotator.annotate_tables(
        tables, experiments.ALL_TYPE_KEYS, cache_dir=args.cache_dir
    )
    annotator.compact_caches()
    print(
        f"[seeded {args.tables} tables x {args.rows} rows in "
        f"{time.time() - start:.1f}s]",
        file=sys.stderr,
    )
    for store in (
        annotator.engine.results_store,
        annotator.cell_annotator.label_store,
    ):
        if store is not None:
            stats = store.stats()
            print(
                f"[{Path(store.path).name}: {stats['bucket_files']} bucket "
                f"file(s), {stats['delta_entries']} delta entries, "
                f"{stats['store_bytes']} bytes]"
            )
    return 0


# -- the resident service ---------------------------------------------------------------


def _serve_main(argv: list[str]) -> int:
    """``repro.cli serve``: hold one warm annotator behind a local socket."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments serve",
        description=(
            "Start the resident annotation daemon: one warm engine + "
            "classifier behind a Unix socket, micro-batching concurrent "
            "requests into pooled corpus passes."
        ),
    )
    parser.add_argument(
        "--socket", required=True, type=Path, help="Unix socket path to listen on"
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="use the reduced-scale world (fast startup; for smoke-testing)",
    )
    parser.add_argument(
        "--seed", type=int, default=13, help="world seed (default 13)"
    )
    parser.add_argument(
        "--backend",
        choices=["svm", "bayes"],
        default="svm",
        help="snippet classifier backend to serve with (default svm)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help=(
            "warm-start from and flush back into this engine-cache "
            "directory (merge-on-save under an advisory lock, so sharing "
            "it with concurrent CLI runs is safe)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes per pooled pass (default 1: in-process; "
            "only large batches benefit from a pool)"
        ),
    )
    parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=25.0,
        help=(
            "micro-batching window: how long the first request of a tick "
            "waits for others to coalesce with it (default 25)"
        ),
    )
    parser.add_argument(
        "--max-batch-tables",
        type=int,
        default=32,
        help="most requests pooled into one pass (default 32)",
    )
    parser.add_argument(
        "--flush-interval",
        type=float,
        default=0.0,
        help=(
            "seconds between periodic cache flushes while serving "
            "(default 0: flush only on shutdown; needs --cache-dir)"
        ),
    )
    _add_resilience_arguments(parser)
    _add_index_backend_arguments(parser)
    _add_cache_backend_arguments(parser)
    _add_trace_arguments(parser)
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.cache_buckets < 1:
        parser.error(f"--cache-buckets must be >= 1, got {args.cache_buckets}")
    if args.cache_backend == "disk" and args.cache_dir is None:
        parser.error("--cache-backend disk needs --cache-dir")
    if args.trace or args.trace_out is not None:
        from repro.observability import tracing

        trace_id = tracing.enable_tracing()
        print(f"[tracing enabled: trace {trace_id}]", file=sys.stderr)
    from repro.service.daemon import AnnotationDaemon, ServiceConfig

    try:
        service_config = ServiceConfig(
            batch_window_ms=args.batch_window_ms,
            max_batch_tables=args.max_batch_tables,
            workers=args.workers,
            cache_dir=str(args.cache_dir) if args.cache_dir else None,
            flush_interval_seconds=args.flush_interval,
        )
    except ValueError as error:
        parser.error(str(error))

    from repro.core.annotation import SnippetCache
    from repro.core.annotator import EntityAnnotator
    from repro.core.config import AnnotatorConfig

    config = (
        WorldConfig.small(seed=args.seed)
        if args.small
        else WorldConfig(seed=args.seed)
    )
    try:
        annotator_config = AnnotatorConfig(
            retries=args.retries,
            retry_backoff_ms=args.retry_backoff_ms,
            breaker_threshold=args.breaker_threshold,
            cache_backend=args.cache_backend,
            cache_buckets=args.cache_buckets,
        )
    except ValueError as error:
        parser.error(str(error))
    start = time.time()
    context = experiments.build_context(config)
    if args.trace or args.trace_out is not None:
        tracing.set_clock(context.world.clock)
    artifact_path = _apply_index_backend(
        context.world.search_engine,
        args.index_backend,
        args.index_artifact,
        args.cache_dir,
    )
    if artifact_path is not None:
        print(
            f"[index backend mmap: serving from {artifact_path}]",
            file=sys.stderr,
        )
    annotator = EntityAnnotator(
        context.classifiers[args.backend],
        context.world.search_engine,
        config=annotator_config,
        cache=SnippetCache(),
    )
    daemon = AnnotationDaemon(annotator, args.socket, service_config)
    print(
        f"[context ready in {time.time() - start:.1f}s; serving "
        f"{len(experiments.ALL_TYPE_KEYS)} types on {args.socket} "
        f"(window {args.batch_window_ms:.0f}ms, pid {os.getpid()})]",
        file=sys.stderr,
    )
    # SIGTERM takes the same graceful path as Ctrl-C: drain, flush, 130.
    signal.signal(signal.SIGTERM, _raise_keyboard_interrupt)
    exit_code = 0
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        print("\n[interrupted; flushing caches]", file=sys.stderr)
        daemon.service.stop()
        exit_code = SIGINT_EXIT_CODE
    else:
        print("[daemon stopped]", file=sys.stderr)
    if args.trace_out is not None:
        count = tracing.get_buffer().export_jsonl(str(args.trace_out))
        print(
            f"[trace {trace_id}: {count} span(s) written to "
            f"{args.trace_out}]",
            file=sys.stderr,
        )
    return exit_code


def _raise_keyboard_interrupt(signum, frame):  # pragma: no cover - signal path
    raise KeyboardInterrupt


def _client_main(argv: list[str]) -> int:
    """``repro.cli client``: one-shot requests against a running daemon."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments client",
        description="Talk to a running resident annotation daemon.",
    )
    parser.add_argument(
        "command",
        choices=["ping", "stats", "metrics", "annotate", "shutdown"],
        help="what to ask the daemon",
    )
    parser.add_argument(
        "--socket", required=True, type=Path, help="the daemon's Unix socket"
    )
    parser.add_argument(
        "--table",
        type=Path,
        default=None,
        help="table file to annotate (.json or .csv, the repro.tables.io layouts)",
    )
    parser.add_argument(
        "--cells",
        default=None,
        help="comma-separated cell values to annotate (instead of --table)",
    )
    parser.add_argument(
        "--types",
        default=None,
        help="comma-separated type keys to annotate against",
    )
    args = parser.parse_args(argv)
    # Validate the annotate arguments (and read the table file) before
    # touching the socket, so usage errors never depend on a live daemon.
    table = values = type_keys = None
    if args.command == "annotate":
        if not args.types:
            parser.error("annotate needs --types (comma-separated type keys)")
        type_keys = [key.strip() for key in args.types.split(",") if key.strip()]
        if (args.table is None) == (args.cells is None):
            parser.error("annotate needs exactly one of --table or --cells")
        if args.table is not None:
            from repro.tables.io import table_from_csv, table_from_json

            text = args.table.read_text(encoding="utf-8")
            if args.table.suffix.lower() == ".csv":
                table = table_from_csv(text, name=args.table.stem)
            else:
                table = table_from_json(text)
        else:
            values = [
                value.strip() for value in args.cells.split(",") if value.strip()
            ]

    from repro.service import protocol
    from repro.service.client import ServiceClient, ServiceError

    try:
        with ServiceClient(args.socket) as client:
            if args.command == "ping":
                result = client.ping()
            elif args.command == "stats":
                result = client.stats()
            elif args.command == "metrics":
                # Prometheus text exposition: print it raw, not as JSON.
                print(client.metrics(), end="")
                return 0
            elif args.command == "shutdown":
                result = client.shutdown()
            elif table is not None:
                result = protocol.annotation_to_payload(
                    client.annotate_table(table, type_keys)
                )
            else:
                result = {"cells": client.annotate_cells(values, type_keys)}
    except (ConnectionError, FileNotFoundError, OSError) as error:
        print(f"error: cannot reach daemon: {error}", file=sys.stderr)
        return 1
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(json.dumps(result, indent=2, ensure_ascii=False))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
