"""Command-line entry point: regenerate any paper artefact.

Usage::

    python -m repro.cli table1            # Table 1
    python -m repro.cli table2 table3     # several at once
    python -m repro.cli all               # everything
    python -m repro.cli table1 --small    # fast, reduced-scale world

The first experiment of a session pays for world construction and
classifier training; subsequent experiments reuse the cached context.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.eval import ablation, experiments, extensions
from repro.synth.world import WorldConfig

_EXPERIMENTS: dict[str, Callable] = {
    "table1": experiments.run_table1,
    "table2": experiments.run_table2,
    "table3": experiments.run_table3,
    "comparison": experiments.run_comparison,
    "efficiency": experiments.run_efficiency,
    "throughput": experiments.run_throughput,
    "coverage": experiments.run_coverage,
    "figure6": experiments.run_figure6,
    "figure7": experiments.run_figure7,
    "ablation-repetition": ablation.run_repetition_ablation,
    "ablation-topk": ablation.run_topk_ablation,
    "hybrid": extensions.run_hybrid,
    "clustering": extensions.run_clustering,
    "giuliano": extensions.run_giuliano,
}


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiments and print their rendered tables."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=[*_EXPERIMENTS, "all"],
        help="which artefacts to regenerate",
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="use the reduced-scale world (fast; for smoke-testing)",
    )
    parser.add_argument(
        "--seed", type=int, default=13, help="world seed (default 13)"
    )
    args = parser.parse_args(argv)
    names = list(_EXPERIMENTS) if "all" in args.experiments else args.experiments
    config = (
        WorldConfig.small(seed=args.seed)
        if args.small
        else WorldConfig(seed=args.seed)
    )
    start = time.time()
    context = experiments.build_context(config)
    print(
        f"[context ready in {time.time() - start:.1f}s: "
        f"{context.world.page_count} pages, "
        f"{len(context.gft.tables)} GFT tables, "
        f"{len(context.wiki.tables)} wiki tables]\n",
        file=sys.stderr,
    )
    for name in names:
        start = time.time()
        result = _EXPERIMENTS[name](context)
        print(result.render())
        print(f"[{name} in {time.time() - start:.1f}s]\n", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
