"""Command-line entry point: regenerate any paper artefact.

Usage::

    python -m repro.cli table1            # Table 1
    python -m repro.cli table2 table3     # several at once
    python -m repro.cli all               # everything
    python -m repro.cli table1 --small    # fast, reduced-scale world
    python -m repro.cli table1 --small --cache-dir .repro-cache
    python -m repro.cli throughput --workers 4 --cache-dir .repro-cache

The first experiment of a session pays for world construction and
classifier training; subsequent experiments reuse the cached context.
``--cache-dir`` makes the search engine's ranking caches durable: the
directory is loaded before the experiments run and saved back after, so a
*second* invocation over the same world skips the ranking/snippet cold
start (the cache is fingerprinted and ignored whenever the world differs).
``--workers N`` forwards a process count to the experiments that shard
corpora (currently ``throughput``); with ``--cache-dir`` the workers
warm-start from -- and merge-save back into -- one shared cache directory
(saves are advisory-locked, so concurrent invocations never lose entries).
``--schedule static|stealing`` picks the multi-worker scheduler
(work-stealing chunk queue by default; contiguous static shards as the
baseline) and ``--chunk-cost`` bounds the per-task cost of the stealing
queue (0 = automatic).
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from pathlib import Path
from typing import Callable

from repro.core.config import SCHEDULES
from repro.eval import ablation, experiments, extensions
from repro.synth.world import WorldConfig

_EXPERIMENTS: dict[str, Callable] = {
    "table1": experiments.run_table1,
    "table2": experiments.run_table2,
    "table3": experiments.run_table3,
    "comparison": experiments.run_comparison,
    "efficiency": experiments.run_efficiency,
    "throughput": experiments.run_throughput,
    "coverage": experiments.run_coverage,
    "figure6": experiments.run_figure6,
    "figure7": experiments.run_figure7,
    "ablation-repetition": ablation.run_repetition_ablation,
    "ablation-topk": ablation.run_topk_ablation,
    "hybrid": extensions.run_hybrid,
    "clustering": extensions.run_clustering,
    "giuliano": extensions.run_giuliano,
}


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiments and print their rendered tables."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=[*_EXPERIMENTS, "all"],
        help="which artefacts to regenerate",
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="use the reduced-scale world (fast; for smoke-testing)",
    )
    parser.add_argument(
        "--seed", type=int, default=13, help="world seed (default 13)"
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help=(
            "directory for persistable engine caches; loaded before the "
            "experiments and saved back after, so a second invocation "
            "starts warm (safe to share between concurrent invocations: "
            "saves are merge-on-save under an advisory lock)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes for corpus-level experiments that support "
            "sharding (forwarded to experiments accepting a 'workers' "
            "argument, e.g. throughput); each worker warm-starts from "
            "--cache-dir when given (default 1: sequential)"
        ),
    )
    parser.add_argument(
        "--schedule",
        choices=list(SCHEDULES),
        default="stealing",
        help=(
            "how multi-worker experiments place work on the pool: "
            "'stealing' (default) enqueues cost-bounded chunk tasks that "
            "idle workers pull as they finish (skew-tolerant); 'static' "
            "keeps contiguous near-equal shards, one per worker"
        ),
    )
    parser.add_argument(
        "--chunk-cost",
        type=int,
        default=0,
        help=(
            "cost budget per work-stealing chunk task, in estimated "
            "cells (rows x columns); 0 (default) sizes chunks "
            "automatically at about four tasks per worker"
        ),
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.chunk_cost < 0:
        parser.error(f"--chunk-cost must be >= 0, got {args.chunk_cost}")
    names = list(_EXPERIMENTS) if "all" in args.experiments else args.experiments
    config = (
        WorldConfig.small(seed=args.seed)
        if args.small
        else WorldConfig(seed=args.seed)
    )
    start = time.time()
    context = experiments.build_context(config)
    print(
        f"[context ready in {time.time() - start:.1f}s: "
        f"{context.world.page_count} pages, "
        f"{len(context.gft.tables)} GFT tables, "
        f"{len(context.wiki.tables)} wiki tables]\n",
        file=sys.stderr,
    )
    engine_cache = (
        args.cache_dir / "search_results.cache" if args.cache_dir else None
    )
    if engine_cache is not None:
        loaded = context.world.search_engine.load_results_cache(engine_cache)
        print(
            f"[engine cache {'warm from' if loaded else 'cold; will save to'} "
            f"{engine_cache}]\n",
            file=sys.stderr,
        )
    for name in names:
        start = time.time()
        runner = _EXPERIMENTS[name]
        kwargs = {}
        parameters = inspect.signature(runner).parameters
        if "workers" in parameters:
            kwargs["workers"] = args.workers
        if "schedule" in parameters:
            kwargs["schedule"] = args.schedule
        if "chunk_cost_target" in parameters:
            kwargs["chunk_cost_target"] = args.chunk_cost
        result = runner(context, **kwargs)
        print(result.render())
        print(f"[{name} in {time.time() - start:.1f}s]\n", file=sys.stderr)
    if engine_cache is not None:
        context.world.search_engine.save_results_cache(engine_cache)
        print(f"[engine cache saved to {engine_cache}]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
