"""Grid search with k-fold cross-validation.

Reproduces the model-selection procedure of Section 6.1: the paper follows
Hsu, Chang & Lin's practical guide, a grid search over (cost, gamma) with
10-fold cross validation, which selected cost = gamma = 8.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np
from scipy import sparse


def k_fold_indices(
    n_samples: int, n_folds: int = 10, seed: int = 13
) -> list[tuple[list[int], list[int]]]:
    """Deterministic shuffled k-fold split: list of (train, validation) indices.

    Every sample appears in exactly one validation fold; folds differ in
    size by at most one element.
    """
    if n_folds < 2:
        raise ValueError(f"n_folds must be >= 2, got {n_folds}")
    if n_samples < n_folds:
        raise ValueError(
            f"cannot split {n_samples} samples into {n_folds} folds"
        )
    indices = list(range(n_samples))
    random.Random(seed).shuffle(indices)
    folds: list[list[int]] = [[] for _ in range(n_folds)]
    for position, index in enumerate(indices):
        folds[position % n_folds].append(index)
    splits = []
    for hold_out in range(n_folds):
        validation = sorted(folds[hold_out])
        train = sorted(
            index for f, fold in enumerate(folds) if f != hold_out for index in fold
        )
        splits.append((train, validation))
    return splits


@dataclass
class GridSearchResult:
    """Outcome of a grid search: the winning parameters and all scores."""

    best_params: dict[str, Any]
    best_score: float
    scores: dict[tuple, float] = field(default_factory=dict)

    def score_of(self, **params: Any) -> float:
        """Cross-validation score of one parameter combination."""
        key = tuple(sorted(params.items()))
        return self.scores[key]


def grid_search(
    factory: Callable[..., Any],
    param_grid: Mapping[str, Sequence[Any]],
    X: sparse.csr_matrix,
    y: np.ndarray,
    n_folds: int = 10,
    seed: int = 13,
) -> GridSearchResult:
    """Exhaustive search over *param_grid* maximising CV accuracy.

    *factory* is called with one keyword per grid dimension and must return
    an object with ``fit(X, y)`` and ``predict(X)``.  Ties are broken in
    favour of the parameter combination generated first (sorted key order),
    making the result deterministic.
    """
    names = sorted(param_grid)
    combinations = list(itertools.product(*(param_grid[name] for name in names)))
    if not combinations:
        raise ValueError("param_grid must contain at least one combination")
    splits = k_fold_indices(X.shape[0], n_folds=n_folds, seed=seed)
    scores: dict[tuple, float] = {}
    best_key: tuple | None = None
    best_score = -1.0
    for values in combinations:
        params = dict(zip(names, values))
        fold_scores = []
        for train_idx, valid_idx in splits:
            model = factory(**params)
            model.fit(X[train_idx], y[train_idx])
            predictions = model.predict(X[valid_idx])
            fold_scores.append(float(np.mean(predictions == y[valid_idx])))
        score = float(np.mean(fold_scores))
        key = tuple(sorted(params.items()))
        scores[key] = score
        if score > best_score:
            best_score = score
            best_key = key
    assert best_key is not None
    return GridSearchResult(
        best_params=dict(best_key), best_score=best_score, scores=scores
    )
