"""Kernel C-SVC trained with a simplified SMO, mirroring LibSVM's C-SVC.

Section 6.1 of the paper trains a C-SVC with an RBF kernel (cost and gamma
both 8 after grid search).  This module implements that classifier from
scratch: a two-variable SMO optimiser (Platt 1998, with the usual
simplifications) over a precomputed kernel matrix.  It is quadratic in the
number of training points, so the repository uses it where fidelity matters
(unit tests, grid-search demonstrations, small corpora) and falls back to
:class:`repro.classify.linear_svm.LinearSVM` at corpus scale.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy import sparse

Kernel = Callable[[np.ndarray, np.ndarray], np.ndarray]


def linear_kernel(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Gram matrix of dot products."""
    return A @ B.T


def rbf_kernel(A: np.ndarray, B: np.ndarray, gamma: float = 8.0) -> np.ndarray:
    """Gaussian kernel ``exp(-gamma * ||a - b||^2)``."""
    a_sq = np.sum(A * A, axis=1)[:, None]
    b_sq = np.sum(B * B, axis=1)[None, :]
    distances = a_sq + b_sq - 2.0 * (A @ B.T)
    np.maximum(distances, 0.0, out=distances)
    return np.exp(-gamma * distances)


class KernelSVC:
    """Binary C-SVC with RBF (default) or linear kernel, trained by SMO.

    Parameters follow LibSVM naming: ``cost`` is the C penalty, ``gamma``
    the RBF width.  The defaults are the values the paper selected by grid
    search (both 8).
    """

    def __init__(
        self,
        cost: float = 8.0,
        gamma: float = 8.0,
        kernel: str = "rbf",
        tolerance: float = 1e-3,
        max_passes: int = 5,
        max_iterations: int = 2000,
        seed: int = 13,
    ) -> None:
        if cost <= 0:
            raise ValueError(f"cost must be > 0, got {cost}")
        if kernel not in ("rbf", "linear"):
            raise ValueError(f"unknown kernel {kernel!r}")
        self.cost = cost
        self.gamma = gamma
        self.kernel = kernel
        self.tolerance = tolerance
        self.max_passes = max_passes
        self.max_iterations = max_iterations
        self.seed = seed
        self.support_vectors_: np.ndarray | None = None
        self.dual_coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    # -- kernel helpers -----------------------------------------------------------

    def _gram(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        if self.kernel == "rbf":
            return rbf_kernel(A, B, gamma=self.gamma)
        return linear_kernel(A, B)

    @staticmethod
    def _densify(X) -> np.ndarray:
        if sparse.issparse(X):
            return np.asarray(X.todense(), dtype=np.float64)
        return np.asarray(X, dtype=np.float64)

    # -- training -------------------------------------------------------------------

    def fit(self, X, y: np.ndarray) -> "KernelSVC":
        """Train with simplified SMO on labels in ``{-1, +1}``."""
        X = self._densify(X)
        y = np.asarray(y, dtype=np.float64)
        if not np.all(np.isin(y, (-1.0, 1.0))):
            raise ValueError("labels must be +1 or -1")
        n = X.shape[0]
        if n == 0:
            raise ValueError("cannot fit on an empty dataset")
        K = self._gram(X, X)
        alpha = np.zeros(n)
        b = 0.0
        rng = np.random.default_rng(self.seed)
        passes = 0
        iterations = 0
        while passes < self.max_passes and iterations < self.max_iterations:
            iterations += 1
            n_changed = 0
            for i in range(n):
                error_i = (alpha * y) @ K[:, i] + b - y[i]
                violates_kkt = (
                    (y[i] * error_i < -self.tolerance and alpha[i] < self.cost)
                    or (y[i] * error_i > self.tolerance and alpha[i] > 0)
                )
                if not violates_kkt:
                    continue
                j = int(rng.integers(0, n - 1))
                if j >= i:
                    j += 1
                error_j = (alpha * y) @ K[:, j] + b - y[j]
                alpha_i_old, alpha_j_old = alpha[i], alpha[j]
                if y[i] != y[j]:
                    low = max(0.0, alpha[j] - alpha[i])
                    high = min(self.cost, self.cost + alpha[j] - alpha[i])
                else:
                    low = max(0.0, alpha[i] + alpha[j] - self.cost)
                    high = min(self.cost, alpha[i] + alpha[j])
                if low == high:
                    continue
                eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
                if eta >= 0:
                    continue
                alpha[j] -= y[j] * (error_i - error_j) / eta
                alpha[j] = float(np.clip(alpha[j], low, high))
                if abs(alpha[j] - alpha_j_old) < 1e-7:
                    continue
                alpha[i] += y[i] * y[j] * (alpha_j_old - alpha[j])
                b1 = (
                    b
                    - error_i
                    - y[i] * (alpha[i] - alpha_i_old) * K[i, i]
                    - y[j] * (alpha[j] - alpha_j_old) * K[i, j]
                )
                b2 = (
                    b
                    - error_j
                    - y[i] * (alpha[i] - alpha_i_old) * K[i, j]
                    - y[j] * (alpha[j] - alpha_j_old) * K[j, j]
                )
                if 0 < alpha[i] < self.cost:
                    b = b1
                elif 0 < alpha[j] < self.cost:
                    b = b2
                else:
                    b = (b1 + b2) / 2.0
                n_changed += 1
            if n_changed == 0:
                passes += 1
            else:
                passes = 0
        support = alpha > 1e-8
        self.support_vectors_ = X[support]
        self.dual_coef_ = (alpha * y)[support]
        self.intercept_ = b
        return self

    # -- inference --------------------------------------------------------------------

    def decision_function(self, X) -> np.ndarray:
        """Signed margins for the rows of *X*."""
        if self.support_vectors_ is None or self.dual_coef_ is None:
            raise RuntimeError("KernelSVC is not fitted")
        X = self._densify(X)
        if self.support_vectors_.shape[0] == 0:
            return np.full(X.shape[0], self.intercept_)
        K = self._gram(X, self.support_vectors_)
        return K @ self.dual_coef_ + self.intercept_

    def predict(self, X) -> np.ndarray:
        """Class labels in ``{-1, +1}``."""
        return np.where(self.decision_function(X) >= 0.0, 1.0, -1.0)
