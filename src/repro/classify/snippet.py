"""The multi-class snippet-typing classifier the annotator consumes.

Section 5.2.1: "Given a set of types Γ = {t1, ..., tj}, we train a
multi-class text classifier to determine whether a snippet is the
description of an entity of a given type."  ``SnippetTypeClassifier`` wraps
the feature pipeline, a vocabulary and one of the classifier backends
("svm", "bayes", or "kernel-svm") behind a single
``classify(snippet) -> type`` interface.

Snippets that describe none of the target types surface as the reserved
``OTHER_LABEL``.  How a backend produces it differs, and the difference is
the mechanism behind the paper's Table 1 contrast:

* the SVM backends are one-vs-rest *margin* classifiers: when every
  binary decision function is negative, no class claims the snippet and
  the classifier abstains with ``OTHER_LABEL`` -- this is why the paper's
  SVM keeps its precision on noisy cells;
* Naive Bayes compares posteriors and always has an arg-max, so it never
  abstains (matching the LingPipe classifier's behaviour) -- weak, generic
  evidence still yields a type, which is why the paper observes very high
  recall but poor precision for Bayes.

An explicit OTHER class (trained on background snippets) can additionally
be included in the training data; the paper does not do this, and the
corpus experiments here follow the paper.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.classify.base import OneVsRestClassifier
from repro.classify.dataset import TextDataset
from repro.classify.kernel_svm import KernelSVC
from repro.classify.linear_svm import LinearSVM
from repro.classify.metrics import ClassificationReport
from repro.classify.naive_bayes import MultinomialNaiveBayes
from repro.text.vectorizer import SnippetVectorizer

OTHER_LABEL = "__other__"

_BACKENDS = ("svm", "bayes", "kernel-svm")

_MIN_CHUNK_SNIPPETS = 64
"""Smallest chunk worth dispatching to a scoring thread; batches below
twice this size are classified inline (thread dispatch would cost more
than the GEMM it parallelises)."""


class SnippetTypeClassifier:
    """Multi-class snippet classifier over a set of entity types.

    Parameters
    ----------
    backend:
        ``"svm"`` (linear SVM one-vs-rest, the corpus-scale default),
        ``"bayes"`` (multinomial Naive Bayes) or ``"kernel-svm"``
        (RBF C-SVC via SMO; faithful but quadratic -- small corpora only).
    min_count:
        Vocabulary frequency cut-off; tokens seen fewer times are dropped.
    """

    def __init__(self, backend: str = "svm", min_count: int = 2) -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self.backend = backend
        self.vectorizer = SnippetVectorizer(min_count=min_count)
        self._model: OneVsRestClassifier | MultinomialNaiveBayes | None = None
        self.types_: list[str] = []

    # -- training ----------------------------------------------------------------

    def fit(self, dataset: TextDataset) -> "SnippetTypeClassifier":
        """Train on a labelled snippet dataset.

        Labels are type names; background snippets must carry
        :data:`OTHER_LABEL`.
        """
        if len(dataset) == 0:
            raise ValueError("cannot train on an empty dataset")
        X = self.vectorizer.fit_transform(dataset.texts)
        self.types_ = sorted(set(dataset.labels) - {OTHER_LABEL})
        if self.backend == "bayes":
            model: OneVsRestClassifier | MultinomialNaiveBayes = MultinomialNaiveBayes()
            model.fit(X, dataset.labels)
        else:
            # The class itself is the factory: unlike a local lambda it
            # pickles by reference, so a fitted classifier can ship to
            # ``spawn``-ed worker processes.
            factory = KernelSVC if self.backend == "kernel-svm" else LinearSVM
            model = OneVsRestClassifier(factory)
            model.fit(X, dataset.labels)
        self._model = model
        return self

    # -- inference ------------------------------------------------------------------

    def classify(self, snippet: str) -> str:
        """Type of the entity *snippet* describes (or :data:`OTHER_LABEL`)."""
        return self.classify_many([snippet])[0]

    def classify_many(
        self, snippets: Sequence[str], workers: int = 1
    ) -> list[str]:
        """Classify a batch of snippets at once (one vectorizer pass).

        Margin backends abstain with :data:`OTHER_LABEL` when no binary
        classifier fires; Naive Bayes always returns its arg-max posterior.

        With ``workers > 1`` the batch is split into per-worker chunks and
        each chunk's featurisation + one-vs-rest scoring runs on its own
        thread, so the stacked-weights GEMM proceeds across cores to the
        extent the underlying kernels release the GIL.  Labels per snippet
        are a pure function of the text, so chunking never changes the
        output -- chunk results are concatenated back in input order.
        """
        if self._model is None:
            raise RuntimeError("SnippetTypeClassifier is not fitted")
        if not snippets:
            return []
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers > 1 and len(snippets) >= 2 * _MIN_CHUNK_SNIPPETS:
            from concurrent.futures import ThreadPoolExecutor

            n_chunks = min(workers, len(snippets) // _MIN_CHUNK_SNIPPETS)
            bounds = np.linspace(0, len(snippets), n_chunks + 1).astype(int)
            chunks = [
                snippets[bounds[i] : bounds[i + 1]] for i in range(n_chunks)
            ]
            with ThreadPoolExecutor(max_workers=n_chunks) as pool:
                parts = list(pool.map(self._classify_chunk, chunks))
            return [label for part in parts for label in part]
        return self._classify_chunk(snippets)

    def _classify_chunk(self, snippets: Sequence[str]) -> list[str]:
        """One vectorise + score pass over a (sub-)batch of snippets."""
        X = self.vectorizer.transform(snippets)
        if isinstance(self._model, MultinomialNaiveBayes):
            return self._model.predict(X)
        margins = self._model.decision_matrix(X)
        best = margins.argmax(axis=1)
        classes = np.asarray(self._model.encoder.classes_, dtype=object)
        labels = np.where(
            margins[np.arange(margins.shape[0]), best] >= 0.0,
            classes[best],
            OTHER_LABEL,
        )
        return labels.tolist()

    def decision_matrix(self, snippets: Sequence[str]):
        """Per-class scores; column order follows the fitted label encoder."""
        if self._model is None:
            raise RuntimeError("SnippetTypeClassifier is not fitted")
        X = self.vectorizer.transform(snippets)
        if isinstance(self._model, MultinomialNaiveBayes):
            return self._model.joint_log_likelihood(X)
        return self._model.decision_matrix(X)

    @property
    def classes_(self) -> list[str]:
        """All labels the model can emit, including :data:`OTHER_LABEL`."""
        if self._model is None:
            return []
        return list(self._model.encoder.classes_)

    def fingerprint(self) -> str:
        """Hex digest identifying this fitted model.

        Covers the backend, the fitted vocabulary and every learned
        weight -- exactly the state that determines the snippet -> label
        function -- and nothing usage-dependent (memos, caches), so the
        digest is stable across processes.  Two independently trained
        classifiers agree on it iff they classify identically; it versions
        the persisted snippet -> label memo, which must never be served to
        a different model.
        """
        if self._model is None:
            raise RuntimeError("SnippetTypeClassifier is not fitted")
        import hashlib

        from scipy import sparse

        hasher = hashlib.sha256()

        def feed(value) -> None:
            if isinstance(value, np.ndarray):
                hasher.update(str((value.dtype, value.shape)).encode())
                hasher.update(np.ascontiguousarray(value).tobytes())
            elif sparse.issparse(value):
                csr = value.tocsr()
                feed(csr.data)
                feed(csr.indices)
                feed(csr.indptr)
                hasher.update(str(csr.shape).encode())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    feed(item)
            elif isinstance(value, dict):
                for key in sorted(value):
                    feed(key)
                    feed(value[key])
            else:
                hasher.update(repr(value).encode())

        feed(self.backend)
        feed(self.vectorizer.vocabulary.min_count)
        feed(list(self.vectorizer.vocabulary))
        feed(self.classes_)
        if isinstance(self._model, MultinomialNaiveBayes):
            feed(self._model.feature_log_prob_)
            feed(self._model.class_log_prior_)
        else:
            for estimator in self._model.estimators_:
                feed(vars(estimator))
        return hasher.hexdigest()

    # -- evaluation --------------------------------------------------------------------

    def evaluate(self, dataset: TextDataset) -> ClassificationReport:
        """Per-type P/R/F on a held-out dataset (Table 2's classifier test)."""
        predictions = self.classify_many(dataset.texts)
        labels = sorted(set(dataset.labels) - {OTHER_LABEL})
        return ClassificationReport.from_predictions(
            dataset.labels, predictions, labels=labels
        )
