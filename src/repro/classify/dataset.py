"""Labeled text dataset containers and the 75/25 split of Section 5.2.1."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence


@dataclass
class TextDataset:
    """A labelled collection of snippets.

    Invariant: ``len(texts) == len(labels)``; enforced at construction.
    """

    texts: list[str] = field(default_factory=list)
    labels: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.texts) != len(self.labels):
            raise ValueError(
                f"texts ({len(self.texts)}) and labels ({len(self.labels)}) "
                "must have equal length"
            )

    def __len__(self) -> int:
        return len(self.texts)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(zip(self.texts, self.labels))

    def add(self, text: str, label: str) -> None:
        """Append one labelled snippet."""
        self.texts.append(text)
        self.labels.append(label)

    def extend(self, pairs: Iterable[tuple[str, str]]) -> None:
        """Append many ``(text, label)`` pairs."""
        for text, label in pairs:
            self.add(text, label)

    def label_counts(self) -> dict[str, int]:
        """Number of snippets per label."""
        counts: dict[str, int] = {}
        for label in self.labels:
            counts[label] = counts.get(label, 0) + 1
        return counts

    def subset(self, indices: Sequence[int]) -> "TextDataset":
        """New dataset restricted to *indices* (order preserved)."""
        return TextDataset(
            texts=[self.texts[i] for i in indices],
            labels=[self.labels[i] for i in indices],
        )

    def filter_labels(self, keep: Iterable[str]) -> "TextDataset":
        """New dataset with only the labels in *keep*."""
        keep_set = set(keep)
        indices = [i for i, label in enumerate(self.labels) if label in keep_set]
        return self.subset(indices)


def train_test_split(
    dataset: TextDataset,
    train_fraction: float = 0.75,
    seed: int = 13,
    stratify: bool = True,
) -> tuple[TextDataset, TextDataset]:
    """Split *dataset* into train/test parts (paper: 75% / 25%).

    With ``stratify=True`` the split preserves per-label proportions, which
    keeps the small classes (Simpsons episodes, Mines) represented in both
    parts exactly as the paper's per-type corpora are.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    rng = random.Random(seed)
    train_indices: list[int] = []
    test_indices: list[int] = []
    if stratify:
        by_label: dict[str, list[int]] = {}
        for i, label in enumerate(dataset.labels):
            by_label.setdefault(label, []).append(i)
        for label in sorted(by_label):
            indices = by_label[label]
            rng.shuffle(indices)
            cut = int(round(len(indices) * train_fraction))
            cut = min(max(cut, 1), len(indices) - 1) if len(indices) > 1 else cut
            train_indices.extend(indices[:cut])
            test_indices.extend(indices[cut:])
    else:
        indices = list(range(len(dataset)))
        rng.shuffle(indices)
        cut = int(round(len(indices) * train_fraction))
        train_indices = indices[:cut]
        test_indices = indices[cut:]
    train_indices.sort()
    test_indices.sort()
    return dataset.subset(train_indices), dataset.subset(test_indices)
