"""Text classifiers used to type snippets (Section 5.2.1 / 6.1).

The paper trains two classifiers over snippet features: a C-SVC support
vector machine (LibSVM, RBF kernel, grid search with 10-fold cross
validation) and a Naive Bayes classifier (LingPipe, prior counts 1.0, length
normalisation off).  This package re-implements both from scratch on numpy /
scipy.sparse:

* :mod:`repro.classify.naive_bayes` -- multinomial Naive Bayes;
* :mod:`repro.classify.linear_svm` -- batch subgradient linear SVM, the
  corpus-scale default;
* :mod:`repro.classify.kernel_svm` -- SMO-trained kernel SVM (RBF / linear),
  faithful to the paper's C-SVC at small scale;
* :mod:`repro.classify.grid_search` -- parameter grid search with k-fold CV
  (Hsu, Chang & Lin procedure);
* :mod:`repro.classify.metrics` -- precision / recall / F-measure;
* :mod:`repro.classify.snippet` -- the multi-class snippet-typing facade the
  annotator consumes.
"""

from repro.classify.base import LabelEncoder, OneVsRestClassifier
from repro.classify.dataset import TextDataset, train_test_split
from repro.classify.grid_search import GridSearchResult, grid_search, k_fold_indices
from repro.classify.kernel_svm import KernelSVC, linear_kernel, rbf_kernel
from repro.classify.linear_svm import LinearSVM
from repro.classify.metrics import (
    ClassificationReport,
    accuracy,
    confusion_matrix,
    f_measure,
    precision_recall_f1,
)
from repro.classify.naive_bayes import MultinomialNaiveBayes
from repro.classify.snippet import OTHER_LABEL, SnippetTypeClassifier

__all__ = [
    "ClassificationReport",
    "GridSearchResult",
    "KernelSVC",
    "LabelEncoder",
    "LinearSVM",
    "MultinomialNaiveBayes",
    "OTHER_LABEL",
    "OneVsRestClassifier",
    "SnippetTypeClassifier",
    "TextDataset",
    "accuracy",
    "confusion_matrix",
    "f_measure",
    "grid_search",
    "k_fold_indices",
    "linear_kernel",
    "precision_recall_f1",
    "rbf_kernel",
    "train_test_split",
]
