"""Linear SVM: L2-regularised squared-hinge loss minimised with L-BFGS.

The paper trains a LibSVM C-SVC with an RBF kernel; at the paper's corpus
sizes (tens of thousands of snippets) a kernel SVM is O(n^2) and out of
laptop reach, so the corpus-scale experiments default to this linear SVM.
Sparse snippet features with thousands of stem dimensions are close to
linearly separable, and the ordering the evaluation cares about (SVM beats
Naive Bayes everywhere) is preserved; :mod:`repro.classify.kernel_svm`
provides the faithful RBF C-SVC for small-scale use.  DESIGN.md records
this substitution.

Implementation notes:

* squared hinge ``max(0, 1 - y m)^2`` is differentiable, so a quasi-Newton
  optimiser converges in a few dozen deterministic iterations where
  stochastic subgradient methods need tuning per feature scale;
* ``balanced=True`` weights examples inversely to class frequency --
  one-vs-rest reductions over a dozen types make every binary problem
  ~10:1 negative-heavy, and unweighted hinge loss then learns "always
  negative", which is useless to the annotator.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize, sparse


class LinearSVM:
    """Binary margin classifier on +1/-1 labels (squared hinge + L2)."""

    def __init__(
        self,
        regularization: float = 1e-3,
        max_iterations: int = 150,
        fit_intercept: bool = True,
        balanced: bool = True,
    ) -> None:
        if regularization <= 0:
            raise ValueError(f"regularization must be > 0, got {regularization}")
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        self.regularization = regularization
        self.max_iterations = max_iterations
        self.fit_intercept = fit_intercept
        self.balanced = balanced
        self.weights_: np.ndarray | None = None
        self.intercept_: float = 0.0

    # -- training ---------------------------------------------------------------------

    def _sample_weights(self, y: np.ndarray) -> np.ndarray:
        if not self.balanced:
            return np.ones_like(y)
        n = y.shape[0]
        n_pos = int(np.sum(y > 0))
        n_neg = n - n_pos
        if n_pos == 0 or n_neg == 0:
            return np.ones_like(y)
        return np.where(y > 0, n / (2.0 * n_pos), n / (2.0 * n_neg))

    def fit(self, X: sparse.csr_matrix, y: np.ndarray) -> "LinearSVM":
        """Train on CSR matrix *X* and labels *y* in ``{-1, +1}``."""
        y = np.asarray(y, dtype=np.float64)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y must have matching first dimension")
        if not np.all(np.isin(y, (-1.0, 1.0))):
            raise ValueError("labels must be +1 or -1")
        n_samples, n_features = X.shape
        weights = self._sample_weights(y)
        total_weight = float(weights.sum())
        lam = self.regularization

        def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
            w = theta[:n_features]
            b = theta[n_features] if self.fit_intercept else 0.0
            margins = y * (X @ w + b)
            slack = np.maximum(0.0, 1.0 - margins)
            loss = 0.5 * lam * float(w @ w) + float(
                (weights * slack * slack).sum()
            ) / total_weight
            coeff = (-2.0 / total_weight) * (weights * y * slack)
            grad_w = lam * w + np.asarray(X.T @ coeff).ravel()
            if self.fit_intercept:
                grad = np.concatenate([grad_w, [coeff.sum()]])
            else:
                grad = grad_w
            return loss, grad

        size = n_features + (1 if self.fit_intercept else 0)
        theta0 = np.zeros(size)
        result = optimize.minimize(
            objective,
            theta0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iterations, "ftol": 1e-10, "gtol": 1e-8},
        )
        theta = result.x
        self.weights_ = theta[:n_features]
        self.intercept_ = float(theta[n_features]) if self.fit_intercept else 0.0
        return self

    # -- inference ---------------------------------------------------------------------

    def decision_function(self, X: sparse.csr_matrix) -> np.ndarray:
        """Signed margins ``X w + b``."""
        if self.weights_ is None:
            raise RuntimeError("LinearSVM is not fitted")
        return np.asarray(X @ self.weights_).ravel() + self.intercept_

    def predict(self, X: sparse.csr_matrix) -> np.ndarray:
        """Class labels in ``{-1, +1}``; ties (margin 0) go to +1."""
        return np.where(self.decision_function(X) >= 0.0, 1.0, -1.0)
