"""Evaluation metrics: precision, recall, F-measure (Section 6.2).

The paper evaluates every method with::

    P = |C_t| / |A_t|      R = |C_t| / |T_t|      F = 2 P R / (P + R)

where ``C_t`` are correctly annotated entities of type ``t``, ``A_t`` the
entities the method annotated with ``t``, and ``T_t`` all gold entities of
type ``t``.  The same definitions (over snippets instead of cells) score the
classifiers of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np


def precision_recall_f1(
    n_correct: int, n_predicted: int, n_gold: int
) -> tuple[float, float, float]:
    """Compute (P, R, F) from raw counts; empty denominators yield 0.0.

    >>> precision_recall_f1(8, 10, 16)
    (0.8, 0.5, 0.6153846153846154)
    """
    precision = n_correct / n_predicted if n_predicted else 0.0
    recall = n_correct / n_gold if n_gold else 0.0
    f = f_measure(precision, recall)
    return precision, recall, f


def f_measure(precision: float, recall: float) -> float:
    """Harmonic mean of precision and recall; 0.0 when both are 0."""
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def accuracy(y_true: Sequence[str], y_pred: Sequence[str]) -> float:
    """Fraction of exact label matches."""
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred must have equal length")
    if not y_true:
        return 0.0
    hits = sum(1 for t, p in zip(y_true, y_pred) if t == p)
    return hits / len(y_true)


def confusion_matrix(
    y_true: Sequence[str], y_pred: Sequence[str], labels: Sequence[str]
) -> np.ndarray:
    """``(len(labels), len(labels))`` matrix; rows = gold, cols = predicted."""
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        if t in index and p in index:
            matrix[index[t], index[p]] += 1
    return matrix


@dataclass(frozen=True)
class ClassScores:
    """P/R/F triple for one class."""

    precision: float
    recall: float
    f1: float


@dataclass
class ClassificationReport:
    """Per-class and macro-averaged scores for a multi-class prediction."""

    per_class: dict[str, ClassScores]

    @classmethod
    def from_predictions(
        cls,
        y_true: Sequence[str],
        y_pred: Sequence[str],
        labels: Sequence[str] | None = None,
    ) -> "ClassificationReport":
        """Build a report, one :class:`ClassScores` per label of interest."""
        if labels is None:
            labels = sorted(set(y_true))
        per_class = {}
        for label in labels:
            n_correct = sum(
                1 for t, p in zip(y_true, y_pred) if t == label and p == label
            )
            n_predicted = sum(1 for p in y_pred if p == label)
            n_gold = sum(1 for t in y_true if t == label)
            p, r, f = precision_recall_f1(n_correct, n_predicted, n_gold)
            per_class[label] = ClassScores(p, r, f)
        return cls(per_class=per_class)

    def macro_f1(self) -> float:
        """Unweighted mean of per-class F-measures."""
        if not self.per_class:
            return 0.0
        return sum(s.f1 for s in self.per_class.values()) / len(self.per_class)

    def macro_precision(self) -> float:
        if not self.per_class:
            return 0.0
        return sum(s.precision for s in self.per_class.values()) / len(self.per_class)

    def macro_recall(self) -> float:
        if not self.per_class:
            return 0.0
        return sum(s.recall for s in self.per_class.values()) / len(self.per_class)

    def f1_of(self, label: str) -> float:
        """F-measure of a single class (0.0 for unknown labels)."""
        scores = self.per_class.get(label)
        return scores.f1 if scores else 0.0


def macro_average(reports: Mapping[str, tuple[float, float, float]]) -> tuple[float, float, float]:
    """Average (P, R, F) triples, as the AVERAGE rows of Table 1 do."""
    if not reports:
        return 0.0, 0.0, 0.0
    n = len(reports)
    p = sum(v[0] for v in reports.values()) / n
    r = sum(v[1] for v in reports.values()) / n
    f = sum(v[2] for v in reports.values()) / n
    return p, r, f
