"""Multinomial Naive Bayes over sparse normalised-frequency features.

Stand-in for the LingPipe classifier of Section 6.1: prior (add-k) counts
default to 1.0 and length normalisation is off, matching the paper's
configuration ("we turned off length normalization and set the prior counts
to 1.0").

Class priors are uniform by default.  LingPipe's trained NB on short,
few-feature snippets behaves optimistically -- the paper observes very high
recall and poor precision (Table 1).  Uniform priors reproduce that shape:
every class competes on likelihood alone, so weak evidence is enough to fire
a positive, exactly the failure mode the paper reports for Bayes.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.classify.base import LabelEncoder


class MultinomialNaiveBayes:
    """Multinomial NB supporting fractional (frequency) feature values.

    Also usable as a binary margin classifier (``decision_function``) when
    fitted on +1/-1 labels, which lets it plug into one-vs-rest wrappers.
    """

    def __init__(
        self,
        prior_counts: float = 1.0,
        length_normalization: bool = False,
        uniform_priors: bool = True,
    ) -> None:
        if prior_counts <= 0:
            raise ValueError(f"prior_counts must be > 0, got {prior_counts}")
        self.prior_counts = prior_counts
        self.length_normalization = length_normalization
        self.uniform_priors = uniform_priors
        self.encoder = LabelEncoder()
        self.feature_log_prob_: np.ndarray | None = None
        self.class_log_prior_: np.ndarray | None = None

    # -- training ---------------------------------------------------------------

    def fit(self, X: sparse.csr_matrix, labels) -> "MultinomialNaiveBayes":
        """Estimate per-class token distributions from *X* and *labels*.

        *labels* may be strings or a +1/-1 numpy array (binary margin mode).
        """
        labels = self._as_string_labels(labels)
        codes = self.encoder.fit_transform(labels)
        n_classes = len(self.encoder)
        n_features = X.shape[1]
        counts = np.full((n_classes, n_features), self.prior_counts, dtype=np.float64)
        class_totals = np.zeros(n_classes, dtype=np.float64)
        for class_code in range(n_classes):
            rows = np.flatnonzero(codes == class_code)
            if rows.size:
                counts[class_code] += np.asarray(
                    X[rows].sum(axis=0), dtype=np.float64
                ).ravel()
            class_totals[class_code] = rows.size
        row_sums = counts.sum(axis=1, keepdims=True)
        self.feature_log_prob_ = np.log(counts) - np.log(row_sums)
        if self.uniform_priors:
            self.class_log_prior_ = np.full(n_classes, -np.log(n_classes))
        else:
            totals = class_totals + self.prior_counts
            self.class_log_prior_ = np.log(totals) - np.log(totals.sum())
        return self

    @staticmethod
    def _as_string_labels(labels) -> list[str]:
        if isinstance(labels, np.ndarray):
            return ["pos" if value > 0 else "neg" for value in labels]
        return list(labels)

    # -- inference ----------------------------------------------------------------

    def joint_log_likelihood(self, X: sparse.csr_matrix) -> np.ndarray:
        """``(n_samples, n_classes)`` unnormalised log posteriors."""
        if self.feature_log_prob_ is None or self.class_log_prior_ is None:
            raise RuntimeError("MultinomialNaiveBayes is not fitted")
        scores = X @ self.feature_log_prob_.T + self.class_log_prior_
        scores = np.asarray(scores)
        if self.length_normalization:
            lengths = np.asarray(X.sum(axis=1)).ravel()
            lengths[lengths == 0.0] = 1.0
            scores = scores / lengths[:, None]
        return scores

    def predict_log_proba(self, X: sparse.csr_matrix) -> np.ndarray:
        """Log posterior probabilities, normalised per row."""
        joint = self.joint_log_likelihood(X)
        log_norm = _logsumexp_rows(joint)
        return joint - log_norm[:, None]

    def predict(self, X: sparse.csr_matrix) -> list[str]:
        """Most probable label for each row."""
        joint = self.joint_log_likelihood(X)
        return self.encoder.inverse_transform(np.argmax(joint, axis=1))

    def decision_function(self, X: sparse.csr_matrix) -> np.ndarray:
        """Binary margin: log P(pos|x) - log P(neg|x).

        Only valid when fitted in binary (+1/-1) mode.
        """
        if self.encoder.classes_ != ["neg", "pos"]:
            raise RuntimeError(
                "decision_function requires binary +1/-1 training labels"
            )
        joint = self.joint_log_likelihood(X)
        return joint[:, 1] - joint[:, 0]


def _logsumexp_rows(matrix: np.ndarray) -> np.ndarray:
    """Numerically stable log-sum-exp along axis 1."""
    peak = matrix.max(axis=1)
    return peak + np.log(np.exp(matrix - peak[:, None]).sum(axis=1))
