"""Shared classifier infrastructure: label encoding and one-vs-rest."""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

import numpy as np
from scipy import sparse


class BinaryClassifier(Protocol):
    """Protocol for binary margin classifiers trained on +1 / -1 labels."""

    def fit(self, X: sparse.csr_matrix, y: np.ndarray) -> "BinaryClassifier":
        """Train on feature matrix *X* and labels *y* in ``{-1, +1}``."""
        ...

    def decision_function(self, X: sparse.csr_matrix) -> np.ndarray:
        """Signed margins; positive means the positive class."""
        ...


class LabelEncoder:
    """Map arbitrary hashable labels to contiguous integer codes."""

    def __init__(self) -> None:
        self.classes_: list[str] = []
        self._code: dict[str, int] = {}

    def fit(self, labels: Sequence[str]) -> "LabelEncoder":
        """Learn the label set (sorted for determinism)."""
        self.classes_ = sorted(set(labels))
        self._code = {label: i for i, label in enumerate(self.classes_)}
        return self

    def transform(self, labels: Sequence[str]) -> np.ndarray:
        """Encode *labels*; raises ``KeyError`` on unseen labels."""
        return np.asarray([self._code[label] for label in labels], dtype=np.int64)

    def fit_transform(self, labels: Sequence[str]) -> np.ndarray:
        return self.fit(labels).transform(labels)

    def inverse_transform(self, codes: np.ndarray) -> list[str]:
        """Decode integer codes back to labels."""
        return [self.classes_[int(code)] for code in codes]

    def __len__(self) -> int:
        return len(self.classes_)


class OneVsRestClassifier:
    """Multi-class classification by one binary margin classifier per class.

    The winning class is the one with the largest decision-function value,
    which is how LibSVM-style tools reduce C-SVC to multi-class problems.
    """

    def __init__(self, factory: Callable[[], BinaryClassifier]) -> None:
        self._factory = factory
        self.encoder = LabelEncoder()
        self.estimators_: list[BinaryClassifier] = []
        self._stacked: tuple[np.ndarray, np.ndarray] | None = None

    def fit(self, X: sparse.csr_matrix, labels: Sequence[str]) -> "OneVsRestClassifier":
        """Train one binary classifier per distinct label in *labels*."""
        codes = self.encoder.fit_transform(labels)
        self.estimators_ = []
        self._stacked = None
        for class_code in range(len(self.encoder)):
            y = np.where(codes == class_code, 1.0, -1.0)
            estimator = self._factory()
            estimator.fit(X, y)
            self.estimators_.append(estimator)
        return self

    def _stacked_weights(self) -> tuple[np.ndarray, np.ndarray] | None:
        """Stacked ``(n_features, n_classes)`` weights + intercepts, if linear.

        Linear estimators expose ``weights_`` / ``intercept_``; stacking
        them turns ``n_classes`` sparse mat-vec calls into one mat-mat
        product, the same per-element accumulation in one pass.  Kernel
        estimators have no weight vector, so the per-estimator loop stays.
        """
        if self._stacked is None:
            columns = []
            intercepts = []
            for estimator in self.estimators_:
                weights = getattr(estimator, "weights_", None)
                if weights is None:
                    return None
                columns.append(weights)
                intercepts.append(getattr(estimator, "intercept_", 0.0))
            self._stacked = (
                np.column_stack(columns),
                np.asarray(intercepts, dtype=np.float64),
            )
        return self._stacked

    def decision_matrix(self, X: sparse.csr_matrix) -> np.ndarray:
        """``(n_samples, n_classes)`` matrix of per-class margins."""
        if not self.estimators_:
            raise RuntimeError("OneVsRestClassifier is not fitted")
        stacked = self._stacked_weights()
        if stacked is not None:
            weights, intercepts = stacked
            return np.asarray(X @ weights) + intercepts
        columns = [est.decision_function(X) for est in self.estimators_]
        return np.column_stack(columns)

    def predict(self, X: sparse.csr_matrix) -> list[str]:
        """Predicted label for each row of *X*."""
        margins = self.decision_matrix(X)
        return self.encoder.inverse_transform(np.argmax(margins, axis=1))
