"""Shared classifier infrastructure: label encoding and one-vs-rest."""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

import numpy as np
from scipy import sparse


class BinaryClassifier(Protocol):
    """Protocol for binary margin classifiers trained on +1 / -1 labels."""

    def fit(self, X: sparse.csr_matrix, y: np.ndarray) -> "BinaryClassifier":
        """Train on feature matrix *X* and labels *y* in ``{-1, +1}``."""
        ...

    def decision_function(self, X: sparse.csr_matrix) -> np.ndarray:
        """Signed margins; positive means the positive class."""
        ...


class LabelEncoder:
    """Map arbitrary hashable labels to contiguous integer codes."""

    def __init__(self) -> None:
        self.classes_: list[str] = []
        self._code: dict[str, int] = {}

    def fit(self, labels: Sequence[str]) -> "LabelEncoder":
        """Learn the label set (sorted for determinism)."""
        self.classes_ = sorted(set(labels))
        self._code = {label: i for i, label in enumerate(self.classes_)}
        return self

    def transform(self, labels: Sequence[str]) -> np.ndarray:
        """Encode *labels*; raises ``KeyError`` on unseen labels."""
        return np.asarray([self._code[label] for label in labels], dtype=np.int64)

    def fit_transform(self, labels: Sequence[str]) -> np.ndarray:
        return self.fit(labels).transform(labels)

    def inverse_transform(self, codes: np.ndarray) -> list[str]:
        """Decode integer codes back to labels."""
        return [self.classes_[int(code)] for code in codes]

    def __len__(self) -> int:
        return len(self.classes_)


class OneVsRestClassifier:
    """Multi-class classification by one binary margin classifier per class.

    The winning class is the one with the largest decision-function value,
    which is how LibSVM-style tools reduce C-SVC to multi-class problems.
    """

    def __init__(self, factory: Callable[[], BinaryClassifier]) -> None:
        self._factory = factory
        self.encoder = LabelEncoder()
        self.estimators_: list[BinaryClassifier] = []

    def fit(self, X: sparse.csr_matrix, labels: Sequence[str]) -> "OneVsRestClassifier":
        """Train one binary classifier per distinct label in *labels*."""
        codes = self.encoder.fit_transform(labels)
        self.estimators_ = []
        for class_code in range(len(self.encoder)):
            y = np.where(codes == class_code, 1.0, -1.0)
            estimator = self._factory()
            estimator.fit(X, y)
            self.estimators_.append(estimator)
        return self

    def decision_matrix(self, X: sparse.csr_matrix) -> np.ndarray:
        """``(n_samples, n_classes)`` matrix of per-class margins."""
        if not self.estimators_:
            raise RuntimeError("OneVsRestClassifier is not fitted")
        columns = [est.decision_function(X) for est in self.estimators_]
        return np.column_stack(columns)

    def predict(self, X: sparse.csr_matrix) -> list[str]:
        """Predicted label for each row of *X*."""
        margins = self.decision_matrix(X)
        return self.encoder.inverse_transform(np.argmax(margins, axis=1))
