"""Tests for automatic root-category selection."""

import pytest

from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.root_selection import candidate_roots, select_root


@pytest.fixture()
def kb():
    base = KnowledgeBase()
    base.add_category("Museums")
    base.add_category("Museums in France", parent="Museums")
    base.add_category("Art museums", parent="Museums")
    base.add_category("Curators", parent="Museums")
    # A narrower museum category that also names the type, but holds less.
    base.add_category("Maritime museums")
    base.add_category("Hotels")
    for i in range(6):
        base.add_entity(f"db:m{i}", f"Museum {i}", "museum",
                        ["Museums in France" if i % 2 else "Art museums"])
    base.add_entity("db:mm", "Harbour Museum", "museum", ["Maritime museums"])
    base.add_entity("db:h", "Grand Hotel", "hotel", ["Hotels"])
    return base


class TestSelectRoot:
    def test_picks_the_richest_naming_category(self, kb):
        assert select_root(kb, "museum") == "Museums"

    def test_hotel_root(self, kb):
        assert select_root(kb, "hotel") == "Hotels"

    def test_unknown_type_returns_none(self, kb):
        assert select_root(kb, "airport") is None

    def test_plural_type_word(self, kb):
        assert select_root(kb, "museums") == "Museums"

    def test_category_without_entities_not_selected(self):
        base = KnowledgeBase()
        base.add_category("Castles")
        assert select_root(base, "castle") is None


class TestCandidateRoots:
    def test_all_naming_categories_listed(self, kb):
        names = {c.category for c in candidate_roots(kb, "museum")}
        assert names == {"Museums", "Museums in France", "Art museums",
                         "Maritime museums"}

    def test_sorted_by_entity_yield(self, kb):
        candidates = candidate_roots(kb, "museum")
        yields = [c.n_entities for c in candidates]
        assert yields == sorted(yields, reverse=True)
        assert candidates[0].category == "Museums"

    def test_noise_category_not_a_candidate(self, kb):
        names = {c.category for c in candidate_roots(kb, "museum")}
        assert "Curators" not in names

    def test_world_roots_recovered(self, small_world):
        # On the synthetic world, automatic selection must agree with the
        # manually chosen roots for every type.
        from repro.synth.types import TYPE_SPECS

        for spec in TYPE_SPECS:
            assert select_root(small_world.kb, spec.type_word) == (
                spec.root_category
            ), spec.key
