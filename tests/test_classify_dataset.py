"""Tests for TextDataset and the 75/25 split."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.classify.dataset import TextDataset, train_test_split


def _dataset(pairs):
    ds = TextDataset()
    ds.extend(pairs)
    return ds


class TestTextDataset:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TextDataset(texts=["a"], labels=[])

    def test_add_and_iterate(self):
        ds = _dataset([("snippet", "museum")])
        assert list(ds) == [("snippet", "museum")]
        assert len(ds) == 1

    def test_label_counts(self):
        ds = _dataset([("a", "x"), ("b", "x"), ("c", "y")])
        assert ds.label_counts() == {"x": 2, "y": 1}

    def test_subset_preserves_pairing(self):
        ds = _dataset([("a", "x"), ("b", "y"), ("c", "z")])
        sub = ds.subset([2, 0])
        assert list(sub) == [("c", "z"), ("a", "x")]

    def test_filter_labels(self):
        ds = _dataset([("a", "x"), ("b", "y")])
        assert ds.filter_labels(["y"]).labels == ["y"]


class TestTrainTestSplit:
    def test_paper_fractions(self):
        ds = _dataset([(f"t{i}", "a") for i in range(100)])
        train, test = train_test_split(ds, train_fraction=0.75)
        assert len(train) == 75
        assert len(test) == 25

    def test_partition_is_exact(self):
        ds = _dataset([(f"t{i}", "a" if i % 2 else "b") for i in range(41)])
        train, test = train_test_split(ds)
        assert len(train) + len(test) == len(ds)
        assert set(train.texts).isdisjoint(test.texts)

    def test_stratified_keeps_small_classes_in_both_parts(self):
        pairs = [(f"big{i}", "big") for i in range(40)]
        pairs += [(f"small{i}", "small") for i in range(4)]
        train, test = train_test_split(_dataset(pairs), seed=7)
        assert "small" in train.label_counts()
        assert "small" in test.label_counts()

    def test_deterministic_for_seed(self):
        ds = _dataset([(f"t{i}", "a") for i in range(30)])
        first = train_test_split(ds, seed=3)
        second = train_test_split(ds, seed=3)
        assert first[0].texts == second[0].texts

    def test_different_seed_shuffles(self):
        ds = _dataset([(f"t{i}", "a") for i in range(50)])
        first = train_test_split(ds, seed=1)
        second = train_test_split(ds, seed=2)
        assert first[0].texts != second[0].texts

    def test_invalid_fraction_rejected(self):
        ds = _dataset([("a", "x")])
        with pytest.raises(ValueError):
            train_test_split(ds, train_fraction=1.0)


@given(
    st.lists(
        st.tuples(st.text(min_size=1, max_size=6), st.sampled_from(["a", "b", "c"])),
        min_size=4,
        max_size=60,
    ),
    st.integers(min_value=0, max_value=99),
)
def test_split_is_partition(pairs, seed):
    ds = _dataset(list(pairs))
    train, test = train_test_split(ds, seed=seed)
    assert len(train) + len(test) == len(ds)
    combined = sorted(zip(train.texts, train.labels)) + sorted(
        zip(test.texts, test.labels)
    )
    assert sorted(combined) == sorted(zip(ds.texts, ds.labels))
