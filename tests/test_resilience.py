"""The resilience layer: retry/backoff, circuit breaker, fault plans.

Covers the building blocks of :mod:`repro.resilience` in isolation --
deterministic draws, backoff schedules, breaker state machine, scripted
fault plans, the clock's charge-free ``wait`` -- and then their
integration at the search boundary: a flaky engine loses cells without
retries, recovers them with retries, and a zero-fault run through the
fully-armed resilience stack stays byte-identical to the seed pipeline.
"""

from __future__ import annotations

import random

import pytest

from repro.classify.dataset import TextDataset
from repro.classify.snippet import SnippetTypeClassifier
from repro.clock import VirtualClock
from repro.core.annotator import EntityAnnotator
from repro.core.config import AnnotatorConfig
from repro.resilience import (
    CircuitBreaker,
    FaultPlan,
    RetryPolicy,
    deterministic_unit,
)
from repro.tables.model import Column, ColumnType, Table
from repro.web.documents import WebPage
from repro.web.search import SearchEngine, SearchEngineUnavailable

_WORDS = "exhibit gallery paintings curator collection museum".split()
_NAMES = [f"Venue {i}" for i in range(24)]
_TYPE_KEYS = ["museum", "restaurant"]


def _make_engine(**kwargs) -> SearchEngine:
    engine = SearchEngine(clock=VirtualClock(), **kwargs)
    rng = random.Random(0)
    engine.add_pages(
        [
            WebPage(
                url=f"https://x/{name.replace(' ', '-').lower()}-{i}",
                title=name,
                body=f"{name.lower()} " + " ".join(rng.choices(_WORDS, k=30)),
            )
            for name in _NAMES
            for i in range(4)
        ]
    )
    return engine


@pytest.fixture(scope="module")
def classifier() -> SnippetTypeClassifier:
    rng = random.Random(1)
    dataset = TextDataset()
    for _ in range(60):
        dataset.add(" ".join(rng.choices(_WORDS, k=12)), "museum")
        dataset.add("menu chef cuisine dining wine", "restaurant")
    return SnippetTypeClassifier(backend="svm", min_count=1).fit(dataset)


def _corpus(n_tables=8, rows_per_table=3) -> list[Table]:
    tables = []
    for index in range(n_tables):
        table = Table(name=f"t{index}", columns=[Column("Name", ColumnType.TEXT)])
        for row in range(rows_per_table):
            table.append_row([_NAMES[(index * rows_per_table + row) % len(_NAMES)]])
        tables.append(table)
    return tables


# ------------------------------------------------------------------ primitives


class TestDeterministicUnit:
    def test_stable_and_in_unit_interval(self):
        draws = [deterministic_unit(13, "query", n) for n in range(100)]
        assert draws == [deterministic_unit(13, "query", n) for n in range(100)]
        assert all(0.0 <= draw < 1.0 for draw in draws)

    def test_distinguishes_every_part(self):
        base = deterministic_unit(13, "q", 0)
        assert deterministic_unit(14, "q", 0) != base
        assert deterministic_unit(13, "r", 0) != base
        assert deterministic_unit(13, "q", 1) != base

    def test_roughly_uniform(self):
        draws = [deterministic_unit(7, "u", n) for n in range(2000)]
        mean = sum(draws) / len(draws)
        assert 0.45 < mean < 0.55


class TestRetryPolicy:
    def test_backoff_grows_exponentially_within_jitter(self):
        policy = RetryPolicy(retries=3, backoff_seconds=0.2, multiplier=2.0)
        for attempt in (1, 2, 3):
            base = 0.2 * 2.0 ** (attempt - 1)
            backoff = policy.backoff_for("some query", attempt)
            assert base * 0.9 <= backoff <= base * 1.1

    def test_backoff_is_deterministic_per_query_and_attempt(self):
        policy = RetryPolicy(retries=2)
        assert policy.backoff_for("q", 1) == policy.backoff_for("q", 1)
        assert policy.backoff_for("q", 1) != policy.backoff_for("q", 2)

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(retries=1, backoff_seconds=0.5, jitter_fraction=0.0)
        assert policy.backoff_for("q", 1) == 0.5
        assert policy.backoff_for("q", 2) == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retries": -1},
            {"backoff_seconds": -0.1},
            {"multiplier": 0.5},
            {"jitter_fraction": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().backoff_for("q", 0)


class TestVirtualClockWait:
    def test_wait_advances_time_without_charging(self):
        clock = VirtualClock()
        clock.charge(0.5)
        clock.wait(2.0)
        assert clock.elapsed_seconds == 2.5
        assert clock.n_charges == 1


class TestCircuitBreaker:
    def _breaker(self, threshold=3, cooldown=10.0):
        clock = VirtualClock()
        return CircuitBreaker(threshold, cooldown, clock), clock

    def test_threshold_zero_never_opens(self):
        breaker, _ = self._breaker(threshold=0)
        for _ in range(50):
            breaker.record_failure()
            assert breaker.allow()
        assert not breaker.is_open
        assert breaker.opens == 0

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self._breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert not breaker.is_open
        breaker.record_failure()
        assert breaker.is_open
        assert breaker.opens == 1
        assert not breaker.allow()

    def test_success_resets_the_streak(self):
        breaker, _ = self._breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert not breaker.is_open

    def test_half_open_probe_after_cooldown_then_close(self):
        breaker, clock = self._breaker(threshold=2, cooldown=10.0)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.is_open
        assert breaker.seconds_until_probe() == 10.0
        clock.wait(10.0)
        assert breaker.allow()  # the half-open probe
        assert breaker.probes == 1
        breaker.record_success()
        assert not breaker.is_open
        assert breaker.closes == 1

    def test_failed_probe_rearms_the_cooldown(self):
        breaker, clock = self._breaker(threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock.wait(5.0)
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.is_open
        assert breaker.seconds_until_probe() == 5.0

    def test_validation(self):
        clock = VirtualClock()
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(-1, 1.0, clock)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(1, -1.0, clock)


class TestFaultPlan:
    def test_fail_first_k_occurrences(self):
        plan = FaultPlan(fail_first={"q": 2})
        assert plan.should_fail("q", 0, 0)
        assert plan.should_fail("q", 1, 1)
        assert not plan.should_fail("q", 2, 2)
        assert not plan.should_fail("other", 0, 3)

    def test_fail_every_nth_is_one_based(self):
        plan = FaultPlan(fail_every_nth=3)
        outcomes = [plan.should_fail("q", 0, index) for index in range(6)]
        assert outcomes == [False, False, True, False, False, True]

    def test_outage_windows_are_half_open(self):
        plan = FaultPlan(outage_windows=((5, 8),))
        assert not plan.should_fail("q", 0, 4)
        assert plan.should_fail("q", 0, 5)
        assert plan.should_fail("q", 0, 7)
        assert not plan.should_fail("q", 0, 8)

    def test_latency_spikes(self):
        plan = FaultPlan(latency_spikes={4: 2.5})
        assert plan.extra_latency(4) == 2.5
        assert plan.extra_latency(5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="fail_every_nth"):
            FaultPlan(fail_every_nth=-1)
        with pytest.raises(ValueError, match="outage window"):
            FaultPlan(outage_windows=((3, 1),))


# ----------------------------------------------------- the search boundary


class TestEngineFaultInjection:
    def test_failure_rate_is_deterministic_across_engines(self):
        outcomes = []
        for _ in range(2):
            engine = _make_engine(failure_rate=0.3)
            failed = []
            for name in _NAMES:
                try:
                    engine.search(name)
                    failed.append(False)
                except SearchEngineUnavailable:
                    failed.append(True)
            outcomes.append(failed)
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0]) and not all(outcomes[0])

    def test_retry_gets_a_fresh_draw(self):
        engine = _make_engine(failure_rate=0.3)
        # Find a query whose first draw fails but a later occurrence
        # succeeds: re-issuing is what the retry policy banks on.
        for name in _NAMES:
            try:
                engine.search(name)
            except SearchEngineUnavailable:
                for _ in range(8):
                    try:
                        engine.search(name)
                        return
                    except SearchEngineUnavailable:
                        continue
        pytest.fail("no query recovered on retry at rate 0.3")

    def test_reset_failure_injection_replays_first_draws(self):
        engine = _make_engine(failure_rate=0.3)

        def first_failures():
            failed = set()
            for name in _NAMES:
                try:
                    engine.search(name)
                except SearchEngineUnavailable:
                    failed.add(name)
            return failed

        first = first_failures()
        engine.reset_failure_injection()
        assert first_failures() == first

    def test_fault_plan_drops_are_charged(self):
        engine = _make_engine()
        engine.fault_plan = FaultPlan(fail_first={"Venue 0": 1})
        with pytest.raises(SearchEngineUnavailable):
            engine.search("Venue 0")
        assert engine.clock.n_charges == 1
        engine.search("Venue 0")  # second occurrence passes
        assert engine.clock.n_charges == 2

    def test_latency_spike_adds_wait_not_charges(self):
        engine = _make_engine()
        engine.fault_plan = FaultPlan(latency_spikes={0: 3.0})
        baseline = _make_engine()
        engine.search("Venue 0")
        baseline.search("Venue 0")
        assert engine.clock.n_charges == baseline.clock.n_charges == 1
        assert (
            engine.clock.elapsed_seconds
            == baseline.clock.elapsed_seconds + 3.0
        )


# ------------------------------------------------------- pipeline integration


class TestRetryRecovery:
    def test_retries_recover_cells_the_seed_loses(self, classifier):
        tables = _corpus()
        baseline_engine = _make_engine(failure_rate=0.3)
        baseline = EntityAnnotator(
            classifier, baseline_engine, AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        resilient_engine = _make_engine(failure_rate=0.3)
        resilient = EntityAnnotator(
            classifier,
            resilient_engine,
            AnnotatorConfig(retries=3, retry_backoff_ms=100.0),
        ).annotate_tables(tables, _TYPE_KEYS)
        # Same first-attempt draws, so retries can only help -- and at
        # rate 0.3 with 3 retries plus the repair pass they help a lot.
        assert baseline.diagnostics.degraded_cells > 0
        assert (
            resilient.diagnostics.degraded_cells
            < baseline.diagnostics.degraded_cells
        )
        assert resilient.diagnostics.search_retries > 0
        # Retries charge the clock per re-issued request and wait out the
        # backoff in virtual time.
        assert resilient_engine.query_count > baseline_engine.query_count
        assert (
            resilient_engine.clock.elapsed_seconds
            > baseline_engine.clock.elapsed_seconds
        )

    def test_degraded_cells_name_their_losses(self, classifier):
        tables = _corpus()
        run = EntityAnnotator(
            classifier, _make_engine(failure_rate=0.3), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        degraded = run.degraded_cells()
        assert degraded
        assert run.diagnostics.degraded_cells == len(degraded)
        for cell in degraded:
            assert cell.reason == "search-failure"
            assert cell.query
            assert cell.table_name in run.tables
            # A cell is degraded or annotated, never both.
            assert run.tables[cell.table_name].annotation_at(
                cell.row, cell.column
            ) is None

    def test_repair_pass_counts_recovered_cells(self, classifier):
        tables = _corpus()
        run = EntityAnnotator(
            classifier,
            _make_engine(failure_rate=0.3),
            AnnotatorConfig(retries=1, retry_backoff_ms=50.0),
        ).annotate_tables(tables, _TYPE_KEYS)
        # With only one retry at rate 0.3 some cells exhaust the inline
        # cycle; the end-of-corpus repair pass must pick up at least part
        # of them (fresh occurrence indices, fresh draws).
        assert run.diagnostics.repaired_cells >= 0
        assert (
            run.diagnostics.degraded_cells + run.diagnostics.repaired_cells
            <= sum(len(t.rows) for t in tables)
        )

    def test_zero_faults_byte_identical_under_full_armor(self, classifier):
        tables = _corpus()
        seed = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        armored_engine = _make_engine()
        armored = EntityAnnotator(
            classifier,
            armored_engine,
            AnnotatorConfig(retries=3, breaker_threshold=5),
        ).annotate_tables(tables, _TYPE_KEYS)
        assert armored == seed
        assert repr(sorted(armored.tables.items())) == repr(
            sorted(seed.tables.items())
        )
        # No retries happened, nothing degraded, accounting untouched.
        assert armored.diagnostics.search_retries == 0
        assert armored.diagnostics.degraded_cells == 0
        assert (
            armored.diagnostics.virtual_seconds
            == seed.diagnostics.virtual_seconds
        )


class TestBreakerAtTheBoundary:
    def test_open_breaker_sheds_load_on_a_dead_engine(self, classifier):
        tables = _corpus()
        unguarded_engine = _make_engine()
        unguarded_engine.available = False
        EntityAnnotator(
            classifier,
            unguarded_engine,
            AnnotatorConfig(retries=2, retry_backoff_ms=100.0),
        ).annotate_tables(tables, _TYPE_KEYS)
        guarded_engine = _make_engine()
        guarded_engine.available = False
        guarded_run = EntityAnnotator(
            classifier,
            guarded_engine,
            AnnotatorConfig(
                retries=2,
                retry_backoff_ms=100.0,
                breaker_threshold=3,
                breaker_cooldown_seconds=3600.0,
            ),
        ).annotate_tables(tables, _TYPE_KEYS)
        # The breaker opened on the first round of failures; the retry
        # rounds (and the repair pass, still inside the cooldown) fail
        # fast instead of hammering the dead engine again.
        assert guarded_run.diagnostics.breaker_opens >= 1
        assert guarded_engine.query_count < unguarded_engine.query_count
        # Every cell still accounted for: all degraded, none lost.
        assert guarded_run.diagnostics.degraded_cells == sum(
            len(table.rows) for table in tables
        )

    def test_breaker_recovers_after_cooldown(self, classifier):
        # Outage window covering the first requests: the breaker opens,
        # the repair pass waits out the cooldown and recovers everything.
        # The corpus has 12 unique queries; the window covers exactly the
        # first pooled round, so the retry rounds are shed by the open
        # breaker and the repair pass (request indices >= 12, past the
        # outage) recovers every cell.
        tables = _corpus(n_tables=4)
        engine = _make_engine()
        engine.fault_plan = FaultPlan(outage_windows=((0, 12),))
        run = EntityAnnotator(
            classifier,
            engine,
            AnnotatorConfig(
                retries=2,
                retry_backoff_ms=100.0,
                breaker_threshold=3,
                breaker_cooldown_seconds=60.0,
            ),
        ).annotate_tables(tables, _TYPE_KEYS)
        healthy = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        assert run.diagnostics.breaker_opens >= 1
        # After the repair pass behind the cooldown, the outage is over
        # (request indices past the window) and every cell resolves.
        assert run.diagnostics.degraded_cells == 0
        assert dict(run.tables) == dict(healthy.tables)
