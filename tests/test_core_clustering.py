"""Tests for snippet clustering (the future-work ambiguity solution)."""

import random

import pytest

from repro.classify.dataset import TextDataset
from repro.classify.snippet import SnippetTypeClassifier
from repro.clock import VirtualClock
from repro.core.clustering import (
    ClusteredCellAnnotator,
    cluster_snippets,
    cosine_similarity,
)
from repro.web.documents import WebPage
from repro.web.search import SearchEngine

_MUSEUM = "exhibit gallery paintings curator museum collection".split()
_LABEL = "records label vinyl roster pressing releases".split()


class TestCosine:
    def test_identical_direction(self):
        assert cosine_similarity({"a": 1.0, "b": 2.0}, {"a": 2.0, "b": 4.0}) == (
            pytest.approx(1.0)
        )

    def test_orthogonal(self):
        assert cosine_similarity({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_empty_inputs(self):
        assert cosine_similarity({}, {"a": 1.0}) == 0.0

    def test_symmetric(self):
        a, b = {"a": 1.0, "b": 0.5}, {"a": 0.2, "c": 0.9}
        assert cosine_similarity(a, b) == pytest.approx(cosine_similarity(b, a))


class TestClusterSnippets:
    def test_two_senses_two_clusters(self):
        rng = random.Random(0)
        snippets = [" ".join(rng.choices(_MUSEUM, k=10)) for _ in range(5)]
        snippets += [" ".join(rng.choices(_LABEL, k=10)) for _ in range(5)]
        clusters = cluster_snippets(snippets, threshold=0.2)
        assert len(clusters) == 2
        assert {frozenset(c) for c in clusters} == {
            frozenset(range(5)), frozenset(range(5, 10)),
        }

    def test_clusters_partition_input(self):
        rng = random.Random(1)
        snippets = [" ".join(rng.choices(_MUSEUM + _LABEL, k=8)) for _ in range(12)]
        clusters = cluster_snippets(snippets)
        flattened = sorted(i for cluster in clusters for i in cluster)
        assert flattened == list(range(12))

    def test_sorted_by_size(self):
        rng = random.Random(2)
        snippets = [" ".join(rng.choices(_MUSEUM, k=10)) for _ in range(7)]
        snippets += [" ".join(rng.choices(_LABEL, k=10)) for _ in range(3)]
        clusters = cluster_snippets(snippets, threshold=0.2)
        sizes = [len(c) for c in clusters]
        assert sizes == sorted(sizes, reverse=True)

    def test_empty_input(self):
        assert cluster_snippets([]) == []

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            cluster_snippets(["a"], threshold=0.0)


def _ambiguous_engine():
    """Five museum pages and five jazz-label pages for the same name."""
    engine = SearchEngine(clock=VirtualClock())
    rng = random.Random(3)
    for i in range(5):
        engine.add_page(WebPage(
            url=f"https://x/m{i}", title="Melisse",
            body="melisse " + " ".join(rng.choices(_MUSEUM, k=18)),
        ))
        engine.add_page(WebPage(
            url=f"https://x/l{i}", title="Melisse",
            body="melisse " + " ".join(rng.choices(_LABEL, k=18)),
        ))
    return engine


def _classifier():
    rng = random.Random(4)
    ds = TextDataset()
    for _ in range(60):
        ds.add(" ".join(rng.choices(_MUSEUM, k=12)), "museum")
        ds.add(" ".join(rng.choices(_LABEL, k=12)), "music_label")
    return SnippetTypeClassifier(backend="svm", min_count=1).fit(ds)


class TestClusteredCellAnnotator:
    def test_resolves_split_that_defeats_plain_majority(self):
        # Plain Eq. 1: 5/5 split -> no annotation.  Clustered: the museum
        # cluster is unanimous -> annotated.
        from repro.core.annotation import CellAnnotator

        engine = _ambiguous_engine()
        classifier = _classifier()
        plain = CellAnnotator(classifier, engine)
        assert plain.annotate_value("Melisse", ["museum"]).type_key is None

        clustered = ClusteredCellAnnotator(classifier, engine)
        decision = clustered.annotate_value("Melisse", ["museum"])
        assert decision.type_key == "museum"
        assert decision.score == pytest.approx(0.5)
        assert len(decision.clusters) >= 2

    def test_no_results(self):
        annotator = ClusteredCellAnnotator(_classifier(), _ambiguous_engine())
        assert annotator.annotate_value("zzz", ["museum"]).type_key is None

    def test_engine_failure_flagged(self):
        engine = _ambiguous_engine()
        engine.available = False
        annotator = ClusteredCellAnnotator(_classifier(), engine)
        assert annotator.annotate_value("Melisse", ["museum"]).failed

    def test_small_clusters_rejected(self):
        annotator = ClusteredCellAnnotator(
            _classifier(), _ambiguous_engine(), min_cluster_fraction=0.9
        )
        decision = annotator.annotate_value("Melisse", ["museum"])
        assert decision.type_key is None  # no cluster holds 9/10 snippets

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusteredCellAnnotator(
                _classifier(), _ambiguous_engine(), cluster_majority=0.0
            )
        annotator = ClusteredCellAnnotator(_classifier(), _ambiguous_engine())
        with pytest.raises(ValueError):
            annotator.annotate_value("Melisse", [])
