"""Parity and contracts of the pluggable index storage backends.

The frozen mmap backend (:class:`repro.web.backends.FrozenMmapIndex`)
must be a pure *storage* change: compacting an
:class:`~repro.web.index.InvertedIndex` into an artifact and serving
queries from the memory-mapped file may change where the postings live,
never what any layer above computes.  This suite pins:

* the CSR round-trip -- every token, posting array (values *and*
  dtypes), document length, page and corpus statistic identical between
  the in-memory index and the reopened artifact, plus a Hypothesis
  property test over arbitrary corpora (partition-exact and
  order-preserving);
* both content digests preserved bit for bit, so persisted caches keyed
  by ``cache_fingerprint`` interoperate across backends;
* ranking/annotation parity at every granularity -- raw search, per-cell
  path, batched path, ``workers=2`` under both ``fork`` and ``spawn``,
  and the resident service -- byte-identical annotations and equal
  :class:`~repro.core.results.RunDiagnostics` (worker loads normalised:
  busy seconds and RSS are real measurements);
* the artifact contract -- pickling by path, refusal to mutate, loud
  :class:`~repro.persistence.ArtifactError` on foreign kinds, foreign
  layout versions and truncated files, and ``ensure_index_artifact``
  reusing a fresh artifact while rebuilding a stale or corrupt one.
"""

import dataclasses
import os
import pickle
import random
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classify.dataset import TextDataset
from repro.classify.snippet import SnippetTypeClassifier
from repro.clock import VirtualClock
from repro.core.annotator import EntityAnnotator
from repro.core.config import AnnotatorConfig
from repro.core.parallel import annotate_tables_parallel
from repro.persistence import ArtifactError, save_array_artifact
from repro.service import protocol
from repro.service.daemon import AnnotationService, ServiceConfig
from repro.tables.model import Column, ColumnType, Table
from repro.web.backends import (
    INDEX_ARTIFACT_KIND,
    FrozenIndexError,
    FrozenMmapIndex,
    IndexBackend,
    build_index_artifact,
    ensure_index_artifact,
)
from repro.web.documents import WebPage
from repro.web.index import InvertedIndex
from repro.web.search import SearchEngine

_WORDS = "exhibit gallery paintings curator collection museum".split()
_NAMES = [f"Venue {i}" for i in range(24)]
_TYPE_KEYS = ["museum", "restaurant"]


def _make_engine(index=None) -> SearchEngine:
    engine = SearchEngine(clock=VirtualClock(), index=index)
    if index is None:
        rng = random.Random(0)
        engine.add_pages(
            [
                WebPage(
                    url=f"https://x/{name.replace(' ', '-').lower()}-{i}",
                    title=name,
                    body=f"{name.lower()} " + " ".join(rng.choices(_WORDS, k=30)),
                )
                for name in _NAMES
                for i in range(4)
            ]
        )
    return engine


def _train(seed=1) -> SnippetTypeClassifier:
    rng = random.Random(seed)
    dataset = TextDataset()
    for _ in range(60):
        dataset.add(" ".join(rng.choices(_WORDS, k=12)), "museum")
        dataset.add("menu chef cuisine dining wine", "restaurant")
    return SnippetTypeClassifier(backend="svm", min_count=1).fit(dataset)


def _corpus(n_tables=6, rows_per_table=3) -> list[Table]:
    """Distinct-content corpus: every table names its own venues."""
    tables = []
    for index in range(n_tables):
        table = Table(
            name=f"t{index}", columns=[Column("Name", ColumnType.TEXT)]
        )
        for row in range(rows_per_table):
            table.append_row([_NAMES[(index * rows_per_table + row) % len(_NAMES)]])
        tables.append(table)
    return tables


@pytest.fixture(scope="module")
def classifier() -> SnippetTypeClassifier:
    return _train()


@pytest.fixture(scope="module")
def artifact_path(tmp_path_factory):
    """One artifact built from the canonical test engine's index."""
    return build_index_artifact(
        _make_engine().index, tmp_path_factory.mktemp("idx") / "index.reproidx"
    )


@pytest.fixture()
def frozen(artifact_path) -> FrozenMmapIndex:
    return FrozenMmapIndex.open(artifact_path)


def _normalised(diagnostics):
    """Diagnostics with the run-order-dependent parts blanked: per-worker
    loads are real measurements (busy seconds, attach timings, RSS), and
    ``virtual_seconds`` is summed over tasks in completion order, so its
    last float bit varies run to run even on one backend -- it is
    compared with ``pytest.approx`` separately.  Everything else must
    match exactly."""
    return dataclasses.replace(
        diagnostics, worker_loads=(), virtual_seconds=0.0
    )


# ------------------------------------------------------------------------ round-trip


class TestArtifactRoundTrip:
    def test_satisfies_the_backend_protocol(self, frozen):
        assert isinstance(frozen, IndexBackend)
        assert isinstance(InvertedIndex(), IndexBackend)
        assert frozen.backend_name == "mmap"

    def test_corpus_statistics_identical(self, frozen):
        index = _make_engine().index
        assert frozen.n_documents == index.n_documents
        assert frozen.average_length == index.average_length
        assert frozen.vocabulary_size() == index.vocabulary_size()
        assert frozen.title_boost == index.title_boost
        np.testing.assert_array_equal(
            np.asarray(frozen.lengths), np.asarray(index.lengths)
        )

    def test_every_posting_identical_values_and_dtypes(self, frozen):
        index = _make_engine().index
        assert list(frozen.tokens()) == list(index.tokens())
        for token in index.tokens():
            mem_ids, mem_tfs = index.posting_arrays(token)
            map_ids, map_tfs = frozen.posting_arrays(token)
            assert map_ids.dtype == mem_ids.dtype
            assert map_tfs.dtype == mem_tfs.dtype
            np.testing.assert_array_equal(map_ids, mem_ids)
            np.testing.assert_array_equal(map_tfs, mem_tfs)
            assert frozen.document_frequency(token) == index.document_frequency(
                token
            )
            assert frozen.postings(token) == index.postings(token)

    def test_posting_arrays_are_views_not_copies(self, frozen):
        ids, tfs = frozen.posting_arrays(next(frozen.tokens()))
        assert not ids.flags.owndata
        assert not tfs.flags.owndata

    def test_every_page_identical(self, frozen):
        index = _make_engine().index
        for doc_id in range(index.n_documents):
            assert frozen.page(doc_id) == index.page(doc_id)

    def test_digests_preserved(self, frozen):
        index = _make_engine().index
        assert frozen.content_digest() == index.content_digest()
        assert frozen.fingerprint_digest() == index.fingerprint_digest()

    def test_pickles_by_path_only(self, frozen):
        payload = pickle.dumps(frozen, pickle.HIGHEST_PROTOCOL)
        assert len(payload) < 512  # a path, not a postings store
        clone = pickle.loads(payload)
        assert clone.content_digest() == frozen.content_digest()
        token = next(frozen.tokens())
        np.testing.assert_array_equal(
            clone.posting_arrays(token)[0], frozen.posting_arrays(token)[0]
        )

    def test_refuses_mutation(self, frozen):
        page = WebPage(url="https://x/new", title="New", body="new venue")
        with pytest.raises(FrozenIndexError):
            frozen.add(page)
        with pytest.raises(FrozenIndexError):
            frozen.add_many([page])


# ------------------------------------------------------------------------- contracts


class TestArtifactContracts:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ArtifactError):
            FrozenMmapIndex.open(tmp_path / "absent.reproidx")

    def test_foreign_kind_rejected(self, tmp_path):
        path = tmp_path / "other.reproidx"
        save_array_artifact(
            path, "not-an-index", {}, {"x": np.zeros(3, dtype=np.int64)}
        )
        with pytest.raises(ArtifactError):
            FrozenMmapIndex.open(path)

    def test_foreign_layout_version_rejected(self, tmp_path):
        path = tmp_path / "future.reproidx"
        save_array_artifact(
            path,
            INDEX_ARTIFACT_KIND,
            {"layout_version": 999},
            {"x": np.zeros(3, dtype=np.int64)},
        )
        with pytest.raises(ArtifactError):
            FrozenMmapIndex.open(path)

    def test_truncated_file_raises(self, tmp_path):
        path = build_index_artifact(
            _make_engine().index, tmp_path / "cut.reproidx"
        )
        path.write_bytes(path.read_bytes()[:100])
        with pytest.raises(ArtifactError):
            FrozenMmapIndex.open(path)

    def test_ensure_reuses_fresh_artifact(self, tmp_path):
        index = _make_engine().index
        path = tmp_path / "index.reproidx"
        first = ensure_index_artifact(index, path)
        stamp = os.stat(path).st_mtime_ns
        second = ensure_index_artifact(index, path)
        assert os.stat(path).st_mtime_ns == stamp  # no rebuild
        assert second.fingerprint_digest() == first.fingerprint_digest()

    def test_ensure_rebuilds_stale_artifact(self, tmp_path):
        engine = _make_engine()
        path = tmp_path / "index.reproidx"
        ensure_index_artifact(engine.index, path)
        engine.add_page(
            WebPage(url="https://x/extra", title="Extra", body="extra venue")
        )
        frozen = ensure_index_artifact(engine.index, path)
        assert frozen.fingerprint_digest() == engine.index.fingerprint_digest()
        assert frozen.n_documents == engine.index.n_documents

    def test_ensure_rebuilds_corrupt_artifact(self, tmp_path):
        index = _make_engine().index
        path = tmp_path / "index.reproidx"
        ensure_index_artifact(index, path)
        path.write_bytes(b"garbage")
        frozen = ensure_index_artifact(index, path)
        assert frozen.content_digest() == index.content_digest()


# --------------------------------------------------------------------- engine parity


class TestEngineParity:
    def test_search_byte_identical(self, frozen):
        memory_engine = _make_engine()
        mmap_engine = _make_engine(index=frozen)
        for name in _NAMES:
            assert repr(mmap_engine.search(name)) == repr(
                memory_engine.search(name)
            )

    def test_cache_fingerprint_identical(self, frozen):
        # Persisted result caches are keyed by this: the same corpus must
        # fingerprint the same through either backend, or a backend swap
        # would silently cold-start every cache.
        assert (
            _make_engine(index=frozen).cache_fingerprint()
            == _make_engine().cache_fingerprint()
        )

    def test_use_index_backend_swaps_in_place(self, frozen):
        engine = _make_engine()
        results = [engine.search(name) for name in _NAMES[:4]]
        engine.use_index_backend(frozen)
        assert engine.index.backend_name == "mmap"
        assert [engine.search(name) for name in _NAMES[:4]] == results

    def test_use_index_backend_rejects_different_corpus(self, frozen):
        other = SearchEngine(clock=VirtualClock())
        other.add_page(
            WebPage(url="https://x/one", title="One", body="one venue")
        )
        with pytest.raises(ValueError):
            other.use_index_backend(frozen)


# ----------------------------------------------------------------- annotation parity


class TestAnnotationParity:
    def test_per_cell_path(self, classifier, frozen):
        memory = EntityAnnotator(classifier, _make_engine(), AnnotatorConfig())
        mmap = EntityAnnotator(
            classifier, _make_engine(index=frozen), AnnotatorConfig()
        )
        for table in _corpus(n_tables=2):
            assert repr(
                mmap._annotate_table_per_cell(table, _TYPE_KEYS)
            ) == repr(memory._annotate_table_per_cell(table, _TYPE_KEYS))

    def test_batched_corpus_run(self, classifier, frozen):
        tables = _corpus()
        reference = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        run = EntityAnnotator(
            classifier, _make_engine(index=frozen), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        assert run == reference
        assert repr(sorted(run.tables.items())) == repr(
            sorted(reference.tables.items())
        )
        # In-process runs have no measured loads, so the diagnostics must
        # agree outright -- virtual clock included.
        assert run.diagnostics == reference.diagnostics

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_workers_identical_under_both_start_methods(
        self, classifier, frozen, start_method
    ):
        import multiprocessing

        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable on this platform")
        tables = _corpus()
        reference = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)

        def parallel_run(index=None):
            return annotate_tables_parallel(
                EntityAnnotator(
                    classifier, _make_engine(index=index), AnnotatorConfig()
                ),
                tables,
                _TYPE_KEYS,
                workers=2,
                start_method=start_method,
            )

        memory_run = parallel_run()
        mmap_run = parallel_run(index=frozen)
        # Annotations byte-identical across granularities and backends.
        assert mmap_run == memory_run == reference
        assert repr(sorted(mmap_run.tables.items())) == repr(
            sorted(reference.tables.items())
        )
        # Diagnostics identical between the backends at the same
        # granularity -- query counts, cache traffic, chunking, all of it
        # (measured per-worker loads normalised; virtual seconds compared
        # approximately, their summation order follows task completion).
        assert _normalised(mmap_run.diagnostics) == _normalised(
            memory_run.diagnostics
        )
        assert mmap_run.diagnostics.virtual_seconds == pytest.approx(
            memory_run.diagnostics.virtual_seconds
        )
        assert len(mmap_run.diagnostics.worker_loads) == 2

    def test_service_path(self, classifier, frozen):
        table = _corpus(n_tables=1, rows_per_table=6)[0]
        reference = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_table(table, _TYPE_KEYS)
        service = AnnotationService(
            EntityAnnotator(
                classifier, _make_engine(index=frozen), AnnotatorConfig()
            ),
            ServiceConfig(),
        ).start()
        try:
            response = service.submit(
                protocol.annotate_table_request(table, _TYPE_KEYS, "1")
            )
            assert response.ok
            assert (
                protocol.annotation_from_payload(response.result["annotation"])
                == reference
            )
        finally:
            service.stop()


# --------------------------------------------------------------- property (hypothesis)

_page_texts = st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=97, max_codepoint=122),
        min_size=1,
        max_size=6,
    ),
    min_size=1,
    max_size=12,
).map(" ".join)


@settings(max_examples=25, deadline=None)
@given(
    bodies=st.lists(_page_texts, min_size=1, max_size=8),
    title_boost=st.floats(min_value=1.0, max_value=4.0, allow_nan=False),
)
def test_artifact_round_trip_is_partition_exact(bodies, title_boost):
    """For any corpus: the CSR build partitions every posting into exactly
    one token row, preserves per-token append order, and reproduces pages,
    lengths and digests bit for bit after a reopen."""
    index = InvertedIndex(title_boost=title_boost)
    index.add_many(
        WebPage(url=f"https://x/{i}", title=f"p{i}", body=body)
        for i, body in enumerate(bodies)
    )
    with tempfile.TemporaryDirectory() as tmp:
        frozen = FrozenMmapIndex.open(
            build_index_artifact(index, os.path.join(tmp, "index.reproidx"))
        )
        assert list(frozen.tokens()) == list(index.tokens())
        total_postings = 0
        for token in index.tokens():
            mem = list(index.raw_postings(token))
            got = list(zip(*[part.tolist() for part in frozen.posting_arrays(token)]))
            assert got == mem  # order-preserving, value-exact
            total_postings += len(mem)
        assert total_postings == sum(
            len(index.raw_postings(token)) for token in frozen.tokens()
        )
        assert frozen.n_documents == index.n_documents
        assert frozen.average_length == index.average_length
        for doc_id in range(index.n_documents):
            assert frozen.page(doc_id) == index.page(doc_id)
        assert frozen.content_digest() == index.content_digest()
        assert frozen.fingerprint_digest() == index.fingerprint_digest()
